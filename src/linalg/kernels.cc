#include "linalg/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#if defined(MBP_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace mbp::linalg::kernels {
namespace {

// ---------------------------------------------------------------------------
// Piecewise-linear batch evaluation, shared index math. These helpers are
// the single definition of the segment lookup for BOTH variants (the AVX2
// kernel calls them per interior lane), so the bracketing index can never
// diverge between dispatch levels.
// ---------------------------------------------------------------------------

// Index of the first knot with x[i] > q, for q strictly inside
// (x[0], x[n-1]). Identical to PricingSnapshot::UpperKnot: bucket
// estimate, edge settles, then upper_bound over the bucket's window.
inline size_t PwlUpperKnot(const PwlView& c, double q) {
  size_t b = std::min(c.num_buckets - 1,
                      static_cast<size_t>(q * c.inv_bucket_width));
  while (b > 0 && q < c.bucket_width * static_cast<double>(b)) --b;
  while (b + 1 < c.num_buckets &&
         q >= c.bucket_width * static_cast<double>(b + 1)) {
    ++b;
  }
  const double* first = c.x + c.bucket_hint[b];
  const double* last = c.x + c.bucket_hint[b + 1];
  return static_cast<size_t>(std::upper_bound(first, last, q) - c.x);
}

// One element of the batch policy (see Funcs::pwl_batch). Every branch
// body is a single-rounding expression — the same ones PriceAt evaluates —
// so this scalar path is the bit-exact oracle for the vector lanes.
inline double PwlEvalOne(const PwlView& c, double q) {
  if (!(q >= 0.0)) return std::numeric_limits<double>::quiet_NaN();
  if (q == 0.0) return 0.0;
  if (q <= c.x[0]) return c.price[0] * (q / c.x[0]);
  if (q >= c.x[c.n - 1]) return c.price[c.n - 1];
  const size_t lo = PwlUpperKnot(c, q) - 1;
  const double t = (q - c.x[lo]) / c.dx[lo];
  return c.price[lo] + t * c.dprice[lo];
}

// ---------------------------------------------------------------------------
// Scalar reference variant. Bit-identical to the pre-dispatch kernels in
// vector_ops.cc: dot keeps the 4-accumulator pattern and its reduction
// order, the element-wise kernels are plain mul+add (the baseline ISA has
// no FMA, so the compiler cannot contract these).
// ---------------------------------------------------------------------------

double DotScalar(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(double alpha, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void Axpy4Scalar(const double alpha[4], const double* x0, const double* x1,
                 const double* x2, const double* x3, double* y, size_t n) {
  const double a0 = alpha[0], a1 = alpha[1], a2 = alpha[2], a3 = alpha[3];
  for (size_t i = 0; i < n; ++i) {
    // Same add sequence as four successive AxpyScalar passes.
    double acc = y[i] + a0 * x0[i];
    acc += a1 * x1[i];
    acc += a2 * x2[i];
    acc += a3 * x3[i];
    y[i] = acc;
  }
}

void Gram4Scalar(const double* r0, const double* r1, const double* r2,
                 const double* r3, double* g, size_t ld, size_t i_begin,
                 size_t i_end) {
  for (size_t i = i_begin; i < i_end; ++i) {
    const double alpha[4] = {r0[i], r1[i], r2[i], r3[i]};
    Axpy4Scalar(alpha, r0, r1, r2, r3, g + i * ld, i + 1);
  }
}

void PwlBatchScalar(const PwlView& curve, const double* xs, double* out,
                    size_t count) {
  for (size_t i = 0; i < count; ++i) out[i] = PwlEvalOne(curve, xs[i]);
}

constexpr Funcs kScalarFuncs{DotScalar,   AxpyScalar,  ScaleScalar,
                             Axpy4Scalar, Gram4Scalar, PwlBatchScalar};

#if defined(MBP_HAVE_AVX2)

// ---------------------------------------------------------------------------
// AVX2 + FMA variant. Compiled with per-function target attributes so the
// rest of the library stays baseline-ISA; only reachable after the CPUID
// check in Avx2Funcs().
//
// Determinism: the element-wise kernels (axpy, axpy4, gram4) fuse every
// multiply-add — vector lanes via _mm256_fmadd_pd and scalar tails via
// std::fma, which round identically. Output element i is therefore ONE
// fixed expression of input element i no matter how a caller splits the
// range (MatTVec's column partition, gram4's row pairing): results are
// bit-identical across thread counts and partitions within a build. They
// differ from the scalar reference (plain mul + add, the baseline ISA has
// no FMA) by at most one rounding per term, ~1e-16 relative; tests and
// benches gate scalar-vs-SIMD agreement at 1e-10 end to end.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b,
                                                   size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  // Fixed lane-reduction order: registers pairwise, then lanes pairwise.
  const __m256d sum =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  double lanes[4];
  _mm256_storeu_pd(lanes, sum);
  double result = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) result += a[i] * b[i];
  return result;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(double alpha,
                                                  const double* x, double* y,
                                                  size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  // std::fma rounds exactly like a vector lane, so where the tail begins
  // (a caller's range split) cannot change any element's value.
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

__attribute__((target("avx2,fma"))) void ScaleAvx2(double alpha, double* x,
                                                   size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2,fma"))) void Axpy4Avx2(
    const double alpha[4], const double* x0, const double* x1,
    const double* x2, const double* x3, double* y, size_t n) {
  const __m256d a0 = _mm256_set1_pd(alpha[0]);
  const __m256d a1 = _mm256_set1_pd(alpha[1]);
  const __m256d a2 = _mm256_set1_pd(alpha[2]);
  const __m256d a3 = _mm256_set1_pd(alpha[3]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Same term order as Axpy4Scalar, each term fused.
    __m256d acc = _mm256_fmadd_pd(a0, _mm256_loadu_pd(x0 + i),
                                  _mm256_loadu_pd(y + i));
    acc = _mm256_fmadd_pd(a1, _mm256_loadu_pd(x1 + i), acc);
    acc = _mm256_fmadd_pd(a2, _mm256_loadu_pd(x2 + i), acc);
    acc = _mm256_fmadd_pd(a3, _mm256_loadu_pd(x3 + i), acc);
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < n; ++i) {
    double acc = std::fma(alpha[0], x0[i], y[i]);
    acc = std::fma(alpha[1], x1[i], acc);
    acc = std::fma(alpha[2], x2[i], acc);
    acc = std::fma(alpha[3], x3[i], acc);
    y[i] = acc;
  }
}

__attribute__((target("avx2,fma"))) void Gram4Avx2(
    const double* r0, const double* r1, const double* r2, const double* r3,
    double* g, size_t ld, size_t i_begin, size_t i_end) {
  size_t i = i_begin;
  // Two adjacent output rows per pass: both rows scale the same four
  // streamed example rows, so the x-loads are issued once and consumed by
  // eight fused chains. Each element of each output row sees Axpy4Avx2's
  // term order with every term fused (std::fma in the remainders), so the
  // result is bit-identical to calling axpy4 once per row — row pairing
  // and the [i_begin, i_end) partition cannot change any value.
  for (; i + 2 <= i_end; i += 2) {
    double* ga = g + i * ld;
    double* gb = ga + ld;
    const __m256d a0 = _mm256_set1_pd(r0[i]);
    const __m256d a1 = _mm256_set1_pd(r1[i]);
    const __m256d a2 = _mm256_set1_pd(r2[i]);
    const __m256d a3 = _mm256_set1_pd(r3[i]);
    const __m256d b0 = _mm256_set1_pd(r0[i + 1]);
    const __m256d b1 = _mm256_set1_pd(r1[i + 1]);
    const __m256d b2 = _mm256_set1_pd(r2[i + 1]);
    const __m256d b3 = _mm256_set1_pd(r3[i + 1]);
    const size_t na = i + 1;  // row i prefix length
    const size_t nb = i + 2;  // row i+1 prefix length
    size_t j = 0;
    for (; j + 4 <= na; j += 4) {
      const __m256d x0 = _mm256_loadu_pd(r0 + j);
      const __m256d x1 = _mm256_loadu_pd(r1 + j);
      const __m256d x2 = _mm256_loadu_pd(r2 + j);
      const __m256d x3 = _mm256_loadu_pd(r3 + j);
      __m256d acc = _mm256_fmadd_pd(a0, x0, _mm256_loadu_pd(ga + j));
      acc = _mm256_fmadd_pd(a1, x1, acc);
      acc = _mm256_fmadd_pd(a2, x2, acc);
      acc = _mm256_fmadd_pd(a3, x3, acc);
      _mm256_storeu_pd(ga + j, acc);
      __m256d accb = _mm256_fmadd_pd(b0, x0, _mm256_loadu_pd(gb + j));
      accb = _mm256_fmadd_pd(b1, x1, accb);
      accb = _mm256_fmadd_pd(b2, x2, accb);
      accb = _mm256_fmadd_pd(b3, x3, accb);
      _mm256_storeu_pd(gb + j, accb);
    }
    // Remainders: <= 3 elements for row i, <= 4 for row i+1.
    for (size_t t = j; t < na; ++t) {
      double acc = std::fma(r0[i], r0[t], ga[t]);
      acc = std::fma(r1[i], r1[t], acc);
      acc = std::fma(r2[i], r2[t], acc);
      acc = std::fma(r3[i], r3[t], acc);
      ga[t] = acc;
    }
    for (size_t t = j; t < nb; ++t) {
      double acc = std::fma(r0[i + 1], r0[t], gb[t]);
      acc = std::fma(r1[i + 1], r1[t], acc);
      acc = std::fma(r2[i + 1], r2[t], acc);
      acc = std::fma(r3[i + 1], r3[t], acc);
      gb[t] = acc;
    }
  }
  if (i < i_end) {
    const double alpha[4] = {r0[i], r1[i], r2[i], r3[i]};
    Axpy4Avx2(alpha, r0, r1, r2, r3, g + i * ld, i + 1);
  }
}

// Batched piecewise-linear evaluation, 4 queries per pass. The heavy
// per-element costs of the scalar loop — the unpredictable range-
// classification branches and the two divisions — vectorize; the segment
// lookup stays scalar per interior lane (it is a handful of compares via
// the bucket index) and feeds lane gathers. Bit identity with the scalar
// reference holds because every arithmetic op here is a single IEEE
// rounding: _mm256_div_pd / _mm256_mul_pd / _mm256_add_pd round exactly
// like their scalar counterparts lane-wise, no FMA is used (this file is
// compiled with -ffp-contract=off so the compiler cannot fuse the
// mul+add), and the lookup indices come from the same PwlUpperKnot the
// scalar variant uses. The tail (< 4 elements) runs PwlEvalOne, which is
// also exactly what a vector lane computes — so any remainder length
// 0..7 produces the same bits as the scalar loop.
__attribute__((target("avx2,fma"))) void PwlBatchAvx2(const PwlView& curve,
                                                      const double* xs,
                                                      double* out,
                                                      size_t count) {
  // A single-knot curve has no interior segments (dx/dprice are empty):
  // every query resolves through the edge branches, which the scalar
  // loop handles without touching segment arrays.
  if (curve.n < 2) {
    PwlBatchScalar(curve, xs, out, count);
    return;
  }
  const __m256d zero = _mm256_setzero_pd();
  const __m256d x_first = _mm256_set1_pd(curve.x[0]);
  const __m256d p_first = _mm256_set1_pd(curve.price[0]);
  const __m256d x_last = _mm256_set1_pd(curve.x[curve.n - 1]);
  const __m256d p_last = _mm256_set1_pd(curve.price[curve.n - 1]);
  const __m256d nan =
      _mm256_set1_pd(std::numeric_limits<double>::quiet_NaN());
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d xv = _mm256_loadu_pd(xs + i);
    // Lane classification on the original query (ordered compares are
    // false on NaN lanes, which fall through to the NaN blend).
    const __m256d ge_zero = _mm256_cmp_pd(xv, zero, _CMP_GE_OQ);
    const __m256d eq_zero = _mm256_cmp_pd(xv, zero, _CMP_EQ_OQ);
    const __m256d le_first = _mm256_cmp_pd(xv, x_first, _CMP_LE_OQ);
    const __m256d ge_last = _mm256_cmp_pd(xv, x_last, _CMP_GE_OQ);
    // Interior lanes: strictly inside (x[0], x[n-1]) and well-formed.
    const __m256d interior = _mm256_andnot_pd(
        le_first, _mm256_andnot_pd(ge_last, ge_zero));
    const int interior_bits = _mm256_movemask_pd(interior);
    // Bracketing segment per interior lane via the shared scalar lookup;
    // non-interior lanes use segment 0 as a harmless placeholder (dx[0] >
    // 0, so the arithmetic below cannot fault) and are overwritten by the
    // edge blends.
    alignas(32) double lane[4];
    _mm256_store_pd(lane, xv);
    size_t lo[4] = {0, 0, 0, 0};
    for (int k = 0; k < 4; ++k) {
      if ((interior_bits >> k) & 1) lo[k] = PwlUpperKnot(curve, lane[k]) - 1;
    }
    const __m256d x_lo = _mm256_set_pd(curve.x[lo[3]], curve.x[lo[2]],
                                       curve.x[lo[1]], curve.x[lo[0]]);
    const __m256d dx_lo = _mm256_set_pd(curve.dx[lo[3]], curve.dx[lo[2]],
                                        curve.dx[lo[1]], curve.dx[lo[0]]);
    const __m256d p_lo =
        _mm256_set_pd(curve.price[lo[3]], curve.price[lo[2]],
                      curve.price[lo[1]], curve.price[lo[0]]);
    const __m256d dp_lo =
        _mm256_set_pd(curve.dprice[lo[3]], curve.dprice[lo[2]],
                      curve.dprice[lo[1]], curve.dprice[lo[0]]);
    // t = (x - x_lo) / dx_lo;  result = p_lo + t * dp_lo. Plain mul +
    // add, NOT fmadd: PriceAt's expression rounds twice and so must we.
    const __m256d t = _mm256_div_pd(_mm256_sub_pd(xv, x_lo), dx_lo);
    __m256d result = _mm256_add_pd(p_lo, _mm256_mul_pd(t, dp_lo));
    // Edge blends in reverse order of PriceAt's if-chain, so earlier
    // branches override later ones exactly as taken branches would.
    const __m256d below = _mm256_mul_pd(p_first, _mm256_div_pd(xv, x_first));
    result = _mm256_blendv_pd(result, p_last, ge_last);
    result = _mm256_blendv_pd(result, below, le_first);
    result = _mm256_blendv_pd(result, zero, eq_zero);
    result = _mm256_blendv_pd(nan, result, ge_zero);
    _mm256_storeu_pd(out + i, result);
  }
  for (; i < count; ++i) out[i] = PwlEvalOne(curve, xs[i]);
}

constexpr Funcs kAvx2Funcs{DotAvx2,   AxpyAvx2,  ScaleAvx2,
                           Axpy4Avx2, Gram4Avx2, PwlBatchAvx2};

#endif  // MBP_HAVE_AVX2

const Funcs* ResolveAuto() {
  if (ActiveSimdLevel() == SimdLevel::kAvx2Fma) {
    const Funcs* avx2 = Avx2Funcs();
    if (avx2 != nullptr) return avx2;
  }
  return &kScalarFuncs;
}

// The active table. Resolved lazily so MBP_FORCE_SCALAR set by a test
// harness before first kernel use is honored; one acquire load per kernel
// call afterwards.
std::atomic<const Funcs*> g_active{nullptr};

}  // namespace

const Funcs& ScalarFuncs() { return kScalarFuncs; }

const Funcs* Avx2Funcs() {
#if defined(MBP_HAVE_AVX2)
  const CpuFeatures& features = DetectCpuFeatures();
  if (features.avx2 && features.fma) return &kAvx2Funcs;
#endif
  return nullptr;
}

const Funcs& Active() {
  const Funcs* funcs = g_active.load(std::memory_order_acquire);
  if (funcs == nullptr) {
    funcs = ResolveAuto();
    g_active.store(funcs, std::memory_order_release);
  }
  return *funcs;
}

SimdLevel ActiveLevel() {
  return &Active() == Avx2Funcs() ? SimdLevel::kAvx2Fma
                                  : SimdLevel::kScalar;
}

bool ForceLevelForTesting(std::optional<SimdLevel> level) {
  if (!level.has_value()) {
    g_active.store(ResolveAuto(), std::memory_order_release);
    return true;
  }
  if (*level == SimdLevel::kAvx2Fma) {
    const Funcs* avx2 = Avx2Funcs();
    if (avx2 == nullptr) return false;
    g_active.store(avx2, std::memory_order_release);
    return true;
  }
  g_active.store(&ScalarFuncs(), std::memory_order_release);
  return true;
}

}  // namespace mbp::linalg::kernels

#ifndef MBP_LINALG_MATRIX_H_
#define MBP_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "linalg/vector.h"

namespace mbp::linalg {

// Dense row-major matrix of doubles. Rows are contiguous, so per-example
// feature vectors (one row per training example) can be handed to the
// raw-pointer kernels in vector_ops.h without copies.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  // Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Constructs from nested initializer lists; all rows must have equal size.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  // The n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double operator()(size_t i, size_t j) const {
    MBP_CHECK_LT(i, rows_);
    MBP_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  double& operator()(size_t i, size_t j) {
    MBP_CHECK_LT(i, rows_);
    MBP_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  // Pointer to the start of row i (length cols()).
  const double* RowData(size_t i) const {
    MBP_CHECK_LT(i, rows_);
    return data_.data() + i * cols_;
  }
  double* RowData(size_t i) {
    MBP_CHECK_LT(i, rows_);
    return data_.data() + i * cols_;
  }

  // Copies row i into a Vector.
  Vector Row(size_t i) const;
  void SetRow(size_t i, const Vector& row);

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// The kernels below parallelize over disjoint row blocks of their OUTPUT,
// so every output entry is accumulated in the same order regardless of the
// thread count: results are bit-identical for any ParallelConfig, and
// identical to the serial kernels. Small problems (below an
// arithmetic-work threshold) always run inline on the calling thread.

// y = A x. Requires x.size() == A.cols(); returns a vector of length A.rows().
Vector MatVec(const Matrix& a, const Vector& x,
              const ParallelConfig& parallel = {});

// y = A^T x. Requires x.size() == A.rows(); returns a vector of length
// A.cols(). Every input row contributes to every output entry, so the
// parallel kernel partitions the output COLUMNS: each task streams all
// rows but updates only its disjoint column slice, and the element-wise
// update kernels make the result bit-identical to the serial pass for any
// partition (see kernels.h).
Vector MatTVec(const Matrix& a, const Vector& x,
               const ParallelConfig& parallel = {});

// C = A B.
Matrix MatMul(const Matrix& a, const Matrix& b,
              const ParallelConfig& parallel = {});

// Returns A^T A (the Gram matrix of the columns), a cols x cols SPD matrix
// when A has full column rank. The hot kernel behind closed-form least
// squares and Newton steps.
Matrix GramMatrix(const Matrix& a, const ParallelConfig& parallel = {});

Matrix Transpose(const Matrix& a);

}  // namespace mbp::linalg

#endif  // MBP_LINALG_MATRIX_H_

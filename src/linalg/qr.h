#ifndef MBP_LINALG_QR_H_
#define MBP_LINALG_QR_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::linalg {

// Householder QR factorization A = Q R of an m x n matrix with m >= n.
// The numerically robust route to least squares: solving min ||Ax - b||
// via QR avoids squaring the condition number the way the normal
// equations do, at ~2x the flops. The trainer uses Cholesky by default
// (datasets here are well-conditioned after standardization); QR is the
// fallback and the reference the tests cross-check against.
class QrDecomposition {
 public:
  // Factorizes `a` (m >= n required). Always succeeds for valid shapes;
  // rank deficiency shows up as (near-)zero diagonal entries of R, which
  // SolveLeastSquares reports as FailedPrecondition.
  static StatusOr<QrDecomposition> Factorize(const Matrix& a);

  // Minimizes ||A x - b||_2. Requires b.size() == rows(). Returns
  // FailedPrecondition when A is numerically rank-deficient.
  StatusOr<Vector> SolveLeastSquares(const Vector& b) const;

  // Applies Q^T to a length-m vector (in place on a copy).
  Vector ApplyQTranspose(const Vector& b) const;

  // The upper-triangular n x n factor R.
  Matrix R() const;

  size_t rows() const { return householder_.rows(); }
  size_t cols() const { return householder_.cols(); }

 private:
  QrDecomposition(Matrix householder, Vector tau)
      : householder_(std::move(householder)), tau_(std::move(tau)) {}

  // Compact storage: R in the upper triangle, Householder vectors below
  // the diagonal (with implicit unit first entry), scaling factors in tau_.
  Matrix householder_;
  Vector tau_;
};

// One-shot least squares min ||A x - b|| via QR.
StatusOr<Vector> LeastSquaresQr(const Matrix& a, const Vector& b);

}  // namespace mbp::linalg

#endif  // MBP_LINALG_QR_H_

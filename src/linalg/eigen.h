#ifndef MBP_LINALG_EIGEN_H_
#define MBP_LINALG_EIGEN_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::linalg {

// Eigendecomposition of a symmetric matrix by the cyclic Jacobi rotation
// method: A = V diag(values) V^T. Used for conditioning diagnostics of
// Gram matrices (ill-conditioned normal equations explain square-loss
// error-curve slopes) and exposed as general linear-algebra substrate.
struct SymmetricEigen {
  Vector values;   // ascending
  Matrix vectors;  // column j is the eigenvector of values[j]
};

struct JacobiOptions {
  size_t max_sweeps = 50;
  // Converged when the largest off-diagonal magnitude falls below
  // tolerance * max diagonal magnitude.
  double tolerance = 1e-12;
};

// Requires `a` square and symmetric (checked against `symmetry_tolerance`
// relative asymmetry). Returns FailedPrecondition if the sweep budget is
// exhausted before convergence (does not happen for well-scaled inputs).
StatusOr<SymmetricEigen> JacobiEigenDecomposition(
    const Matrix& a, const JacobiOptions& options = {});

// Spectral condition number max|lambda| / min|lambda| of a symmetric
// matrix; +infinity when the smallest eigenvalue is numerically zero.
StatusOr<double> SpectralConditionNumber(const Matrix& a);

}  // namespace mbp::linalg

#endif  // MBP_LINALG_EIGEN_H_

#ifndef MBP_LINALG_CONJUGATE_GRADIENT_H_
#define MBP_LINALG_CONJUGATE_GRADIENT_H_

#include <functional>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::linalg {

// Conjugate-gradient solver for SPD systems A x = b. Matrix-free: the
// caller supplies the operator v -> A v, so the normal equations
// (X^T X + c I) w = X^T y can be solved without ever materializing the
// Gram matrix — the route to high-dimensional listings where d x d
// storage hurts.
struct CgOptions {
  size_t max_iterations = 1000;
  // Stop when ||residual|| <= tolerance * ||b||.
  double relative_tolerance = 1e-10;
};

struct CgResult {
  Vector x;
  size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

// Callable mapping a Vector to A * v (A symmetric positive definite).
using LinearOperator = std::function<Vector(const Vector&)>;

// Solves A x = b from the zero initial guess. FailedPrecondition when the
// operator produces a direction of non-positive curvature (A not PD).
StatusOr<CgResult> ConjugateGradientSolve(const LinearOperator& apply_a,
                                          const Vector& b,
                                          const CgOptions& options = {});

// Dense convenience overload.
StatusOr<CgResult> ConjugateGradientSolve(const Matrix& a, const Vector& b,
                                          const CgOptions& options = {});

// Matrix-free ridge regression: solves
//   (X^T X / n + 2*l2*I) w = X^T y / n
// using only MatVec/MatTVec products with X. Equivalent to
// TrainLinearRegression's normal equations, without forming X^T X.
StatusOr<CgResult> SolveRidgeMatrixFree(const Matrix& x, const Vector& y,
                                        double l2,
                                        const CgOptions& options = {});

}  // namespace mbp::linalg

#endif  // MBP_LINALG_CONJUGATE_GRADIENT_H_

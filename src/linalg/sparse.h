#ifndef MBP_LINALG_SPARSE_H_
#define MBP_LINALG_SPARSE_H_

// Compressed-sparse-row matrix substrate. The paper's Example 3 embeds
// text into sparse high-dimensional vectors before fitting logistic
// regression; bag-of-words features with d in the thousands are ~99%
// zeros, where dense storage and kernels waste both memory and time.

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::linalg {

// One non-zero entry during construction.
struct SparseEntry {
  size_t row = 0;
  size_t col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  // Builds CSR storage from (row, col, value) triplets. Duplicate
  // coordinates are summed; explicit zeros are dropped. Entries out of
  // the rows x cols range are an error.
  static StatusOr<SparseMatrix> FromTriplets(
      size_t rows, size_t cols, std::vector<SparseEntry> entries);

  // Converts a dense matrix, dropping entries with |a_ij| <= tolerance.
  static SparseMatrix FromDense(const Matrix& dense,
                                double tolerance = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t num_nonzeros() const { return values_.size(); }

  // Number of stored entries in row i.
  size_t RowNonzeros(size_t i) const {
    MBP_CHECK_LT(i, rows_);
    return row_offsets_[i + 1] - row_offsets_[i];
  }

  // Raw CSR access for row i: parallel arrays of length RowNonzeros(i).
  const size_t* RowIndices(size_t i) const {
    MBP_CHECK_LT(i, rows_);
    return col_indices_.data() + row_offsets_[i];
  }
  const double* RowValues(size_t i) const {
    MBP_CHECK_LT(i, rows_);
    return values_.data() + row_offsets_[i];
  }

  // Sparse dot of row i with a dense vector of length cols().
  double RowDot(size_t i, const Vector& x) const;

  // y = A x (length rows()).
  Vector Multiply(const Vector& x) const;

  // y = A^T x (length cols()).
  Vector TransposeMultiply(const Vector& x) const;

  // Dense copy (for tests and small matrices).
  Matrix ToDense() const;

 private:
  SparseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {}

  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_offsets_;  // length rows_ + 1
  std::vector<size_t> col_indices_;  // length nnz
  std::vector<double> values_;       // length nnz
};

}  // namespace mbp::linalg

#endif  // MBP_LINALG_SPARSE_H_

#include "linalg/qr.h"

#include <cmath>

namespace mbp::linalg {

StatusOr<QrDecomposition> QrDecomposition::Factorize(const Matrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n || n == 0) {
    return InvalidArgumentError("QR requires rows >= cols >= 1");
  }
  Matrix h = a;
  Vector tau(n);
  for (size_t k = 0; k < n; ++k) {
    // Householder vector annihilating column k below the diagonal.
    double norm_sq = 0.0;
    for (size_t i = k; i < m; ++i) norm_sq += h(i, k) * h(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      tau[k] = 0.0;  // column already zero; R_kk = 0 (rank deficient)
      continue;
    }
    // alpha chosen with the opposite sign of the pivot for stability.
    const double alpha = (h(k, k) >= 0.0) ? -norm : norm;
    const double v0 = h(k, k) - alpha;
    // v = (v0, h[k+1..m, k]); store normalized v (v0 := 1) below the
    // diagonal, tau = 2 / ||v||^2 * v0^2-scaled form. Using the standard
    // LAPACK-style convention: w = v / v0, tau_k = v0^2 * 2/||v||^2...
    // Here we keep the simpler explicit form: store v_i / v0 and
    // tau = 2 v0^2 / ||v||^2.
    double v_norm_sq = v0 * v0;
    for (size_t i = k + 1; i < m; ++i) v_norm_sq += h(i, k) * h(i, k);
    const double tau_k = 2.0 * v0 * v0 / v_norm_sq;
    for (size_t i = k + 1; i < m; ++i) h(i, k) /= v0;
    h(k, k) = alpha;  // R_kk
    tau[k] = tau_k;

    // Apply H = I - tau * w w^T (w has implicit leading 1) to the
    // remaining columns.
    for (size_t j = k + 1; j < n; ++j) {
      double dot = h(k, j);
      for (size_t i = k + 1; i < m; ++i) dot += h(i, k) * h(i, j);
      const double scale = tau_k * dot;
      h(k, j) -= scale;
      for (size_t i = k + 1; i < m; ++i) h(i, j) -= scale * h(i, k);
    }
  }
  return QrDecomposition(std::move(h), std::move(tau));
}

Vector QrDecomposition::ApplyQTranspose(const Vector& b) const {
  MBP_CHECK_EQ(b.size(), rows());
  const size_t m = rows();
  const size_t n = cols();
  Vector out = b;
  for (size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double dot = out[k];
    for (size_t i = k + 1; i < m; ++i) dot += householder_(i, k) * out[i];
    const double scale = tau_[k] * dot;
    out[k] -= scale;
    for (size_t i = k + 1; i < m; ++i) {
      out[i] -= scale * householder_(i, k);
    }
  }
  return out;
}

StatusOr<Vector> QrDecomposition::SolveLeastSquares(const Vector& b) const {
  if (b.size() != rows()) {
    return InvalidArgumentError("rhs length must equal row count");
  }
  const size_t n = cols();
  const Vector qtb = ApplyQTranspose(b);
  // Back-substitute R x = (Q^T b)[0..n).
  Vector x(n);
  for (size_t kk = n; kk-- > 0;) {
    double sum = qtb[kk];
    for (size_t j = kk + 1; j < n; ++j) sum -= householder_(kk, j) * x[j];
    const double diag = householder_(kk, kk);
    if (std::fabs(diag) < 1e-12) {
      return FailedPreconditionError(
          "matrix is numerically rank-deficient");
    }
    x[kk] = sum / diag;
  }
  return x;
}

Matrix QrDecomposition::R() const {
  const size_t n = cols();
  Matrix r(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) r(i, j) = householder_(i, j);
  }
  return r;
}

StatusOr<Vector> LeastSquaresQr(const Matrix& a, const Vector& b) {
  MBP_ASSIGN_OR_RETURN(QrDecomposition qr, QrDecomposition::Factorize(a));
  return qr.SolveLeastSquares(b);
}

}  // namespace mbp::linalg

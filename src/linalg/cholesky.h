#ifndef MBP_LINALG_CHOLESKY_H_
#define MBP_LINALG_CHOLESKY_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::linalg {

// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
// Used to solve the (regularized) normal equations of least squares and the
// Newton systems of logistic regression.
class Cholesky {
 public:
  // Factorizes `a` (must be square and symmetric). Returns
  // FailedPrecondition if `a` is not (numerically) positive definite.
  static StatusOr<Cholesky> Factorize(const Matrix& a);

  // Solves A x = b using the stored factor. Requires b.size() == dim().
  Vector Solve(const Vector& b) const;

  // Solves A X = B column-wise; B must have dim() rows.
  Matrix Solve(const Matrix& b) const;

  // log(det(A)) = 2 * sum_i log(L_ii). Finite because all L_ii > 0.
  double LogDeterminant() const;

  size_t dim() const { return l_.rows(); }

  // The lower-triangular factor L.
  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}

  Matrix l_;
};

// Solves the SPD system A x = b, adding `ridge * I` jitter before
// factorizing (ridge may be 0). Convenience wrapper for one-shot solves.
StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b,
                          double ridge = 0.0);

}  // namespace mbp::linalg

#endif  // MBP_LINALG_CHOLESKY_H_

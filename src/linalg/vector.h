#ifndef MBP_LINALG_VECTOR_H_
#define MBP_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace mbp::linalg {

// Dense vector of doubles. A thin, value-semantic wrapper over contiguous
// storage; numerical kernels live in vector_ops.h as free functions so that
// they can also operate on raw spans of Matrix rows.
class Vector {
 public:
  Vector() = default;
  // Zero-initialized vector of the given dimension.
  explicit Vector(size_t size) : data_(size, 0.0) {}
  Vector(size_t size, double fill) : data_(size, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const {
    MBP_CHECK_LT(i, data_.size());
    return data_[i];
  }
  double& operator[](size_t i) {
    MBP_CHECK_LT(i, data_.size());
    return data_[i];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  const std::vector<double>& values() const { return data_; }

  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<double> data_;
};

}  // namespace mbp::linalg

#endif  // MBP_LINALG_VECTOR_H_

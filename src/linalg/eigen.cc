#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace mbp::linalg {
namespace {

// Largest |a_ij|, i != j.
double MaxOffDiagonal(const Matrix& a) {
  double max_abs = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) {
      max_abs = std::max(max_abs, std::fabs(a(i, j)));
    }
  }
  return max_abs;
}

double MaxDiagonal(const Matrix& a) {
  double max_abs = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    max_abs = std::max(max_abs, std::fabs(a(i, i)));
  }
  return max_abs;
}

}  // namespace

StatusOr<SymmetricEigen> JacobiEigenDecomposition(
    const Matrix& a, const JacobiOptions& options) {
  const size_t n = a.rows();
  if (n == 0 || a.cols() != n) {
    return InvalidArgumentError("matrix must be square and non-empty");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double scale =
          std::max({1.0, std::fabs(a(i, j)), std::fabs(a(j, i))});
      if (std::fabs(a(i, j) - a(j, i)) > 1e-9 * scale) {
        return InvalidArgumentError("matrix is not symmetric");
      }
    }
  }

  Matrix work = a;
  Matrix v = Matrix::Identity(n);
  const double diag_scale = std::max(MaxDiagonal(work), 1e-300);

  bool converged = false;
  for (size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (MaxOffDiagonal(work) <= options.tolerance * diag_scale) {
      converged = true;
      break;
    }
    // One cyclic sweep of Jacobi rotations.
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = work(p, p);
        const double aqq = work(q, q);
        // Rotation angle zeroing work(p, q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = work(k, p);
          const double akq = work(k, q);
          work(k, p) = c * akp - s * akq;
          work(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = work(p, k);
          const double aqk = work(q, k);
          work(p, k) = c * apk - s * aqk;
          work(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged &&
      MaxOffDiagonal(work) > options.tolerance * diag_scale) {
    return FailedPreconditionError(
        "Jacobi iteration did not converge within the sweep budget");
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns along.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    return work(i, i) < work(j, j);
  });
  SymmetricEigen result{Vector(n), Matrix(n, n)};
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = work(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      result.vectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

StatusOr<double> SpectralConditionNumber(const Matrix& a) {
  MBP_ASSIGN_OR_RETURN(SymmetricEigen eigen, JacobiEigenDecomposition(a));
  double max_abs = 0.0;
  double min_abs = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < eigen.values.size(); ++i) {
    const double abs_value = std::fabs(eigen.values[i]);
    max_abs = std::max(max_abs, abs_value);
    min_abs = std::min(min_abs, abs_value);
  }
  if (min_abs <= 1e-300 * max_abs) {
    return std::numeric_limits<double>::infinity();
  }
  return max_abs / min_abs;
}

}  // namespace mbp::linalg

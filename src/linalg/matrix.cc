#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "linalg/vector_ops.h"

namespace mbp::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() == 0 ? 0 : rows.begin()->size()) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    MBP_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix eye(n, n);
  for (size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Vector Matrix::Row(size_t i) const {
  MBP_CHECK_LT(i, rows_);
  Vector out(cols_);
  std::copy(RowData(i), RowData(i) + cols_, out.data());
  return out;
}

void Matrix::SetRow(size_t i, const Vector& row) {
  MBP_CHECK_LT(i, rows_);
  MBP_CHECK_EQ(row.size(), cols_);
  std::copy(row.data(), row.data() + cols_, RowData(i));
}

namespace {

// Arithmetic-work floor below which the parallel kernels stay inline: pool
// dispatch costs ~a few microseconds, so only problems with clearly more
// work than that fan out.
constexpr size_t kMinParallelFlops = size_t{1} << 17;

// Chunks a row range so the pool sees ~8 claimable chunks per thread
// (dynamic claiming then balances uneven work, e.g. the Gram triangle).
size_t RowGrain(size_t rows, const ParallelConfig& parallel) {
  const size_t target = parallel.ResolvedThreads() * 8;
  return std::max<size_t>(1, rows / std::max<size_t>(1, target));
}

bool AllFinite(const double* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

}  // namespace

Vector MatVec(const Matrix& a, const Vector& x,
              const ParallelConfig& parallel) {
  MBP_CHECK_EQ(a.cols(), x.size());
  const kernels::Funcs& f = kernels::Active();
  Vector y(a.rows());
  const auto rows_block = [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      y[i] = f.dot(a.RowData(i), x.data(), a.cols());
    }
    return Status::OK();
  };
  if (a.rows() * a.cols() < kMinParallelFlops) {
    MBP_CHECK(rows_block(0, a.rows()).ok());
  } else {
    MBP_CHECK(ParallelFor(parallel, 0, a.rows(),
                          RowGrain(a.rows(), parallel), rows_block)
                  .ok());
  }
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x,
               const ParallelConfig& parallel) {
  MBP_CHECK_EQ(a.rows(), x.size());
  const kernels::Funcs& f = kernels::Active();
  const size_t n = a.rows();
  Vector y(a.cols());
  // Each task owns the column slice [col_begin, col_end) of the output and
  // streams every input row over just that slice. Output entries are
  // disjoint and each y[c] accumulates rows in ascending order through the
  // element-wise axpy kernels, so any partition — including the serial one
  // — produces bit-identical results.
  const auto cols_block = [&](size_t col_begin, size_t col_end) {
    const size_t len = col_end - col_begin;
    double* out = y.data() + col_begin;
    size_t r = 0;
    for (; r + 4 <= n; r += 4) {
      const double alphas[4] = {x[r], x[r + 1], x[r + 2], x[r + 3]};
      f.axpy4(alphas, a.RowData(r) + col_begin,
              a.RowData(r + 1) + col_begin, a.RowData(r + 2) + col_begin,
              a.RowData(r + 3) + col_begin, out, len);
    }
    for (; r < n; ++r) {
      f.axpy(x[r], a.RowData(r) + col_begin, out, len);
    }
    return Status::OK();
  };
  if (n * a.cols() < kMinParallelFlops) {
    MBP_CHECK(cols_block(0, a.cols()).ok());
  } else {
    MBP_CHECK(ParallelFor(parallel, 0, a.cols(),
                          RowGrain(a.cols(), parallel), cols_block)
                  .ok());
  }
  return y;
}

Matrix MatMul(const Matrix& a, const Matrix& b,
              const ParallelConfig& parallel) {
  MBP_CHECK_EQ(a.cols(), b.rows());
  const kernels::Funcs& f = kernels::Active();
  Matrix c(a.rows(), b.cols());
  // i-k-j order keeps the inner loop streaming over contiguous rows of b,
  // register-blocked four k's at a time. Each output row accumulates
  // independently in k order, so a row partition leaves every entry's
  // addition sequence unchanged.
  //
  // Zero-skip guard: skipping k when a(i, k) == 0 drops the 0 * b(k, j)
  // products — fine when b is finite (they are exact zeros), but silently
  // loses the NaN/Inf that 0 * non-finite must produce. The skip is
  // therefore enabled only after a one-pass finiteness check of b (cost
  // O(k·m), negligible against the O(n·k·m) multiply).
  const bool b_finite = AllFinite(b.data(), b.rows() * b.cols());
  const auto rows_block = [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const double* a_row = a.RowData(i);
      double* c_row = c.RowData(i);
      size_t k = 0;
      for (; k + 4 <= a.cols(); k += 4) {
        const double alphas[4] = {a_row[k], a_row[k + 1], a_row[k + 2],
                                  a_row[k + 3]};
        if (b_finite && alphas[0] == 0.0 && alphas[1] == 0.0 &&
            alphas[2] == 0.0 && alphas[3] == 0.0) {
          continue;
        }
        f.axpy4(alphas, b.RowData(k), b.RowData(k + 1), b.RowData(k + 2),
                b.RowData(k + 3), c_row, b.cols());
      }
      for (; k < a.cols(); ++k) {
        const double a_ik = a_row[k];
        if (b_finite && a_ik == 0.0) continue;
        f.axpy(a_ik, b.RowData(k), c_row, b.cols());
      }
    }
    return Status::OK();
  };
  if (a.rows() * a.cols() * b.cols() < kMinParallelFlops) {
    MBP_CHECK(rows_block(0, a.rows()).ok());
  } else {
    MBP_CHECK(ParallelFor(parallel, 0, a.rows(),
                          RowGrain(a.rows(), parallel), rows_block)
                  .ok());
  }
  return c;
}

Matrix GramMatrix(const Matrix& a, const ParallelConfig& parallel) {
  const size_t d = a.cols();
  const size_t n = a.rows();
  const kernels::Funcs& f = kernels::Active();
  Matrix g(d, d);
  // Fill the lower triangle then mirror, halving the flops. Examples are
  // streamed in fixed blocks of four (remainder rows after all blocks), so
  // entry (i, j) sees the same add sequence in the serial and every
  // parallel partition: tasks own disjoint blocks of OUTPUT rows i, never
  // slices of the example stream. Unlike the pre-SIMD kernel there is no
  // a(r, i) == 0 skip: the skip dropped 0 * NaN/Inf contributions from
  // other entries of the same example row, and the branchy inner loop
  // defeated vectorization anyway.
  const auto update_rows = [&](size_t i_begin, size_t i_end) {
    size_t r = 0;
    for (; r + 4 <= n; r += 4) {
      f.gram4(a.RowData(r), a.RowData(r + 1), a.RowData(r + 2),
              a.RowData(r + 3), g.data(), d, i_begin, i_end);
    }
    for (; r < n; ++r) {
      const double* row = a.RowData(r);
      for (size_t i = i_begin; i < i_end; ++i) {
        f.axpy(row[i], row, g.RowData(i), i + 1);
      }
    }
    return Status::OK();
  };
  if (n * d * d < kMinParallelFlops) {
    MBP_CHECK(update_rows(0, d).ok());
  } else {
    MBP_CHECK(ParallelFor(parallel, 0, d, RowGrain(d, parallel),
                          update_rows)
                  .ok());
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix Transpose(const Matrix& a) {
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  Matrix t(cols, rows);
  // A row-major transpose reads rows of `a` sequentially but writes `t`
  // with a `rows`-doubles stride, so on paper-scale matrices every store
  // of the naive i/j loop misses cache. Walking kTile x kTile blocks keeps
  // both the read rows and the written rows of the block resident
  // (2 * 64 * 64 * 8 bytes = 64 KiB working set, inside L2), turning the
  // column-strided stores into per-block streaming. Each element is still
  // a single copy, so the result is exactly the naive loop's.
  constexpr size_t kTile = 64;
  double* out = t.data();
  for (size_t ii = 0; ii < rows; ii += kTile) {
    const size_t i_end = std::min(ii + kTile, rows);
    for (size_t jj = 0; jj < cols; jj += kTile) {
      const size_t j_end = std::min(jj + kTile, cols);
      for (size_t i = ii; i < i_end; ++i) {
        const double* row = a.RowData(i);
        for (size_t j = jj; j < j_end; ++j) out[j * rows + i] = row[j];
      }
    }
  }
  return t;
}

}  // namespace mbp::linalg

#include "linalg/matrix.h"

#include <algorithm>

#include "linalg/vector_ops.h"

namespace mbp::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() == 0 ? 0 : rows.begin()->size()) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    MBP_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix eye(n, n);
  for (size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Vector Matrix::Row(size_t i) const {
  MBP_CHECK_LT(i, rows_);
  Vector out(cols_);
  std::copy(RowData(i), RowData(i) + cols_, out.data());
  return out;
}

void Matrix::SetRow(size_t i, const Vector& row) {
  MBP_CHECK_LT(i, rows_);
  MBP_CHECK_EQ(row.size(), cols_);
  std::copy(row.data(), row.data() + cols_, RowData(i));
}

namespace {

// Arithmetic-work floor below which the parallel kernels stay inline: pool
// dispatch costs ~a few microseconds, so only problems with clearly more
// work than that fan out.
constexpr size_t kMinParallelFlops = size_t{1} << 17;

// Chunks a row range so the pool sees ~8 claimable chunks per thread
// (dynamic claiming then balances uneven work, e.g. the Gram triangle).
size_t RowGrain(size_t rows, const ParallelConfig& parallel) {
  const size_t target = parallel.ResolvedThreads() * 8;
  return std::max<size_t>(1, rows / std::max<size_t>(1, target));
}

}  // namespace

Vector MatVec(const Matrix& a, const Vector& x,
              const ParallelConfig& parallel) {
  MBP_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows());
  const auto rows_block = [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      y[i] = Dot(a.RowData(i), x.data(), a.cols());
    }
    return Status::OK();
  };
  if (a.rows() * a.cols() < kMinParallelFlops) {
    MBP_CHECK(rows_block(0, a.rows()).ok());
  } else {
    MBP_CHECK(ParallelFor(parallel, 0, a.rows(),
                          RowGrain(a.rows(), parallel), rows_block)
                  .ok());
  }
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  MBP_CHECK_EQ(a.rows(), x.size());
  Vector y(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    Axpy(x[i], a.RowData(i), y.data(), a.cols());
  }
  return y;
}

Matrix MatMul(const Matrix& a, const Matrix& b,
              const ParallelConfig& parallel) {
  MBP_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  // Each output row accumulates independently in k order, so a row
  // partition leaves every entry's addition sequence unchanged.
  const auto rows_block = [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      double* c_row = c.RowData(i);
      for (size_t k = 0; k < a.cols(); ++k) {
        const double a_ik = a(i, k);
        if (a_ik == 0.0) continue;
        Axpy(a_ik, b.RowData(k), c_row, b.cols());
      }
    }
    return Status::OK();
  };
  if (a.rows() * a.cols() * b.cols() < kMinParallelFlops) {
    MBP_CHECK(rows_block(0, a.rows()).ok());
  } else {
    MBP_CHECK(ParallelFor(parallel, 0, a.rows(),
                          RowGrain(a.rows(), parallel), rows_block)
                  .ok());
  }
  return c;
}

Matrix GramMatrix(const Matrix& a, const ParallelConfig& parallel) {
  const size_t d = a.cols();
  const size_t n = a.rows();
  Matrix g(d, d);
  // Fill the lower triangle then mirror, halving the flops. Entry (i, j)
  // accumulates sum_r a(r, i) * a(r, j) in ascending r in BOTH kernels
  // below, so the parallel result is bit-identical to the serial one.
  if (n * d * d < kMinParallelFlops) {
    // One streaming pass over the examples, updating the whole triangle.
    for (size_t r = 0; r < n; ++r) {
      const double* row = a.RowData(r);
      for (size_t i = 0; i < d; ++i) {
        const double v = row[i];
        if (v == 0.0) continue;
        double* g_row = g.RowData(i);
        for (size_t j = 0; j <= i; ++j) g_row[j] += v * row[j];
      }
    }
  } else {
    // Each task owns a block of OUTPUT rows and streams the examples for
    // just those rows: no shared accumulators, no reduction step.
    MBP_CHECK(ParallelFor(parallel, 0, d, RowGrain(d, parallel),
                          [&](size_t i_begin, size_t i_end) {
                            for (size_t r = 0; r < n; ++r) {
                              const double* row = a.RowData(r);
                              for (size_t i = i_begin; i < i_end; ++i) {
                                const double v = row[i];
                                if (v == 0.0) continue;
                                double* g_row = g.RowData(i);
                                for (size_t j = 0; j <= i; ++j) {
                                  g_row[j] += v * row[j];
                                }
                              }
                            }
                            return Status::OK();
                          })
                  .ok());
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix Transpose(const Matrix& a) {
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  Matrix t(cols, rows);
  // A row-major transpose reads rows of `a` sequentially but writes `t`
  // with a `rows`-doubles stride, so on paper-scale matrices every store
  // of the naive i/j loop misses cache. Walking kTile x kTile blocks keeps
  // both the read rows and the written rows of the block resident
  // (2 * 64 * 64 * 8 bytes = 64 KiB working set, inside L2), turning the
  // column-strided stores into per-block streaming. Each element is still
  // a single copy, so the result is exactly the naive loop's.
  constexpr size_t kTile = 64;
  double* out = t.data();
  for (size_t ii = 0; ii < rows; ii += kTile) {
    const size_t i_end = std::min(ii + kTile, rows);
    for (size_t jj = 0; jj < cols; jj += kTile) {
      const size_t j_end = std::min(jj + kTile, cols);
      for (size_t i = ii; i < i_end; ++i) {
        const double* row = a.RowData(i);
        for (size_t j = jj; j < j_end; ++j) out[j * rows + i] = row[j];
      }
    }
  }
  return t;
}

}  // namespace mbp::linalg

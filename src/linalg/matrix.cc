#include "linalg/matrix.h"

#include <algorithm>

#include "linalg/vector_ops.h"

namespace mbp::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() == 0 ? 0 : rows.begin()->size()) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    MBP_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix eye(n, n);
  for (size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Vector Matrix::Row(size_t i) const {
  MBP_CHECK_LT(i, rows_);
  Vector out(cols_);
  std::copy(RowData(i), RowData(i) + cols_, out.data());
  return out;
}

void Matrix::SetRow(size_t i, const Vector& row) {
  MBP_CHECK_LT(i, rows_);
  MBP_CHECK_EQ(row.size(), cols_);
  std::copy(row.data(), row.data() + cols_, RowData(i));
}

Vector MatVec(const Matrix& a, const Vector& x) {
  MBP_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    y[i] = Dot(a.RowData(i), x.data(), a.cols());
  }
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  MBP_CHECK_EQ(a.rows(), x.size());
  Vector y(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    Axpy(x[i], a.RowData(i), y.data(), a.cols());
  }
  return y;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  MBP_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < a.rows(); ++i) {
    double* c_row = c.RowData(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double a_ik = a(i, k);
      if (a_ik == 0.0) continue;
      Axpy(a_ik, b.RowData(k), c_row, b.cols());
    }
  }
  return c;
}

Matrix GramMatrix(const Matrix& a) {
  const size_t d = a.cols();
  Matrix g(d, d);
  // Accumulate rank-1 updates row by row; fill the lower triangle then
  // mirror, halving the flops.
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowData(r);
    for (size_t i = 0; i < d; ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      double* g_row = g.RowData(i);
      for (size_t j = 0; j <= i; ++j) g_row[j] += v * row[j];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

}  // namespace mbp::linalg

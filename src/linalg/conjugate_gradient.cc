#include "linalg/conjugate_gradient.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace mbp::linalg {

StatusOr<CgResult> ConjugateGradientSolve(const LinearOperator& apply_a,
                                          const Vector& b,
                                          const CgOptions& options) {
  if (b.empty()) return InvalidArgumentError("empty right-hand side");
  const double b_norm = Norm2(b);
  CgResult result{Vector(b.size()), 0, b_norm, false};
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  const double threshold = options.relative_tolerance * b_norm;

  Vector residual = b;  // r = b - A*0
  Vector direction = residual;
  double residual_sq = SquaredNorm2(residual);
  for (; result.iterations < options.max_iterations; ++result.iterations) {
    if (std::sqrt(residual_sq) <= threshold) {
      result.converged = true;
      break;
    }
    const Vector a_direction = apply_a(direction);
    if (a_direction.size() != b.size()) {
      return InvalidArgumentError("operator changed the dimension");
    }
    const double curvature = Dot(direction, a_direction);
    if (!(curvature > 0.0)) {
      return FailedPreconditionError(
          "operator is not positive definite (non-positive curvature)");
    }
    const double step = residual_sq / curvature;
    Axpy(step, direction.data(), result.x.data(), b.size());
    Axpy(-step, a_direction.data(), residual.data(), b.size());
    const double next_residual_sq = SquaredNorm2(residual);
    const double beta = next_residual_sq / residual_sq;
    for (size_t i = 0; i < b.size(); ++i) {
      direction[i] = residual[i] + beta * direction[i];
    }
    residual_sq = next_residual_sq;
  }
  result.residual_norm = std::sqrt(residual_sq);
  result.converged =
      result.converged || result.residual_norm <= threshold;
  return result;
}

StatusOr<CgResult> ConjugateGradientSolve(const Matrix& a, const Vector& b,
                                          const CgOptions& options) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return InvalidArgumentError("matrix/vector shape mismatch");
  }
  return ConjugateGradientSolve(
      [&a](const Vector& v) { return MatVec(a, v); }, b, options);
}

StatusOr<CgResult> SolveRidgeMatrixFree(const Matrix& x, const Vector& y,
                                        double l2,
                                        const CgOptions& options) {
  if (x.rows() != y.size()) {
    return InvalidArgumentError("rows of X must match length of y");
  }
  if (l2 < 0.0) return InvalidArgumentError("l2 must be non-negative");
  const double n = static_cast<double>(x.rows());
  Vector rhs = MatTVec(x, y);
  Scale(1.0 / n, rhs.data(), rhs.size());
  const LinearOperator normal_operator = [&x, l2, n](const Vector& w) {
    Vector xw = MatVec(x, w);
    Vector xtxw = MatTVec(x, xw);
    for (size_t j = 0; j < xtxw.size(); ++j) {
      xtxw[j] = xtxw[j] / n + 2.0 * l2 * w[j];
    }
    return xtxw;
  };
  return ConjugateGradientSolve(normal_operator, rhs, options);
}

}  // namespace mbp::linalg

#ifndef MBP_LINALG_VECTOR_OPS_H_
#define MBP_LINALG_VECTOR_OPS_H_

#include <cstddef>

#include "linalg/vector.h"

namespace mbp::linalg {

// Raw-pointer kernels. Callers guarantee both arrays have length n.

// Returns sum_i a[i] * b[i].
double Dot(const double* a, const double* b, size_t n);

// y[i] += alpha * x[i].
void Axpy(double alpha, const double* x, double* y, size_t n);

// x[i] *= alpha.
void Scale(double alpha, double* x, size_t n);

// Vector-typed conveniences. Dimension mismatches are programming errors.

double Dot(const Vector& a, const Vector& b);

// Euclidean (L2) norm.
double Norm2(const Vector& v);
// Squared Euclidean norm; cheaper and exact where the root is not needed.
double SquaredNorm2(const Vector& v);
// Max-abs (L-infinity) norm.
double NormInf(const Vector& v);

Vector Add(const Vector& a, const Vector& b);
Vector Subtract(const Vector& a, const Vector& b);
Vector Scaled(const Vector& v, double alpha);

// result = a + alpha * b.
Vector AddScaled(const Vector& a, double alpha, const Vector& b);

// Squared Euclidean distance ||a - b||^2.
double SquaredDistance(const Vector& a, const Vector& b);

}  // namespace mbp::linalg

#endif  // MBP_LINALG_VECTOR_OPS_H_

#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

namespace mbp::linalg {

StatusOr<SparseMatrix> SparseMatrix::FromTriplets(
    size_t rows, size_t cols, std::vector<SparseEntry> entries) {
  if (rows == 0 || cols == 0) {
    return InvalidArgumentError("matrix dimensions must be positive");
  }
  for (const SparseEntry& entry : entries) {
    if (entry.row >= rows || entry.col >= cols) {
      return InvalidArgumentError("entry out of range: (" +
                                  std::to_string(entry.row) + ", " +
                                  std::to_string(entry.col) + ")");
    }
    if (!std::isfinite(entry.value)) {
      return InvalidArgumentError("non-finite entry value");
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix matrix(rows, cols);
  matrix.row_offsets_.assign(rows + 1, 0);
  matrix.col_indices_.reserve(entries.size());
  matrix.values_.reserve(entries.size());
  size_t i = 0;
  for (size_t row = 0; row < rows; ++row) {
    matrix.row_offsets_[row] = matrix.values_.size();
    while (i < entries.size() && entries[i].row == row) {
      // Sum duplicates sharing (row, col).
      double value = entries[i].value;
      const size_t col = entries[i].col;
      ++i;
      while (i < entries.size() && entries[i].row == row &&
             entries[i].col == col) {
        value += entries[i].value;
        ++i;
      }
      if (value != 0.0) {
        matrix.col_indices_.push_back(col);
        matrix.values_.push_back(value);
      }
    }
  }
  matrix.row_offsets_[rows] = matrix.values_.size();
  return matrix;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense,
                                     double tolerance) {
  std::vector<SparseEntry> entries;
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); ++j) {
      if (std::fabs(dense(i, j)) > tolerance) {
        entries.push_back({i, j, dense(i, j)});
      }
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(entries))
      .value();
}

double SparseMatrix::RowDot(size_t i, const Vector& x) const {
  MBP_CHECK_EQ(x.size(), cols_);
  const size_t* indices = RowIndices(i);
  const double* values = RowValues(i);
  const size_t count = RowNonzeros(i);
  double total = 0.0;
  for (size_t k = 0; k < count; ++k) {
    total += values[k] * x[indices[k]];
  }
  return total;
}

Vector SparseMatrix::Multiply(const Vector& x) const {
  MBP_CHECK_EQ(x.size(), cols_);
  Vector y(rows_);
  for (size_t i = 0; i < rows_; ++i) y[i] = RowDot(i, x);
  return y;
}

Vector SparseMatrix::TransposeMultiply(const Vector& x) const {
  MBP_CHECK_EQ(x.size(), rows_);
  Vector y(cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double scale = x[i];
    if (scale == 0.0) continue;
    const size_t* indices = RowIndices(i);
    const double* values = RowValues(i);
    const size_t count = RowNonzeros(i);
    for (size_t k = 0; k < count; ++k) {
      y[indices[k]] += scale * values[k];
    }
  }
  return y;
}

Matrix SparseMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const size_t* indices = RowIndices(i);
    const double* values = RowValues(i);
    const size_t count = RowNonzeros(i);
    for (size_t k = 0; k < count; ++k) {
      dense(i, indices[k]) = values[k];
    }
  }
  return dense;
}

}  // namespace mbp::linalg

#include "linalg/cholesky.h"

#include <cmath>

namespace mbp::linalg {

StatusOr<Cholesky> Cholesky::Factorize(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return FailedPreconditionError(
          "matrix is not numerically positive definite");
    }
    const double l_jj = std::sqrt(diag);
    l(j, j) = l_jj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l_jj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::Solve(const Vector& b) const {
  const size_t n = dim();
  MBP_CHECK_EQ(b.size(), n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  MBP_CHECK_EQ(b.rows(), dim());
  Matrix x(b.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    Vector col(b.rows());
    for (size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    Vector sol = Solve(col);
    for (size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double log_det = 0.0;
  for (size_t i = 0; i < dim(); ++i) log_det += 2.0 * std::log(l_(i, i));
  return log_det;
}

StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b, double ridge) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("SolveSpd requires a square matrix");
  }
  if (a.rows() != b.size()) {
    return InvalidArgumentError("SolveSpd dimension mismatch");
  }
  Matrix regularized = a;
  if (ridge != 0.0) {
    for (size_t i = 0; i < a.rows(); ++i) regularized(i, i) += ridge;
  }
  MBP_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::Factorize(regularized));
  return chol.Solve(b);
}

}  // namespace mbp::linalg

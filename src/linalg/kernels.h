#ifndef MBP_LINALG_KERNELS_H_
#define MBP_LINALG_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/cpu_features.h"

namespace mbp::linalg::kernels {

// Raw view over a compiled piecewise-linear pricing curve in the SoA
// layout PricingSnapshot builds (serving/pricing_snapshot.*): knot
// coordinates, precomputed per-segment deltas, and the uniform bucket
// index that turns segment lookup into O(1). Defined here so the batch
// evaluation kernel can live in the dispatch table without linalg
// depending on serving.
//
// Invariants (guaranteed by PricingSnapshot::Compile): x is strictly
// increasing with x[0] > 0; dx/dprice have n - 1 entries and are the
// exact subtractions x[i+1]-x[i] / price[i+1]-price[i]; bucket_hint has
// num_buckets + 1 entries with bucket_hint[num_buckets] == n.
struct PwlView {
  const double* x = nullptr;
  const double* price = nullptr;
  const double* dx = nullptr;
  const double* dprice = nullptr;
  const uint32_t* bucket_hint = nullptr;
  size_t n = 0;            // number of knots, >= 1
  size_t num_buckets = 0;  // >= 1
  double bucket_width = 0.0;
  double inv_bucket_width = 0.0;
};

// Primitive micro-kernels behind every dense linalg hot path (vector_ops,
// MatVec/MatTVec/MatMul/GramMatrix, sufficient-statistic builds). Two
// variants exist: a scalar reference path that is always compiled in, and
// an AVX2+FMA path compiled when the build enables MBP_ENABLE_AVX2 and
// selected at runtime via CPUID (see common/cpu_features.h). Dispatch is a
// table of function pointers so higher-level kernels pick the variant once
// per call, not per element.
//
// Determinism contract: each kernel commits to ONE fixed reduction order
// per variant, so a kernel's result depends only on its inputs and the
// selected SimdLevel — never on thread count, alignment of the call site,
// or how a caller partitions work:
//  - dot accumulates in a fixed 4-lane x 4-register pattern with a fixed
//    horizontal-reduction order (scalar tail added last);
//  - axpy / axpy4 / scale / gram4 are element-wise: within a variant,
//    output element i is one fixed expression of input element i (the
//    AVX2 variants fuse every multiply-add, std::fma in the tails), so
//    any range split a caller makes lands on the same per-element
//    operations and results are invariant to thread count and partition.
// Across variants the fused multiply-adds round differently, so
// scalar-vs-SIMD results agree only to ~1e-15 relative error per
// operation; tests and benches gate this at 1e-10 end to end. Forcing
// SimdLevel::kScalar reproduces the pre-SIMD kernels bitwise.
struct Funcs {
  // Returns sum_i a[i] * b[i].
  double (*dot)(const double* a, const double* b, size_t n);
  // y[i] += alpha * x[i].
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  // x[i] *= alpha.
  void (*scale)(double alpha, double* x, size_t n);
  // y[i] += a0 x0[i] + a1 x1[i] + a2 x2[i] + a3 x3[i], accumulated per
  // element in exactly that order. The register-blocked update behind
  // MatMul, MatTVec, and GramMatrix: one pass over y for four source rows
  // (4x less write traffic than four successive axpy calls, and the same
  // per-element add sequence).
  void (*axpy4)(const double alpha[4], const double* x0, const double* x1,
                const double* x2, const double* x3, double* y, size_t n);
  // Gram-matrix block update: for each output row i in [i_begin, i_end),
  //   g[i * ld + j] += r0[i] r0[j] + r1[i] r1[j] + r2[i] r2[j] + r3[i] r3[j]
  // for j in [0, i] (lower-triangle prefix), accumulated per element in
  // exactly axpy4's term order with alpha[k] = rk[i]. Semantically the loop
  //   for i: axpy4({r0[i], r1[i], r2[i], r3[i]}, r0, r1, r2, r3, row i, i+1)
  // moved inside the dispatched call so the variant can amortize call and
  // broadcast overhead across the short triangle rows (the AVX2 variant
  // shares the streamed-example loads between adjacent output rows).
  void (*gram4)(const double* r0, const double* r1, const double* r2,
                const double* r3, double* g, size_t ld, size_t i_begin,
                size_t i_end);
  // Batched piecewise-linear curve evaluation: out[i] = price of the
  // curve at xs[i], the kernel behind PricingSnapshot::PriceAtBatch.
  // Per element this is the exact expression chain of
  // PricingSnapshot::PriceAt — every operation (the bucket-index
  // multiply, the comparisons, (x - x_lo) / dx_lo, price_lo + t * dprice_lo)
  // is a single IEEE rounding with no fused multiply-adds in EITHER
  // variant, so scalar and AVX2 results are BIT-IDENTICAL to each other
  // and to PriceAt, at every batch length and remainder (unlike the
  // FMA-fusing kernels above, which only agree to ~1e-15). Input policy,
  // identical across variants: x == 0 -> 0; 0 < x <= x[0] -> linear from
  // the origin; x >= x[n-1] -> price[n-1] (so +inf saturates to the max
  // price); NaN or negative x -> quiet NaN (PriceAt MBP_CHECKs instead;
  // the batch path must not let one bad query abort a serving process).
  void (*pwl_batch)(const PwlView& curve, const double* xs, double* out,
                    size_t count);
};

// The scalar reference table (bit-identical to the pre-SIMD kernels).
const Funcs& ScalarFuncs();

// The AVX2+FMA table, or nullptr when the binary was built without
// MBP_ENABLE_AVX2 or the executing CPU lacks AVX2/FMA.
const Funcs* Avx2Funcs();

// The table dispatch resolves to: Avx2Funcs() at SimdLevel::kAvx2Fma,
// ScalarFuncs() otherwise. Honors MBP_FORCE_SCALAR (via ActiveSimdLevel)
// and any ForceLevelForTesting override.
const Funcs& Active();

// The level Active() currently corresponds to.
SimdLevel ActiveLevel();

// Pins dispatch to `level` until reset with std::nullopt (which restores
// automatic selection). Returns false — leaving dispatch unchanged — when
// kAvx2Fma is requested but unavailable. For bench/test setup only; do not
// flip while kernels are executing on other threads.
bool ForceLevelForTesting(std::optional<SimdLevel> level);

}  // namespace mbp::linalg::kernels

#endif  // MBP_LINALG_KERNELS_H_

#ifndef MBP_SERVING_PRICING_SNAPSHOT_H_
#define MBP_SERVING_PRICING_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "core/pricing_function.h"

namespace mbp::serving {

// An immutable, query-optimized compilation of a PiecewiseLinearPricing
// curve — the unit the serving engine publishes and readers share without
// locks.
//
// What compilation buys over querying the research object directly:
//  - Structure-of-arrays knot layout (x[], price[], per-segment dx/dprice)
//    instead of the array-of-structs PricePoint vector, so the bracketing
//    search touches half the cache lines.
//  - A uniform bucket index over [0, x_max]: a point query multiplies into
//    a bucket, then binary-searches only the handful of segments that
//    bucket overlaps — O(1) per query instead of O(log n) for the curves
//    with thousands of knots a production price menu quantizes into.
//  - Budget inversion by binary search over the monotone knot prices.
//  - The arbitrage-freeness certificate (ValidateArbitrageFree) is checked
//    ONCE here, not per query; Compile refuses curves that fail it, so
//    every price a snapshot can ever serve is from a certified curve.
//
// Numerical contract: PriceAt and BudgetToInverseNcp evaluate the exact
// same IEEE expressions as PiecewiseLinearPricing::PriceAtInverseNcp and
// ::MaxInverseNcpForBudget (the precomputed dx/dprice are the identical
// subtractions), so served prices are bit-identical to the research path.
// Tests assert this with exact floating-point equality.
class PricingSnapshot {
 public:
  // Validates the curve (Create invariants hold by construction; the
  // arbitrage-freeness certificate is checked here) and compiles it.
  // Returns shared_ptr because snapshots are published through
  // std::atomic<std::shared_ptr> registry slots.
  static StatusOr<std::shared_ptr<const PricingSnapshot>> Compile(
      const core::PiecewiseLinearPricing& curve);

  // Price at x = 1/delta. Bit-identical to
  // PiecewiseLinearPricing::PriceAtInverseNcp on the source curve.
  double PriceAt(double x) const;

  // Batched evaluation: out[i] = PriceAt(xs[i]) for i in [0, n), through
  // the runtime-dispatched pwl_batch kernel (linalg/kernels.h) — the
  // vectorized hot path behind PriceQueryEngine::PriceBatch and the net
  // server's micro-batches. Results are bit-identical to per-element
  // PriceAt at every dispatch level, batch length, and remainder; see the
  // kernel's numerical contract (DESIGN.md §5f). The one divergence is
  // the invalid-input policy: PriceAt MBP_CHECKs x >= 0, while the batch
  // path writes quiet NaN for NaN or negative queries, so a malformed
  // remote query degrades to a NaN price instead of aborting the server.
  void PriceAtBatch(const double* xs, double* out, size_t n) const;

  // Largest x affordable with `budget` (+infinity when the budget covers
  // the whole curve). Bit-identical to
  // PiecewiseLinearPricing::MaxInverseNcpForBudget on the source curve.
  double BudgetToInverseNcp(double budget) const;

  // Process-unique, monotonically increasing compilation stamp. Two
  // snapshots never share a version, even for identical curves.
  uint64_t version() const { return version_; }

  size_t num_knots() const { return x_.size(); }
  double x_max() const { return x_.back(); }
  double max_price() const { return price_.back(); }

  // Reconstructs the knot vector (for round-trip tests and introspection).
  std::vector<core::PricePoint> Knots() const;

  // Heap + object footprint of this compiled snapshot in bytes (vector
  // capacities, not sizes — what the allocator actually holds). Feeds the
  // catalog's resident-bytes gauge and eviction accounting (DESIGN.md
  // §5g).
  size_t MemoryBytes() const {
    return sizeof(*this) +
           (x_.capacity() + price_.capacity() + dx_.capacity() +
            dprice_.capacity()) *
               sizeof(double) +
           bucket_hint_.capacity() * sizeof(uint32_t);
  }

 private:
  PricingSnapshot() = default;

  // Index of the bracketing segment's upper knot for x strictly inside
  // (x_[0], x_.back()): the first knot with x_[i] > x.
  size_t UpperKnot(double x) const;

  uint64_t version_ = 0;

  // Structure-of-arrays knots. dx_[i] = x_[i+1] - x_[i] and
  // dprice_[i] = price_[i+1] - price_[i] describe the segment between
  // knots i and i+1 (size num_knots - 1).
  std::vector<double> x_;
  std::vector<double> price_;
  std::vector<double> dx_;
  std::vector<double> dprice_;

  // Uniform bucket index over [0, x_.back()]: bucket_hint_[b] is the first
  // knot index with x_[i] > b * bucket_width_ (bucket_hint_.size() ==
  // num_buckets_ + 1). A query in bucket b bracketed by
  // [bucket_hint_[b], bucket_hint_[b + 1]].
  size_t num_buckets_ = 0;
  double bucket_width_ = 0.0;
  double inv_bucket_width_ = 0.0;
  std::vector<uint32_t> bucket_hint_;
};

}  // namespace mbp::serving

#endif  // MBP_SERVING_PRICING_SNAPSHOT_H_

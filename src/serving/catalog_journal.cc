#include "serving/catalog_journal.h"

#include <cstring>
#include <utility>

namespace mbp::serving {
namespace {

template <typename T>
void AppendScalar(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadScalar(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

}  // namespace

std::string CatalogJournal::EncodeSpec(
    std::string_view curve_id, const std::vector<core::PricePoint>& points) {
  std::string out;
  out.reserve(4 + curve_id.size() + 8 + 16 * points.size());
  AppendScalar(&out, static_cast<uint32_t>(curve_id.size()));
  out.append(curve_id);
  AppendScalar(&out, static_cast<uint64_t>(points.size()));
  for (const core::PricePoint& point : points) {
    AppendScalar(&out, point.x);
    AppendScalar(&out, point.price);
  }
  return out;
}

bool CatalogJournal::DecodeSpec(std::string_view bytes, std::string* curve_id,
                                std::vector<core::PricePoint>* points) {
  uint32_t id_size = 0;
  if (!ReadScalar(&bytes, &id_size) || bytes.size() < id_size) return false;
  curve_id->assign(bytes.substr(0, id_size));
  bytes.remove_prefix(id_size);
  uint64_t knots = 0;
  if (!ReadScalar(&bytes, &knots)) return false;
  if (bytes.size() != knots * 16) return false;
  points->clear();
  points->reserve(knots);
  for (uint64_t i = 0; i < knots; ++i) {
    core::PricePoint point;
    ReadScalar(&bytes, &point.x);
    ReadScalar(&bytes, &point.price);
    points->push_back(point);
  }
  return !curve_id->empty();
}

CatalogJournal::CatalogJournal(CatalogRegistry* registry)
    : registry_(registry) {}

Status CatalogJournal::ApplySpecLocked(const std::string& curve_id,
                                       std::vector<core::PricePoint> points) {
  if (points.empty()) {
    // Tombstone. Withdrawing an id the registry never saw is a no-op
    // (replay may see a tombstone whose publish was checkpoint-compacted
    // away together with it).
    if (specs_.erase(curve_id) > 0) (void)registry_->Withdraw(curve_id);
    return Status::OK();
  }
  MBP_ASSIGN_OR_RETURN(core::PiecewiseLinearPricing curve,
                       core::PiecewiseLinearPricing::Create(points));
  MBP_ASSIGN_OR_RETURN(const CatalogRegistry::CurveSlot* slot,
                       registry_->Publish(curve_id, curve));
  (void)slot;
  if (specs_.find(curve_id) == specs_.end()) order_.push_back(curve_id);
  specs_[curve_id] = std::move(points);
  return Status::OK();
}

StatusOr<std::unique_ptr<CatalogJournal>> CatalogJournal::Open(
    const std::string& dir, const wal::WalOptions& options,
    CatalogRegistry* registry, wal::WalRecovery* recovery) {
  std::unique_ptr<CatalogJournal> journal(new CatalogJournal(registry));
  // Buffer segment records so the checkpoint (available once Open
  // returns) applies first; single-threaded, so no locks yet.
  std::vector<std::string> segment_records;
  auto opened = wal::Wal::Open(
      dir, options,
      [&segment_records](std::string_view payload) {
        segment_records.emplace_back(payload);
      },
      &journal->recovery_);
  if (!opened.ok()) return opened.status();
  journal->wal_ = std::move(opened).value();

  const auto apply = [&journal](std::string_view bytes) -> Status {
    std::string curve_id;
    std::vector<core::PricePoint> points;
    if (!DecodeSpec(bytes, &curve_id, &points)) {
      // Checksummed but undecodable: version skew or a writer bug —
      // refuse to serve a catalog we cannot faithfully rebuild.
      return InternalError("catalog journal record is malformed");
    }
    return journal->ApplySpecLocked(curve_id, std::move(points));
  };
  if (journal->recovery_.has_checkpoint) {
    std::string_view in = journal->recovery_.checkpoint;
    uint64_t count = 0;
    if (!ReadScalar(&in, &count)) {
      return InternalError("catalog journal checkpoint is malformed");
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t size = 0;
      if (!ReadScalar(&in, &size) || in.size() < size) {
        return InternalError("catalog journal checkpoint is malformed");
      }
      MBP_RETURN_IF_ERROR(apply(in.substr(0, size)));
      in.remove_prefix(size);
    }
  }
  for (const std::string& bytes : segment_records) {
    MBP_RETURN_IF_ERROR(apply(bytes));
  }
  if (recovery != nullptr) *recovery = journal->recovery_;
  return journal;
}

StatusOr<const CatalogRegistry::CurveSlot*> CatalogJournal::Publish(
    const std::string& curve_id, const core::PiecewiseLinearPricing& curve) {
  if (curve_id.empty()) {
    return InvalidArgumentError("curve id must be non-empty");
  }
  if (curve.points().empty()) {
    return InvalidArgumentError("curve must have at least one knot");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Compile-validate BEFORE journaling: a spec the registry would reject
  // must never enter the journal, or replay would refuse the whole log
  // on the next open. The registry compiles again below — publishes are
  // a control-path cost, not a request-path one.
  MBP_RETURN_IF_ERROR(PricingSnapshot::Compile(curve).status());
  // Journal, then publish: an acked publish is durable, and a crash
  // between the two replays the publish on the next open (idempotent) —
  // a listing can appear a restart early, never vanish after its ack.
  MBP_RETURN_IF_ERROR(
      wal_->Append(EncodeSpec(curve_id, curve.points())));
  MBP_ASSIGN_OR_RETURN(const CatalogRegistry::CurveSlot* slot,
                       registry_->Publish(curve_id, curve));
  if (specs_.find(curve_id) == specs_.end()) order_.push_back(curve_id);
  specs_[curve_id] = curve.points();
  return slot;
}

Status CatalogJournal::Withdraw(const std::string& curve_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (specs_.find(curve_id) == specs_.end()) {
    return NotFoundError("curve is not journaled");
  }
  MBP_RETURN_IF_ERROR(wal_->Append(EncodeSpec(curve_id, {})));
  specs_.erase(curve_id);
  return registry_->Withdraw(curve_id);
}

Status CatalogJournal::Checkpoint() {
  // Held across the WAL checkpoint so no publish can append to a segment
  // the checkpoint is about to compact away (same discipline as the sale
  // ledger's CheckpointLedger).
  std::lock_guard<std::mutex> lock(mutex_);
  std::string state;
  uint64_t live = 0;
  for (const std::string& curve_id : order_) {
    live += specs_.find(curve_id) != specs_.end();
  }
  AppendScalar(&state, live);
  for (const std::string& curve_id : order_) {
    const auto it = specs_.find(curve_id);
    if (it == specs_.end()) continue;  // withdrawn
    const std::string encoded = EncodeSpec(curve_id, it->second);
    AppendScalar(&state, static_cast<uint32_t>(encoded.size()));
    state.append(encoded);
  }
  return wal_->Checkpoint(state);
}

size_t CatalogJournal::listings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return specs_.size();
}

}  // namespace mbp::serving

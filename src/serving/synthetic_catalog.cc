#include "serving/synthetic_catalog.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "random/rng.h"

namespace mbp::serving {

SyntheticCurveParams SyntheticCurveParamsFor(const SyntheticCatalogSpec& spec,
                                             size_t index) {
  // Rng seeds through splitmix64, so seed ^ mixed-index gives independent
  // streams per curve. The draw ORDER here is the deterministic contract:
  // knots, then dx, then scale.
  random::Rng rng(spec.seed ^ (0x9E3779B97F4A7C15ull * (index + 1)));
  SyntheticCurveParams params;
  const size_t span = spec.max_knots - spec.min_knots + 1;
  params.knots = spec.min_knots + static_cast<size_t>(rng.NextBounded(
                                      static_cast<uint64_t>(span)));
  params.dx = rng.NextDouble(0.5, 2.0);
  params.scale = rng.NextDouble(1.0, 100.0);
  return params;
}

std::string SyntheticCurveId(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "curve-%08zu", index);
  return std::string(buf);
}

double SyntheticCurveXMax(const SyntheticCatalogSpec& spec, size_t index) {
  const SyntheticCurveParams p = SyntheticCurveParamsFor(spec, index);
  return p.dx * static_cast<double>(p.knots);
}

core::PiecewiseLinearPricing MakeSyntheticCurve(
    const SyntheticCatalogSpec& spec, size_t index) {
  const SyntheticCurveParams p = SyntheticCurveParamsFor(spec, index);
  std::vector<core::PricePoint> points;
  points.reserve(p.knots);
  for (size_t i = 1; i <= p.knots; ++i) {
    const double x = p.dx * static_cast<double>(i);
    // scale * sqrt(x): increasing and concave, hence subadditive —
    // arbitrage-free by the same argument as bench_net's dense curve.
    points.push_back({x, p.scale * std::sqrt(x)});
  }
  return core::PiecewiseLinearPricing::Create(points).value();
}

Status PublishSyntheticCatalog(const SyntheticCatalogSpec& spec,
                               CatalogRegistry* registry,
                               const std::function<bool(size_t)>& owns) {
  for (size_t i = 0; i < spec.num_curves; ++i) {
    if (owns && !owns(i)) continue;
    MBP_ASSIGN_OR_RETURN(
        const CatalogRegistry::CurveSlot* slot,
        registry->Publish(SyntheticCurveId(i), MakeSyntheticCurve(spec, i)));
    (void)slot;
  }
  return Status::OK();
}

}  // namespace mbp::serving

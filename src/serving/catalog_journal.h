#ifndef MBP_SERVING_CATALOG_JOURNAL_H_
#define MBP_SERVING_CATALOG_JOURNAL_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "common/wal.h"
#include "core/pricing_function.h"
#include "serving/catalog_registry.h"

namespace mbp::serving {

// Journaled catalog publishes (DESIGN.md §5j): every Publish() writes the
// curve SPEC — the listing id and its piecewise-linear knots — to a
// write-ahead log before it reaches the registry, so a restarted
// mbp_catalog_shard rebuilds exactly the listings it had published
// (ring-owned share included) by replaying the journal instead of
// trusting whoever configured the new process to pass the same flags.
//
// Journal-then-publish ordering: a crash between the append and the
// registry publish replays the publish on the next open — publishing is
// idempotent, so the failure mode is a listing that exists a restart
// early, never one that silently vanished after being acked.
//
// Withdraw() journals a tombstone (a record with zero knots); replay
// applies publishes and withdrawals in order, so the recovered registry
// converges to the pre-crash catalog. Checkpoint() serializes the latest
// spec per surviving id and compacts the log — the clean-shutdown path
// that makes the next open replay zero segment records.
class CatalogJournal {
 public:
  // Opens (recovering) the journal at `dir` and republishes every
  // journaled listing into `registry`. `registry` must outlive the
  // journal. Replayed listing ids are also retained in the journal's
  // in-memory spec map (the checkpoint source).
  static StatusOr<std::unique_ptr<CatalogJournal>> Open(
      const std::string& dir, const wal::WalOptions& options,
      CatalogRegistry* registry, wal::WalRecovery* recovery = nullptr);

  // Journals the (id, curve) spec durably, then publishes it into the
  // registry. On journal failure nothing is published.
  StatusOr<const CatalogRegistry::CurveSlot*> Publish(
      const std::string& curve_id, const core::PiecewiseLinearPricing& curve);

  // Journals a tombstone, then withdraws the listing from the registry.
  Status Withdraw(const std::string& curve_id);

  // Serializes the live specs as a WAL checkpoint and compacts.
  Status Checkpoint();

  // Listings the journal currently carries (live specs, tombstones
  // excluded) — the count the next open will republish.
  size_t listings() const;

  const wal::Wal& wal() const { return *wal_; }
  const wal::WalRecovery& recovery() const { return recovery_; }

  // Wire codec of one journal record (public for tests): u32 id_len |
  // id | u64 knots | (f64 x, f64 price) * knots, little-endian. Zero
  // knots = tombstone.
  static std::string EncodeSpec(std::string_view curve_id,
                                const std::vector<core::PricePoint>& points);
  static bool DecodeSpec(std::string_view bytes, std::string* curve_id,
                         std::vector<core::PricePoint>* points);

 private:
  CatalogJournal(CatalogRegistry* registry);

  // Applies one decoded record to the registry + spec map. Used by both
  // replay and the live paths; mutex_ must be held (or replay be
  // single-threaded).
  Status ApplySpecLocked(const std::string& curve_id,
                         std::vector<core::PricePoint> points);

  CatalogRegistry* const registry_;
  std::unique_ptr<wal::Wal> wal_;
  wal::WalRecovery recovery_;

  mutable std::mutex mutex_;
  // Latest journaled spec per live id (erased on withdrawal), plus the
  // first-publish order so checkpoints serialize deterministically.
  std::unordered_map<std::string, std::vector<core::PricePoint>> specs_;
  std::vector<std::string> order_;
};

}  // namespace mbp::serving

#endif  // MBP_SERVING_CATALOG_JOURNAL_H_

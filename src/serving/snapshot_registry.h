#ifndef MBP_SERVING_SNAPSHOT_REGISTRY_H_
#define MBP_SERVING_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/statusor.h"
#include "serving/pricing_snapshot.h"

namespace mbp::serving {

// Maps curve ids to the currently published PricingSnapshot and lets
// sellers republish while readers keep serving, RCU style:
//
//  - Each curve id owns a CurveSlot with a stable address for the
//    registry's lifetime (slots are never destroyed, only overwritten).
//    Readers resolve the id to a slot once and query through the pointer.
//  - Publish compiles the new snapshot off to the side, then swaps it into
//    the slot's std::atomic<std::shared_ptr>. Readers that loaded the old
//    snapshot keep a reference and finish their queries on a consistent
//    curve; the old snapshot is freed when the last reader drops it.
//  - Readers never take the registry mutex: CurveSlot::Load() is a single
//    atomic shared_ptr load. The mutex only guards the id -> slot map
//    against concurrent first-publishes.
//
// Memory ordering: the snapshot store is a release operation and Load() an
// acquire, so a reader that observes the new pointer also observes the
// fully compiled snapshot arrays. The stamp is bumped with
// memory_order_seq_cst AFTER the snapshot store; a reader that observes
// the new stamp and then loads the slot gets the new (or an even newer)
// snapshot, never an older one. See DESIGN.md §5b.
class SnapshotRegistry {
 public:
  class CurveSlot {
   public:
    // The current snapshot, or nullptr if the curve was withdrawn.
    // Lock-free with respect to publishers.
    std::shared_ptr<const PricingSnapshot> Load() const {
      return snapshot_.load(std::memory_order_acquire);
    }

    // PROCESS-wide unique stamp of the latest (re)publish into this slot
    // (0 before the first publish completes). Monotone per slot and never
    // reused across slots or registries, so (stamp, x) uniquely identifies
    // a cached price across every curve ever served — even when a slot
    // address is recycled by a later registry (the engine's thread-local
    // snapshot pin relies on exactly this). A plain load on x86 — cheap
    // enough for the per-query hot path.
    uint64_t stamp() const {
      return stamp_.load(std::memory_order_seq_cst);
    }

    // Default-constructible (empty) so the registry's deque can build
    // slots in place; only the registry can publish into one.
    CurveSlot() = default;
    CurveSlot(const CurveSlot&) = delete;
    CurveSlot& operator=(const CurveSlot&) = delete;

   private:
    friend class SnapshotRegistry;

    std::atomic<std::shared_ptr<const PricingSnapshot>> snapshot_{nullptr};
    std::atomic<uint64_t> stamp_{0};
  };

  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  // Compiles `curve` (validating arbitrage-freeness) and publishes it
  // under `curve_id`, creating the slot on first publish. On error the
  // previously published snapshot, if any, keeps serving. Returns the
  // slot, which stays valid for the registry's lifetime.
  StatusOr<const CurveSlot*> Publish(const std::string& curve_id,
                                     const core::PiecewiseLinearPricing& curve);

  // Marks the curve withdrawn: subsequent Load() returns nullptr and the
  // serving engine reports NotFound. The slot itself stays valid and the
  // id can be republished later.
  Status Withdraw(const std::string& curve_id);

  // Resolves an id to its slot, or nullptr for ids never published.
  // Takes a string_view so the server's zero-allocation request path can
  // look up ids that are views into the wire buffer without materializing
  // a std::string (heterogeneous lookup on the index below).
  const CurveSlot* Find(std::string_view curve_id) const;

  // Number of ids ever published (withdrawn ids included).
  size_t size() const;

 private:
  // Transparent hash so index_.find accepts string_view without an
  // allocating std::string conversion.
  struct TransparentStringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  CurveSlot* FindOrCreateSlot(const std::string& curve_id);

  mutable std::mutex mutex_;
  // deque: grows without moving existing slots, preserving CurveSlot*
  // handed to readers.
  std::deque<CurveSlot> slots_;
  std::unordered_map<std::string, CurveSlot*, TransparentStringHash,
                     std::equal_to<>>
      index_;
};

}  // namespace mbp::serving

#endif  // MBP_SERVING_SNAPSHOT_REGISTRY_H_

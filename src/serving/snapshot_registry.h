#ifndef MBP_SERVING_SNAPSHOT_REGISTRY_H_
#define MBP_SERVING_SNAPSHOT_REGISTRY_H_

// The PR-2 single-curve-era SnapshotRegistry grew into the marketplace-
// scale CatalogRegistry (interned CurveRefs, per-curve RCU slots, memory
// accounting + eviction — DESIGN.md §5g). The old name remains an alias:
// the RCU publish/Load/stamp contract is unchanged, existing callers
// compile as-is.

#include "serving/catalog_registry.h"

namespace mbp::serving {

using SnapshotRegistry = CatalogRegistry;

}  // namespace mbp::serving

#endif  // MBP_SERVING_SNAPSHOT_REGISTRY_H_

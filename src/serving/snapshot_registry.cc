#include "serving/snapshot_registry.h"

#include <utility>

#include "common/fault_injection.h"

namespace mbp::serving {
namespace {

// Publish stamps are allocated process-globally (not per registry) so a
// stamp value is never reused, even when a later registry's slot lands on
// a recycled address. Cache keys and the engine's thread-local snapshot
// pin both identify a publish by its stamp alone.
std::atomic<uint64_t> g_next_stamp{1};

uint64_t NextStamp() {
  return g_next_stamp.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

SnapshotRegistry::CurveSlot* SnapshotRegistry::FindOrCreateSlot(
    const std::string& curve_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(curve_id);
  if (it != index_.end()) return it->second;
  CurveSlot* slot = &slots_.emplace_back();
  index_.emplace(curve_id, slot);
  return slot;
}

StatusOr<const SnapshotRegistry::CurveSlot*> SnapshotRegistry::Publish(
    const std::string& curve_id, const core::PiecewiseLinearPricing& curve) {
  // Fault points at the two failure edges of a publish: snapshot
  // compilation/allocation and the publish step itself. Either way the
  // contract below ("on error the old snapshot keeps serving") must
  // hold, which the chaos suite asserts by querying across injected
  // failed republishes.
  if (MBP_FAULT_POINT("serving.compile.alloc")) {
    return ResourceExhaustedError(
        "injected fault: serving.compile.alloc (snapshot allocation)");
  }
  // Compile (and validate) outside any lock: a slow or failing compile
  // never blocks readers or other publishers.
  MBP_ASSIGN_OR_RETURN(std::shared_ptr<const PricingSnapshot> snapshot,
                       PricingSnapshot::Compile(curve));
  if (MBP_FAULT_POINT("serving.publish.fail")) {
    return InternalError("injected fault: serving.publish.fail");
  }
  CurveSlot* slot = FindOrCreateSlot(curve_id);
  const uint64_t stamp = NextStamp();
  // Order matters: snapshot first (release), stamp second (seq_cst).
  // A reader that sees the new stamp therefore sees this snapshot or a
  // newer one; see the class comment and DESIGN.md §5b.
  slot->snapshot_.store(std::move(snapshot), std::memory_order_release);
  slot->stamp_.store(stamp, std::memory_order_seq_cst);
  return static_cast<const CurveSlot*>(slot);
}

Status SnapshotRegistry::Withdraw(const std::string& curve_id) {
  CurveSlot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(curve_id);
    if (it == index_.end()) {
      return NotFoundError("no published curve with id '" + curve_id + "'");
    }
    slot = it->second;
  }
  const uint64_t stamp = NextStamp();
  slot->snapshot_.store(nullptr, std::memory_order_release);
  slot->stamp_.store(stamp, std::memory_order_seq_cst);
  return Status::OK();
}

const SnapshotRegistry::CurveSlot* SnapshotRegistry::Find(
    std::string_view curve_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(curve_id);
  return it == index_.end() ? nullptr : it->second;
}

size_t SnapshotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

}  // namespace mbp::serving

#ifndef MBP_SERVING_FULFILLMENT_H_
#define MBP_SERVING_FULFILLMENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/statusor.h"
#include "common/wal.h"
#include "data/synthetic.h"
#include "linalg/vector.h"
#include "serving/catalog_registry.h"

namespace mbp::serving {

// Online model fulfillment (DESIGN.md §5i): the paper's actual transaction
// — pick (curve, δ), charge the curve price, perturb the optimal model
// with the Gaussian mechanism K_G, deliver the noised weights, record the
// sale — run at serving speed against the marketplace catalog instead of
// through the offline core/market.* batch path.
//
// Determinism is the core contract. Every sale is a pure function of
// (epoch seed, dataset seed, curve id, δ, txn id):
//   - the base model is trained on a synthetic dataset derived from
//     (dataset_seed, curve id) — bit-identical across processes and across
//     cache evictions (TrainLinearRegression is closed-form and its
//     sufficient-stat cache returns exactly what a cold build computes);
//   - the noise stream is a fresh Rng seeded from
//     SeedForTransaction(txn_id), so ReplaySale(txn) regenerates the
//     delivered weights exactly, and a retried BUY with the same txn id is
//     idempotent (same bytes, charged once).
// The sale record carries SeedCommitment(seed), binding the server to the
// noise stream it used without revealing the seed itself.

struct FulfillmentOptions {
  // Server epoch seed: per-transaction noise seeds are derived from
  // (epoch_seed, txn_id), and the quote-token MAC secret from epoch_seed.
  // Replicas that must fail over bit-identically share an epoch seed.
  uint64_t epoch_seed = 0x5EED0001;
  // Seeds the per-curve synthetic training sets (independent of
  // epoch_seed so rotating the noise epoch does not retrain the catalog).
  uint64_t dataset_seed = 0xD474;
  // Dimension d of the models sold; one BUY frame carries d doubles.
  size_t model_dim = 16;
  // Rows of each curve's synthetic training set; 0 = 8 * model_dim.
  size_t training_examples = 0;
  // L2 coefficient of the training loss λ (part of the model-cache key).
  double l2 = 1e-3;
  // ModelInstanceCache byte budget (LRU eviction past it).
  size_t max_model_cache_bytes = size_t{64} << 20;
  // Quote-token lifetime (CatalogRegistry::NowMicros() time base).
  uint64_t quote_ttl_micros = 5 * 1000 * 1000;
  // Ledger FIFO cap: oldest sale records are dropped past this, bounding
  // memory at the cost of replay/idempotency for ancient transactions.
  size_t max_transactions = size_t{1} << 20;
};

// What the ledger stores per sale — everything ReplaySale needs.
struct SaleRecord {
  uint64_t txn_id = 0;
  CurveRef curve_ref = kInvalidCurveRef;
  double delta = 0.0;
  double price = 0.0;
  uint64_t seed_commitment = 0;
};

// One delivered sale. `replayed` is true when the sale was served from the
// ledger (a retry or an explicit REPLAY) — nothing was charged.
struct Sale {
  SaleRecord record;
  std::vector<double> weights;
  bool replayed = false;
};

// A priced offer: the token locks `price` for the (curve, δ) it names
// until `expires_at_micros`. The token is opaque to clients.
struct ModelQuote {
  double price = 0.0;
  double delta = 0.0;
  uint64_t expires_at_micros = 0;
  std::string token;
};

// Wire size of a quote token: curve_ref u32, delta f64, price f64,
// expires u64, MAC u64 (DESIGN.md §5i).
inline constexpr size_t kQuoteTokenBytes = 4 + 8 + 8 + 8 + 8;

// Byte-accounted LRU cache of trained base models, keyed by
// (curve_ref, λ's l2 bits). Trained-or-fetched under one mutex — a cold
// miss trains inside the lock, so concurrent BUYs of the same curve train
// once, not racing duplicates. Eviction is strict LRU past max_bytes,
// except the newest entry is never evicted (a single over-budget model
// must still be servable).
class ModelInstanceCache {
 public:
  using Weights = std::shared_ptr<const linalg::Vector>;
  using TrainFn = std::function<StatusOr<linalg::Vector>()>;

  explicit ModelInstanceCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  // Returns the cached weights for (ref, l2), invoking `train` on a miss
  // and inserting the result. Training failures are not cached.
  StatusOr<Weights> GetOrTrain(CurveRef ref, double l2,
                               const TrainFn& train);

  size_t entries() const;
  size_t bytes() const;
  uint64_t hits() const { return hits_.Value(); }
  uint64_t misses() const { return misses_.Value(); }
  uint64_t evictions() const { return evictions_.Value(); }

 private:
  struct Key {
    CurveRef ref = kInvalidCurveRef;
    uint64_t l2_bits = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Weights weights;
    size_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  void TouchLocked(Entry* entry);
  void EvictPastBudgetLocked();

  const size_t max_bytes_;
  Counter hits_;
  Counter misses_;
  Counter evictions_;
  mutable std::mutex mutex_;
  size_t bytes_ = 0;
  std::list<Key> lru_;  // front = most recently used
  std::unordered_map<Key, Entry, KeyHash> entries_;
};

// Point-in-time snapshot of the engine's counters, served via STATS.
struct FulfillmentStats {
  uint64_t buys_ok = 0;  // first deliveries (charged sales)
  uint64_t model_cache_entries = 0;
  uint64_t model_cache_bytes = 0;
  uint64_t model_cache_hits = 0;
  uint64_t model_cache_misses = 0;
  uint64_t model_cache_evictions = 0;
  uint64_t transactions_recorded = 0;
  double revenue = 0.0;
  // Durability counters (DESIGN.md §5j); all zero without a durable
  // ledger. The recovery_* fields are what the LAST OpenDurableLedger
  // found on disk, frozen for the process lifetime.
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes = 0;
  uint64_t recovery_records = 0;
  uint64_t recovery_torn_tail = 0;
  uint64_t recovery_ms = 0;
  LatencyHistogramSnapshot latency;  // per-BUY fulfillment latency
};

// The fulfillment pipeline. Thread-safe: Quote/Buy/ReplaySale may be
// called concurrently from every server shard; the catalog resolution is
// lock-free, and the model cache + ledger each take one short mutex.
class FulfillmentEngine {
 public:
  // `catalog` must outlive the engine.
  explicit FulfillmentEngine(const CatalogRegistry* catalog,
                             FulfillmentOptions options = {});

  // Prices (curve, δ) off the current snapshot and returns a signed token
  // a later Buy can present to purchase at exactly this price until the
  // token expires.
  StatusOr<ModelQuote> Quote(std::string_view curve_id, double delta);

  // Executes one sale: resolves the curve, charges the snapshot price at
  // δ (or the quoted price when a valid token is presented), perturbs the
  // cached base model with K_G under the per-transaction seed, records
  // the sale, and returns the noised weights. txn_id must be non-zero and
  // client-unique; a txn_id already in the ledger re-delivers the
  // RECORDED sale (its curve/δ/price, not the arguments) without charging
  // again — the idempotent-retry path.
  StatusOr<Sale> Buy(std::string_view curve_id, double delta,
                     uint64_t txn_id, std::string_view token = {});

  // Regenerates a recorded sale's delivery exactly — same record, same
  // weights, bit for bit. NotFound for transactions never recorded (or
  // FIFO-expired from the ledger).
  StatusOr<Sale> ReplaySale(uint64_t txn_id);

  // Makes the sale ledger crash-safe (DESIGN.md §5j): opens (recovering)
  // a write-ahead log at `dir` and rebuilds the ledger from its newest
  // checkpoint plus every sale record appended after it. From then on
  // every first-delivery Buy() appends its SaleRecord durably BEFORE the
  // sale is returned — charge-durable-then-deliver — so a BUY retried
  // with the same txn id across a process restart re-delivers the
  // recorded sale, charged once. Call before serving starts (replay
  // mutates the ledger without locks); call at most once.
  //
  // Recovered records are deduped by txn id (a post-fsync-pre-ack crash
  // leaves the same sale in both a checkpoint's tail segment and a retry
  // append); revenue accumulates once per distinct recorded sale.
  // Recovered sales for curves absent from the catalog stay charged
  // (revenue keeps their price) but cannot replay until republished.
  Status OpenDurableLedger(const std::string& dir,
                           const wal::WalOptions& options = {});

  // Serializes the ledger + cumulative revenue as a WAL checkpoint, so
  // the next OpenDurableLedger replays ZERO segment records. Blocks
  // Buy() for the duration (the checkpoint must atomically cover every
  // sale the compacted segments held). No-op without a durable ledger.
  Status CheckpointLedger();

  // Graceful drain: flush the WAL and write a clean checkpoint. The
  // engine stays usable (Buy keeps appending); call from the server's
  // shutdown path after the listening sockets close.
  Status Shutdown();

  bool durable() const { return wal_ != nullptr; }
  // The underlying log (nullptr without a durable ledger); exposed for
  // stats plumbing and tests.
  const wal::Wal* wal() const { return wal_.get(); }

  // Wire codec of one durable sale record (public for tests and for the
  // recovery tooling): txn u64 | delta f64 | price f64 | commitment u64 |
  // curve id bytes, little-endian. The curve is journaled by ID — refs
  // are interning-order-local and do not survive a restart.
  static std::string EncodeSaleRecord(const SaleRecord& record,
                                      std::string_view curve_id);
  static bool DecodeSaleRecord(std::string_view bytes, SaleRecord* record,
                               std::string* curve_id);

  // The per-transaction noise seed: a HashMix64 combine of
  // (epoch_seed, txn_id). Public so tests can anchor a core::Broker with
  // the same seed and assert bit-identity with the served sale.
  uint64_t SeedForTransaction(uint64_t txn_id) const;
  // One-way commitment to `seed` carried in the sale record.
  static uint64_t SeedCommitment(uint64_t seed);

  // The synthetic training set behind `curve_key`'s base model: a pure
  // function of (dataset_seed, curve_key, model_dim), so any process can
  // reconstruct the exact Dataset the engine trained on.
  data::Simulated1Options TrainingSetOptionsFor(
      std::string_view curve_key) const;

  const FulfillmentOptions& options() const { return options_; }
  const ModelInstanceCache& model_cache() const { return model_cache_; }

  FulfillmentStats Stats() const;

 private:
  // The trained base model for `ref`, through the model cache.
  StatusOr<ModelInstanceCache::Weights> BaseModelFor(CurveRef ref);
  // Regenerates the delivery for a recorded sale (the replay path).
  StatusOr<Sale> DeliverRecorded(const SaleRecord& record);
  // The noised weights for (base, delta, seed) — THE deterministic core.
  std::vector<double> PerturbBase(const linalg::Vector& base, double delta,
                                  uint64_t seed) const;
  uint64_t TokenMac(CurveRef ref, double delta, double price,
                    uint64_t expires_at_micros) const;
  // Validates `token` against (ref, delta) and returns its locked price.
  StatusOr<double> RedeemToken(std::string_view token, CurveRef ref,
                               double delta) const;

  // Inserts `record` (deduping by txn id) and charges its price; the
  // recovery path shared by checkpoint decode and segment replay. Caller
  // holds ledger_mutex_ or runs before serving starts.
  void RestoreSaleLocked(const SaleRecord& record);
  // The ledger + revenue serialized in FIFO order — the checkpoint
  // payload. ledger_mutex_ must be held.
  std::string SerializeLedgerLocked() const;

  const CatalogRegistry* const catalog_;
  const FulfillmentOptions options_;
  const uint64_t token_secret_;
  ModelInstanceCache model_cache_;
  Counter buys_ok_;
  LatencyHistogram fulfillment_latency_;

  // Durable ledger state. wal_ is set once by OpenDurableLedger (before
  // serving) and never reset, so Buy() reads it without a lock.
  std::unique_ptr<wal::Wal> wal_;
  wal::WalRecovery wal_recovery_;

  mutable std::mutex ledger_mutex_;
  double revenue_ = 0.0;
  std::unordered_map<uint64_t, SaleRecord> ledger_;
  std::deque<uint64_t> ledger_fifo_;
};

}  // namespace mbp::serving

#endif  // MBP_SERVING_FULFILLMENT_H_

#include "serving/fulfillment.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/sharded_cache.h"
#include "core/mechanism.h"
#include "ml/trainer.h"
#include "random/rng.h"

namespace mbp::serving {
namespace {

// FNV-1a 64 over the curve id bytes: the cross-process-stable key hash the
// synthetic-training-set seed derives from (std::hash is not portable).
uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// Little-endian scalar append/read for the durable-record codecs.
template <typename T>
void AppendScalar(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadScalar(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

}  // namespace

// --------------------------------------------------- ModelInstanceCache

size_t ModelInstanceCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(
      HashMix64((uint64_t{k.ref} << 32) ^ HashMix64(k.l2_bits)));
}

StatusOr<ModelInstanceCache::Weights> ModelInstanceCache::GetOrTrain(
    CurveRef ref, double l2, const TrainFn& train) {
  const Key key{ref, std::bit_cast<uint64_t>(l2)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    hits_.Increment();
    TouchLocked(&it->second);
    return it->second.weights;
  }
  misses_.Increment();
  // Training inside the lock serializes cold misses but guarantees a
  // given (curve, λ) trains exactly once under concurrent BUYs.
  MBP_ASSIGN_OR_RETURN(linalg::Vector trained, train());
  Entry entry;
  entry.weights = std::make_shared<const linalg::Vector>(std::move(trained));
  // Allocator-held footprint: the vector's storage plus the map/list
  // bookkeeping per entry.
  entry.bytes = entry.weights->size() * sizeof(double) +
                sizeof(linalg::Vector) + sizeof(Entry) + sizeof(Key) + 64;
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  bytes_ += entry.bytes;
  Weights result = entry.weights;
  entries_.emplace(key, std::move(entry));
  EvictPastBudgetLocked();
  return result;
}

size_t ModelInstanceCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t ModelInstanceCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void ModelInstanceCache::TouchLocked(Entry* entry) {
  lru_.splice(lru_.begin(), lru_, entry->lru_it);
}

void ModelInstanceCache::EvictPastBudgetLocked() {
  // Keep at least the most-recent entry so an over-budget single model is
  // still servable (it just stops being cached alongside anything else).
  while (bytes_ > max_bytes_ && entries_.size() > 1) {
    const Key victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    evictions_.Increment();
  }
}

// ---------------------------------------------------- FulfillmentEngine

FulfillmentEngine::FulfillmentEngine(const CatalogRegistry* catalog,
                                     FulfillmentOptions options)
    : catalog_(catalog),
      options_(options),
      token_secret_(HashMix64(options.epoch_seed ^ 0x746f6b656e736563ull)),
      model_cache_(options.max_model_cache_bytes) {}

uint64_t FulfillmentEngine::SeedForTransaction(uint64_t txn_id) const {
  return HashMix64(HashMix64(options_.epoch_seed) ^ HashMix64(txn_id));
}

uint64_t FulfillmentEngine::SeedCommitment(uint64_t seed) {
  return HashMix64(seed ^ 0x636f6d6d69746dull);
}

data::Simulated1Options FulfillmentEngine::TrainingSetOptionsFor(
    std::string_view curve_key) const {
  data::Simulated1Options opts;
  opts.num_features = options_.model_dim;
  opts.num_examples = options_.training_examples != 0
                          ? options_.training_examples
                          : 8 * options_.model_dim;
  opts.noise_stddev = 0.1;
  opts.seed = HashMix64(options_.dataset_seed ^ Fnv1a64(curve_key));
  return opts;
}

StatusOr<ModelQuote> FulfillmentEngine::Quote(std::string_view curve_id,
                                              double delta) {
  if (!(delta > 0.0) || !std::isfinite(delta)) {
    return InvalidArgumentError("delta must be positive and finite");
  }
  const CurveRef ref = catalog_->FindRef(curve_id);
  const CatalogRegistry::CurveSlot* slot =
      ref == kInvalidCurveRef ? nullptr : catalog_->slot(ref);
  std::shared_ptr<const PricingSnapshot> snapshot =
      slot != nullptr ? slot->Load() : nullptr;
  if (snapshot == nullptr) {
    return NotFoundError("no pricing published for curve");
  }
  ModelQuote quote;
  quote.delta = delta;
  quote.price = snapshot->PriceAt(1.0 / delta);
  quote.expires_at_micros =
      CatalogRegistry::NowMicros() + options_.quote_ttl_micros;
  const uint64_t mac =
      TokenMac(ref, delta, quote.price, quote.expires_at_micros);
  quote.token.resize(kQuoteTokenBytes);
  char* p = quote.token.data();
  std::memcpy(p, &ref, 4);
  std::memcpy(p + 4, &delta, 8);
  std::memcpy(p + 12, &quote.price, 8);
  std::memcpy(p + 20, &quote.expires_at_micros, 8);
  std::memcpy(p + 28, &mac, 8);
  return quote;
}

uint64_t FulfillmentEngine::TokenMac(CurveRef ref, double delta,
                                     double price,
                                     uint64_t expires_at_micros) const {
  uint64_t h = token_secret_;
  h = HashMix64(h ^ uint64_t{ref});
  h = HashMix64(h ^ std::bit_cast<uint64_t>(delta));
  h = HashMix64(h ^ std::bit_cast<uint64_t>(price));
  h = HashMix64(h ^ expires_at_micros);
  return h;
}

StatusOr<double> FulfillmentEngine::RedeemToken(std::string_view token,
                                                CurveRef ref,
                                                double delta) const {
  if (token.size() != kQuoteTokenBytes) {
    return InvalidArgumentError("malformed quote token");
  }
  const char* p = token.data();
  CurveRef token_ref = kInvalidCurveRef;
  double token_delta = 0.0;
  double token_price = 0.0;
  uint64_t expires_at_micros = 0;
  uint64_t mac = 0;
  std::memcpy(&token_ref, p, 4);
  std::memcpy(&token_delta, p + 4, 8);
  std::memcpy(&token_price, p + 12, 8);
  std::memcpy(&expires_at_micros, p + 20, 8);
  std::memcpy(&mac, p + 28, 8);
  if (mac != TokenMac(token_ref, token_delta, token_price,
                      expires_at_micros)) {
    return InvalidArgumentError("quote token failed authentication");
  }
  if (token_ref != ref) {
    return InvalidArgumentError("quote token is for a different curve");
  }
  if (std::bit_cast<uint64_t>(token_delta) !=
      std::bit_cast<uint64_t>(delta)) {
    return InvalidArgumentError("quote token is for a different delta");
  }
  if (CatalogRegistry::NowMicros() > expires_at_micros) {
    return FailedPreconditionError("quote token expired");
  }
  return token_price;
}

StatusOr<ModelInstanceCache::Weights> FulfillmentEngine::BaseModelFor(
    CurveRef ref) {
  return model_cache_.GetOrTrain(
      ref, options_.l2, [this, ref]() -> StatusOr<linalg::Vector> {
        const data::Simulated1Options opts =
            TrainingSetOptionsFor(catalog_->KeyOf(ref));
        MBP_ASSIGN_OR_RETURN(data::Dataset train,
                             data::GenerateSimulated1(opts));
        MBP_ASSIGN_OR_RETURN(ml::TrainResult result,
                             ml::TrainLinearRegression(train, options_.l2));
        return result.model.coefficients();
      });
}

std::vector<double> FulfillmentEngine::PerturbBase(
    const linalg::Vector& base, double delta, uint64_t seed) const {
  // Exactly the Broker::Sell draw: a fresh Rng(seed) feeding K_G. A
  // core::Broker built on the same training set with Options{.seed =
  // SeedForTransaction(txn)} sells the bit-identical instance — the
  // anchor tests assert this with exact equality.
  random::Rng rng(seed);
  const core::GaussianMechanism mechanism;
  return mechanism.Perturb(base, delta, rng).values();
}

StatusOr<Sale> FulfillmentEngine::Buy(std::string_view curve_id,
                                      double delta, uint64_t txn_id,
                                      std::string_view token) {
  const uint64_t start_micros = CatalogRegistry::NowMicros();
  if (txn_id == 0) {
    return InvalidArgumentError("transaction id must be non-zero");
  }
  // Idempotency fast path: an already-recorded txn re-delivers the
  // recorded sale regardless of this call's arguments.
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    auto it = ledger_.find(txn_id);
    if (it != ledger_.end()) {
      return DeliverRecorded(it->second);
    }
  }
  if (!(delta > 0.0) || !std::isfinite(delta)) {
    return InvalidArgumentError("delta must be positive and finite");
  }
  const CurveRef ref = catalog_->FindRef(curve_id);
  const CatalogRegistry::CurveSlot* slot =
      ref == kInvalidCurveRef ? nullptr : catalog_->slot(ref);
  std::shared_ptr<const PricingSnapshot> snapshot =
      slot != nullptr ? slot->Load() : nullptr;
  if (snapshot == nullptr) {
    return NotFoundError("no pricing published for curve");
  }
  double price = 0.0;
  if (!token.empty()) {
    MBP_ASSIGN_OR_RETURN(price, RedeemToken(token, ref, delta));
  } else {
    price = snapshot->PriceAt(1.0 / delta);
  }
  MBP_ASSIGN_OR_RETURN(ModelInstanceCache::Weights base, BaseModelFor(ref));

  const uint64_t seed = SeedForTransaction(txn_id);
  Sale sale;
  sale.record = SaleRecord{txn_id, ref, delta, price, SeedCommitment(seed)};
  sale.weights = PerturbBase(*base, delta, seed);

  SaleRecord raced_record;
  bool lost_insert_race = false;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    auto [it, inserted] = ledger_.try_emplace(txn_id, sale.record);
    if (inserted) {
      ledger_fifo_.push_back(txn_id);
      if (ledger_fifo_.size() > options_.max_transactions) {
        ledger_.erase(ledger_fifo_.front());
        ledger_fifo_.pop_front();
      }
      revenue_ += price;
    } else {
      // Lost the insert race to a concurrent retry of the same txn:
      // deliver ITS recorded sale; nothing is charged here.
      raced_record = it->second;
      lost_insert_race = true;
    }
  }
  if (lost_insert_race) {
    return DeliverRecorded(raced_record);
  }
  if (wal_ != nullptr) {
    // Charge-durable-then-deliver: the sale record hits the log (and,
    // per the fsync policy, the disk) BEFORE this Buy returns bytes, so
    // an acked sale survives kill -9. Append runs outside ledger_mutex_
    // — group commit may block on a peer's fdatasync. On append failure
    // the charge is rolled back and the buyer sees the error; a
    // concurrent retry that raced the rollback was delivered a sale that
    // never became durable, which is exactly the un-acked case recovery
    // already tolerates.
    const Status appended =
        wal_->Append(EncodeSaleRecord(sale.record, curve_id));
    if (!appended.ok()) {
      std::lock_guard<std::mutex> lock(ledger_mutex_);
      ledger_.erase(txn_id);
      for (auto it = ledger_fifo_.rbegin(); it != ledger_fifo_.rend(); ++it) {
        if (*it == txn_id) {
          ledger_fifo_.erase(std::next(it).base());
          break;
        }
      }
      revenue_ -= price;
      return appended;
    }
  }
  buys_ok_.Increment();
  fulfillment_latency_.Record(
      static_cast<double>(CatalogRegistry::NowMicros() - start_micros));
  return sale;
}

StatusOr<Sale> FulfillmentEngine::DeliverRecorded(const SaleRecord& record) {
  if (record.curve_ref == kInvalidCurveRef) {
    // A recovered sale whose curve was never republished: the charge
    // stands (revenue counted it) but there is no training set to
    // rebuild the delivery from until the listing returns.
    return NotFoundError("recorded sale's curve is not in the catalog");
  }
  // Pure recomputation: the base model rebuilds bit-identically even if
  // it was evicted (synthetic dataset + closed-form trainer), and the
  // noise stream restarts from the same per-transaction seed. The curve's
  // key survives withdrawal/eviction, so replay outlives the listing.
  MBP_ASSIGN_OR_RETURN(ModelInstanceCache::Weights base,
                       BaseModelFor(record.curve_ref));
  Sale sale;
  sale.record = record;
  sale.weights =
      PerturbBase(*base, record.delta, SeedForTransaction(record.txn_id));
  sale.replayed = true;
  return sale;
}

StatusOr<Sale> FulfillmentEngine::ReplaySale(uint64_t txn_id) {
  SaleRecord record;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    auto it = ledger_.find(txn_id);
    if (it == ledger_.end()) {
      return NotFoundError("transaction is not in the ledger");
    }
    record = it->second;
  }
  return DeliverRecorded(record);
}

FulfillmentStats FulfillmentEngine::Stats() const {
  FulfillmentStats stats;
  stats.buys_ok = buys_ok_.Value();
  stats.model_cache_entries = model_cache_.entries();
  stats.model_cache_bytes = model_cache_.bytes();
  stats.model_cache_hits = model_cache_.hits();
  stats.model_cache_misses = model_cache_.misses();
  stats.model_cache_evictions = model_cache_.evictions();
  stats.latency = fulfillment_latency_.Snapshot();
  if (wal_ != nullptr) {
    stats.wal_appends = wal_->appends();
    stats.wal_fsyncs = wal_->fsyncs();
    stats.wal_bytes = wal_->bytes_appended();
    stats.recovery_records = wal_recovery_.records_replayed;
    stats.recovery_torn_tail = wal_recovery_.torn_tail;
    // Round up so a fast-but-real recovery reads as at least 1 ms.
    stats.recovery_ms = (wal_recovery_.recovery_micros + 999) / 1000;
  }
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    stats.transactions_recorded = ledger_.size();
    stats.revenue = revenue_;
  }
  return stats;
}

// ------------------------------------------------------- durable ledger

std::string FulfillmentEngine::EncodeSaleRecord(const SaleRecord& record,
                                                std::string_view curve_id) {
  std::string out;
  out.reserve(32 + curve_id.size());
  AppendScalar(&out, record.txn_id);
  AppendScalar(&out, record.delta);
  AppendScalar(&out, record.price);
  AppendScalar(&out, record.seed_commitment);
  out.append(curve_id);
  return out;
}

bool FulfillmentEngine::DecodeSaleRecord(std::string_view bytes,
                                         SaleRecord* record,
                                         std::string* curve_id) {
  SaleRecord out;
  if (!ReadScalar(&bytes, &out.txn_id) || !ReadScalar(&bytes, &out.delta) ||
      !ReadScalar(&bytes, &out.price) ||
      !ReadScalar(&bytes, &out.seed_commitment)) {
    return false;
  }
  if (out.txn_id == 0) return false;
  *record = out;
  curve_id->assign(bytes);
  return true;
}

void FulfillmentEngine::RestoreSaleLocked(const SaleRecord& record) {
  const auto [it, inserted] = ledger_.try_emplace(record.txn_id, record);
  if (!inserted) return;  // post-fsync-pre-ack crash + retry: same txn twice
  ledger_fifo_.push_back(record.txn_id);
  if (ledger_fifo_.size() > options_.max_transactions) {
    ledger_.erase(ledger_fifo_.front());
    ledger_fifo_.pop_front();
  }
  revenue_ += record.price;
}

std::string FulfillmentEngine::SerializeLedgerLocked() const {
  std::string out;
  AppendScalar(&out, revenue_);
  AppendScalar(&out, static_cast<uint64_t>(ledger_fifo_.size()));
  for (const uint64_t txn_id : ledger_fifo_) {
    const auto it = ledger_.find(txn_id);
    const SaleRecord& record = it->second;
    // Invalid refs never enter the in-memory ledger (recovery keeps only
    // resolvable curves), so KeyOf is always defined here.
    const std::string encoded =
        EncodeSaleRecord(record, catalog_->KeyOf(record.curve_ref));
    AppendScalar(&out, static_cast<uint32_t>(encoded.size()));
    out.append(encoded);
  }
  return out;
}

Status FulfillmentEngine::OpenDurableLedger(const std::string& dir,
                                            const wal::WalOptions& options) {
  if (wal_ != nullptr) {
    return FailedPreconditionError("durable ledger is already open");
  }
  // Restores one encoded sale, resolving its journaled curve ID against
  // the catalog (publishes replay before the ledger opens). `charge`
  // distinguishes the two sources: segment records were charged
  // individually, checkpoint records are already inside the checkpoint's
  // revenue scalar.
  const auto restore = [this](std::string_view bytes, bool charge) -> bool {
    SaleRecord record;
    std::string curve_id;
    if (!DecodeSaleRecord(bytes, &record, &curve_id)) return false;
    record.curve_ref = catalog_->FindRef(curve_id);
    if (record.curve_ref == kInvalidCurveRef) {
      // The curve vanished from the catalog across the restart: keep the
      // charge (the sale happened) but drop the ledger entry — REPLAY of
      // it reports NotFound exactly like a FIFO-expired transaction.
      if (charge) revenue_ += record.price;
      return true;
    }
    const double before = revenue_;
    RestoreSaleLocked(record);
    if (!charge) revenue_ = before;  // scalar already covers it
    return true;
  };
  // Wal::Open streams segment records through the callback; buffer them
  // so the checkpoint (the OLDER state, only available once Open
  // returns) can be applied first. Single-threaded: serving has not
  // started, so no locks are taken.
  std::vector<std::string> segment_records;
  auto opened = wal::Wal::Open(
      dir, options,
      [&segment_records](std::string_view payload) {
        segment_records.emplace_back(payload);
      },
      &wal_recovery_);
  if (!opened.ok()) return opened.status();
  if (wal_recovery_.has_checkpoint) {
    std::string_view in = wal_recovery_.checkpoint;
    double revenue = 0.0;
    uint64_t count = 0;
    if (!ReadScalar(&in, &revenue) || !ReadScalar(&in, &count)) {
      return InternalError("ledger checkpoint is malformed");
    }
    revenue_ = revenue;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t size = 0;
      if (!ReadScalar(&in, &size) || in.size() < size ||
          !restore(in.substr(0, size), /*charge=*/false)) {
        return InternalError("ledger checkpoint is malformed");
      }
      in.remove_prefix(size);
    }
  }
  for (const std::string& bytes : segment_records) {
    if (!restore(bytes, /*charge=*/true)) {
      // The WAL's checksum admitted the record, so a decode failure is
      // version skew or a writer bug, not bit rot — refuse to serve on a
      // ledger we cannot faithfully rebuild.
      return InternalError("durable sale record is malformed");
    }
  }
  wal_ = std::move(opened).value();
  return Status::OK();
}

Status FulfillmentEngine::CheckpointLedger() {
  if (wal_ == nullptr) return Status::OK();
  // Held across the WAL checkpoint: any sale charged after this point
  // appends to the post-rotation segment, so the checkpoint + surviving
  // segments always cover every acked sale (no append can land in a
  // segment the checkpoint is about to compact away).
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  return wal_->Checkpoint(SerializeLedgerLocked());
}

Status FulfillmentEngine::Shutdown() {
  if (wal_ == nullptr) return Status::OK();
  MBP_RETURN_IF_ERROR(wal_->Sync());
  return CheckpointLedger();
}

}  // namespace mbp::serving

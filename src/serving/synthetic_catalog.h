#ifndef MBP_SERVING_SYNTHETIC_CATALOG_H_
#define MBP_SERVING_SYNTHETIC_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "core/pricing_function.h"
#include "serving/catalog_registry.h"

namespace mbp::serving {

// Deterministic synthetic marketplace catalog: curve i is a pure function
// of (spec, i), so every process that agrees on the spec compiles the
// bit-identical catalog — the property the multi-process fleet leans on
// (bench_net's bit-identity gate compares fleet answers against a local
// engine built from the same spec, and every shard of a replicated fleet
// serves the same curve for the same id).
//
// Curves are scaled sqrt shapes (concave increasing through the origin
// region, hence arbitrage-free like bench_net's dense curve) with
// per-curve randomized knot count in [min_knots, max_knots], knot spacing,
// and price scale, seeded by spec.seed ^ index.
struct SyntheticCatalogSpec {
  size_t num_curves = 1;
  size_t min_knots = 8;
  size_t max_knots = 128;
  uint64_t seed = 7;
};

// Shape parameters of curve `index` under `spec`.
struct SyntheticCurveParams {
  size_t knots = 0;
  double dx = 0.0;     // knot spacing
  double scale = 0.0;  // price multiplier
};
SyntheticCurveParams SyntheticCurveParamsFor(const SyntheticCatalogSpec& spec,
                                             size_t index);

// Canonical listing id of curve `index`: "curve-%08zu". Fixed width so
// ids sort lexicographically by index and all have equal wire size.
std::string SyntheticCurveId(size_t index);

// Largest knot x of curve `index` — the natural query-range upper bound.
double SyntheticCurveXMax(const SyntheticCatalogSpec& spec, size_t index);

core::PiecewiseLinearPricing MakeSyntheticCurve(
    const SyntheticCatalogSpec& spec, size_t index);

// Publishes curves [0, spec.num_curves) into `registry`. When `owns` is
// non-null only indices it accepts are published — the hook a
// ring-partitioned shard uses to compile just its share of the catalog.
Status PublishSyntheticCatalog(
    const SyntheticCatalogSpec& spec, CatalogRegistry* registry,
    const std::function<bool(size_t)>& owns = nullptr);

}  // namespace mbp::serving

#endif  // MBP_SERVING_SYNTHETIC_CATALOG_H_

#include "serving/price_query_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace mbp::serving {
namespace {

Status CurveNotServing() {
  return NotFoundError("curve is not being served (withdrawn or never "
                       "published)");
}

// Thread-local pin of the most recently loaded snapshot, keyed by the
// publish stamp. std::atomic<std::shared_ptr> loads are lock-based in
// common standard libraries and bump the refcount twice per query; the pin
// pays that cost once per (thread, publish) instead of once per query.
//
// Why the stamp check is sufficient: a stamp value is allocated process-
// globally and never reused (see snapshot_registry.cc), and it is stored
// seq_cst AFTER the snapshot, so once the caller has observed stamp S the
// slot already holds the snapshot published with S — or a newer one, which
// the documented racing-republish semantics allow. At quiescence the stamp
// no longer changes, so a matching pin is exactly the current snapshot.
// The pin keeps at most one old snapshot alive per thread, until that
// thread's next query after a republish.
const PricingSnapshot* PinnedSnapshot(
    const CatalogRegistry::CurveSlot* slot, uint64_t stamp) {
  struct Pin {
    const CatalogRegistry::CurveSlot* slot = nullptr;
    uint64_t stamp = 0;
    std::shared_ptr<const PricingSnapshot> snapshot;
  };
  thread_local Pin pin;
  if (pin.slot != slot || pin.stamp != stamp) {
    pin.snapshot = slot->Load();
    pin.slot = slot;
    pin.stamp = stamp;
  }
  return pin.snapshot.get();
}

}  // namespace

PriceQueryEngine::PriceQueryEngine(const CatalogRegistry* registry,
                                   PriceQueryEngineOptions options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard) {
  MBP_CHECK(registry != nullptr);
  MBP_CHECK_GE(options_.quantum, 0.0);
  if (options_.batch_grain == 0) options_.batch_grain = 1024;
}

double PriceQueryEngine::Quantize(double x) const {
  if (options_.quantum <= 0.0) return x;
  // Round-to-nearest multiple of the quantum. Always >= 0 for x >= 0.
  return std::round(x / options_.quantum) * options_.quantum;
}

StatusOr<const CatalogRegistry::CurveSlot*> PriceQueryEngine::ResolveSlot(
    const std::string& curve_id) const {
  const CatalogRegistry::CurveSlot* slot = registry_->Find(curve_id);
  if (slot == nullptr) return CurveNotServing();
  return slot;
}

StatusOr<double> PriceQueryEngine::Price(
    const CatalogRegistry::CurveSlot* slot, double x) const {
  MBP_CHECK(slot != nullptr);
  const double qx = Quantize(x);
  // Hot path: one plain stamp load + one shard probe; the snapshot itself
  // is only touched on a miss. Keying on the publish stamp makes every
  // entry of a previous publish unreachable the instant a new snapshot is
  // stamped in — republish IS cache invalidation.
  const uint64_t stamp = slot->stamp();
  const uint64_t key = std::bit_cast<uint64_t>(qx);
  double price = 0.0;
  // The miss fill runs under the stamp read above. If a republish raced
  // us, the entry is either already unreachable (readers now see a newer
  // stamp) or holds the racing publish's price for the rest of this
  // stamp's lifetime — every served value is still the exact price of a
  // curve published for this id. See DESIGN.md §5b.
  const bool served =
      cache_.GetOrCompute(key, stamp, &price, [&](double* out) {
        const PricingSnapshot* snapshot = PinnedSnapshot(slot, stamp);
        if (snapshot == nullptr) return false;
        *out = snapshot->PriceAt(qx);
        return true;
      });
  if (!served) return CurveNotServing();
  return price;
}

StatusOr<double> PriceQueryEngine::Price(const std::string& curve_id,
                                         double x) const {
  MBP_ASSIGN_OR_RETURN(const CatalogRegistry::CurveSlot* slot,
                       ResolveSlot(curve_id));
  return Price(slot, x);
}

StatusOr<double> PriceQueryEngine::BudgetToInverseNcp(
    const CatalogRegistry::CurveSlot* slot, double budget) const {
  MBP_CHECK(slot != nullptr);
  const std::shared_ptr<const PricingSnapshot> snapshot = slot->Load();
  if (snapshot == nullptr) return CurveNotServing();
  return snapshot->BudgetToInverseNcp(budget);
}

StatusOr<double> PriceQueryEngine::BudgetToInverseNcp(
    const std::string& curve_id, double budget) const {
  MBP_ASSIGN_OR_RETURN(const CatalogRegistry::CurveSlot* slot,
                       ResolveSlot(curve_id));
  return BudgetToInverseNcp(slot, budget);
}

Status PriceQueryEngine::PriceBatch(const CatalogRegistry::CurveSlot* slot,
                                    const double* xs, double* out,
                                    size_t count,
                                    const ParallelConfig& parallel) const {
  MBP_CHECK(slot != nullptr);
  if (count > 0 && (xs == nullptr || out == nullptr)) {
    return InvalidArgumentError("PriceBatch needs non-null xs/out buffers");
  }
  // One snapshot for the whole batch: a consistent curve view even if a
  // republish lands mid-batch, and no per-element atomics.
  const std::shared_ptr<const PricingSnapshot> snapshot = slot->Load();
  if (snapshot == nullptr) return CurveNotServing();
  const PricingSnapshot& snap = *snapshot;
  // Memo misses stream through the vectorized PriceAtBatch kernel. With a
  // quantum armed, queries are snapped chunk-wise into a stack buffer
  // first; either way evaluation is per-element pure, so any ParallelFor
  // partition produces the same bits (and the same bits as Price() per
  // element, since PriceAtBatch is bit-identical to PriceAt).
  const auto evaluate = [&](size_t begin, size_t end) {
    if (options_.quantum <= 0.0) {
      snap.PriceAtBatch(xs + begin, out + begin, end - begin);
      return Status::OK();
    }
    constexpr size_t kChunk = 512;
    double quantized[kChunk];
    for (size_t i = begin; i < end; i += kChunk) {
      const size_t m = std::min(kChunk, end - i);
      for (size_t j = 0; j < m; ++j) quantized[j] = Quantize(xs[i + j]);
      snap.PriceAtBatch(quantized, out + i, m);
    }
    return Status::OK();
  };
  if (count < options_.min_parallel_batch ||
      parallel.ResolvedThreads() <= 1) {
    return evaluate(0, count);
  }
  // Disjoint output slots per chunk and a pure per-element evaluation:
  // bit-identical to the serial loop at every thread count.
  return ParallelFor(parallel, 0, count, options_.batch_grain, evaluate);
}

Status PriceQueryEngine::PriceBatch(const std::string& curve_id,
                                    const std::vector<double>& xs,
                                    std::vector<double>* out,
                                    const ParallelConfig& parallel) const {
  MBP_CHECK(out != nullptr);
  MBP_ASSIGN_OR_RETURN(const CatalogRegistry::CurveSlot* slot,
                       ResolveSlot(curve_id));
  out->resize(xs.size());
  return PriceBatch(slot, xs.data(), out->data(), xs.size(), parallel);
}

PriceQueryEngine::CacheStats PriceQueryEngine::cache_stats() const {
  return CacheStats{cache_.hits(), cache_.misses()};
}

}  // namespace mbp::serving

#include "serving/catalog_registry.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace mbp::serving {
namespace {

// Publish stamps are allocated process-globally (not per registry) so a
// stamp value is never reused, even when a later registry's slot lands on
// a recycled address. Cache keys and the engine's thread-local snapshot
// pin both identify a publish by its stamp alone.
std::atomic<uint64_t> g_next_stamp{1};

uint64_t NextStamp() {
  return g_next_stamp.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CatalogRegistry::CatalogRegistry(CatalogRegistryOptions options)
    : options_(options) {}

CatalogRegistry::~CatalogRegistry() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

uint64_t CatalogRegistry::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

CatalogRegistry::CurveSlot* CatalogRegistry::EnsureSlotLocked(CurveRef ref) {
  const size_t chunk_index = ref >> kChunkShift;
  MBP_CHECK_LT(chunk_index, kMaxChunks);
  CurveSlot* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new CurveSlot[kChunkSlots];
    // Release: a reader that loads the chunk pointer sees constructed
    // (empty) slots.
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  return &chunk[ref & (kChunkSlots - 1)];
}

const CatalogRegistry::CurveSlot* CatalogRegistry::slot(CurveRef ref) const {
  if (ref == kInvalidCurveRef) return nullptr;
  const size_t chunk_index = ref >> kChunkShift;
  if (chunk_index >= kMaxChunks) return nullptr;
  const CurveSlot* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    // A ref can become Find()-able an instant before its chunk pointer is
    // visible to this thread. Absent chunk == "first publish still in
    // flight": the same transient NotFound a racing reader could have
    // seen a moment earlier.
    return nullptr;
  }
  return &chunk[ref & (kChunkSlots - 1)];
}

const CatalogRegistry::CurveSlot* CatalogRegistry::Find(
    std::string_view curve_id) const {
  return slot(interner_.Find(curve_id));
}

void CatalogRegistry::WithdrawSlotLocked(CurveSlot* slot) {
  const uint64_t stamp = NextStamp();
  slot->snapshot_.store(nullptr, std::memory_order_release);
  slot->stamp_.store(stamp, std::memory_order_seq_cst);
  if (slot->resident_bytes_ != 0) {
    resident_bytes_.Add(-static_cast<int64_t>(slot->resident_bytes_));
    resident_listings_.Add(-1);
    slot->resident_bytes_ = 0;
  }
}

void CatalogRegistry::EvictLruLocked(const CurveSlot* keep) {
  CurveSlot* victim = nullptr;
  uint64_t victim_touch = 0;
  const size_t n = interner_.size();
  for (size_t ref = 0; ref < n; ++ref) {
    CurveSlot* s = EnsureSlotLocked(static_cast<CurveRef>(ref));
    if (s == keep || s->resident_bytes_ == 0) continue;
    const uint64_t touch = s->last_touch_micros();
    if (victim == nullptr || touch < victim_touch) {
      victim = s;
      victim_touch = touch;
    }
  }
  if (victim != nullptr) WithdrawSlotLocked(victim);
}

StatusOr<const CatalogRegistry::CurveSlot*> CatalogRegistry::Publish(
    const std::string& curve_id, const core::PiecewiseLinearPricing& curve) {
  // Fault points at the two failure edges of a publish: snapshot
  // compilation/allocation and the publish step itself. Either way the
  // contract ("on error the old snapshot keeps serving") must hold, which
  // the chaos suite asserts by querying across injected failed
  // republishes.
  if (MBP_FAULT_POINT("serving.compile.alloc")) {
    return ResourceExhaustedError(
        "injected fault: serving.compile.alloc (snapshot allocation)");
  }
  // Compile (and validate) outside any lock: a slow or failing compile
  // never blocks readers or other publishers.
  MBP_ASSIGN_OR_RETURN(std::shared_ptr<const PricingSnapshot> snapshot,
                       PricingSnapshot::Compile(curve));
  if (MBP_FAULT_POINT("serving.publish.fail")) {
    return InternalError("injected fault: serving.publish.fail");
  }
  const size_t bytes = snapshot->MemoryBytes();
  const CurveRef ref = interner_.Intern(curve_id);
  const uint64_t now = NowMicros();

  std::lock_guard<std::mutex> lock(mutex_);
  CurveSlot* slot = EnsureSlotLocked(ref);
  if (slot->resident_bytes_ == 0 && options_.max_resident_listings > 0 &&
      resident_listings() >= options_.max_resident_listings) {
    EvictLruLocked(slot);
  }
  const uint64_t stamp = NextStamp();
  // Order matters: snapshot first (release), stamp second (seq_cst).
  // A reader that sees the new stamp therefore sees this snapshot or a
  // newer one; see the class comment and DESIGN.md §5b/§5g.
  slot->snapshot_.store(std::move(snapshot), std::memory_order_release);
  slot->stamp_.store(stamp, std::memory_order_seq_cst);
  slot->Touch(now);
  resident_bytes_.Add(static_cast<int64_t>(bytes) -
                      static_cast<int64_t>(slot->resident_bytes_));
  if (slot->resident_bytes_ == 0) resident_listings_.Add(1);
  slot->resident_bytes_ = bytes;
  return static_cast<const CurveSlot*>(slot);
}

Status CatalogRegistry::Withdraw(const std::string& curve_id) {
  const CurveRef ref = interner_.Find(curve_id);
  if (ref == kInvalidCurveRef) {
    return NotFoundError("no published curve with id '" + curve_id + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  WithdrawSlotLocked(EnsureSlotLocked(ref));
  return Status::OK();
}

size_t CatalogRegistry::EvictIdle(uint64_t now_micros, uint64_t idle_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t evicted = 0;
  const size_t n = interner_.size();
  for (size_t ref = 0; ref < n; ++ref) {
    CurveSlot* s = EnsureSlotLocked(static_cast<CurveRef>(ref));
    if (s->resident_bytes_ == 0) continue;
    const uint64_t touch = s->last_touch_micros();
    if (touch + idle_micros <= now_micros) {
      WithdrawSlotLocked(s);
      ++evicted;
    }
  }
  return evicted;
}

}  // namespace mbp::serving

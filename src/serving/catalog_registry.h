#ifndef MBP_SERVING_CATALOG_REGISTRY_H_
#define MBP_SERVING_CATALOG_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/intern_table.h"
#include "common/metrics.h"
#include "common/statusor.h"
#include "serving/pricing_snapshot.h"

namespace mbp::serving {

// Dense integer handle for a catalog listing: assigned by the interning
// table at first publish, stable for the registry's lifetime, never
// reused. Withdrawing a curve clears its snapshot, not its ref.
using CurveRef = uint32_t;
inline constexpr CurveRef kInvalidCurveRef = InternTable::kNotFound;

struct CatalogRegistryOptions {
  // Cap on listings with a resident compiled snapshot. When publishing a
  // curve that is not already resident would exceed the cap, the
  // least-recently-touched resident listing is evicted (withdrawn) first
  // so a million-listing catalog cannot OOM the server. 0 = unbounded.
  size_t max_resident_listings = 0;
};

// Marketplace-scale successor of the PR-2 SnapshotRegistry (the old name
// remains as an alias): maps curve ids to published PricingSnapshots for
// catalogs of 100k+ listings (DESIGN.md §5g).
//
// What changed versus the single-mutex registry:
//  - Ids are interned into dense CurveRefs (common/intern_table.h), so
//    the per-request heterogeneous lookup is ONE lock-free open-addressed
//    probe plus one array index — Find() never takes a mutex and never
//    allocates, at any catalog size.
//  - Snapshot slots are per-curve RCU: CurveSlot keeps the PR-2 contract
//    (atomic shared_ptr snapshot, process-global seq_cst publish stamp),
//    and the slot directory is a chunked array of atomic chunk pointers,
//    so republishing one listing touches nothing shared with the other
//    listings' read paths.
//  - The registry mutex still exists but guards only publish-side
//    bookkeeping (slot creation, residency accounting, eviction); curve
//    compilation stays outside it and readers never acquire it.
//
// Memory ordering is inherited verbatim from §5b: snapshot store is
// release / Load() acquire; the stamp is stored seq_cst AFTER the
// snapshot, so a reader that observes a stamp observes that publish's
// snapshot or a newer one.
//
// Memory accounting: every resident compiled snapshot's MemoryBytes() is
// summed into a relaxed gauge (resident_bytes()), served via STATS;
// EvictIdle() and max_resident_listings bound the footprint. Eviction
// withdraws the snapshot only — the id binding, ref, and slot survive, so
// in-flight refs stay valid and a later republish revives the listing
// under the same ref.
class CatalogRegistry {
 public:
  class CurveSlot {
   public:
    // The current snapshot, or nullptr if the curve was withdrawn or
    // evicted. Lock-free with respect to publishers.
    std::shared_ptr<const PricingSnapshot> Load() const {
      return snapshot_.load(std::memory_order_acquire);
    }

    // PROCESS-wide unique stamp of the latest (re)publish into this slot
    // (0 before the first publish completes). Monotone per slot and never
    // reused across slots or registries, so (stamp, x) uniquely identifies
    // a cached price across every curve ever served — even when a slot
    // address is recycled by a later registry (the engine's thread-local
    // snapshot pin relies on exactly this). A plain load on x86 — cheap
    // enough for the per-query hot path.
    uint64_t stamp() const { return stamp_.load(std::memory_order_seq_cst); }

    // Records an access for LRU eviction (EvictIdle / max-listings).
    // Relaxed monotone-ish max: the server stamps request-start time per
    // pass; losing a race between two near-simultaneous touches is fine —
    // eviction is approximate by design.
    void Touch(uint64_t now_micros) const {
      last_touch_micros_.store(now_micros, std::memory_order_relaxed);
    }
    uint64_t last_touch_micros() const {
      return last_touch_micros_.load(std::memory_order_relaxed);
    }

    // Default-constructible (empty) so the directory can build chunks of
    // slots in place; only the registry can publish into one.
    CurveSlot() = default;
    CurveSlot(const CurveSlot&) = delete;
    CurveSlot& operator=(const CurveSlot&) = delete;

   private:
    friend class CatalogRegistry;

    std::atomic<std::shared_ptr<const PricingSnapshot>> snapshot_{nullptr};
    std::atomic<uint64_t> stamp_{0};
    mutable std::atomic<uint64_t> last_touch_micros_{0};
    // Resident MemoryBytes() of the current snapshot; 0 when withdrawn.
    // Guarded by the registry mutex (publish-side bookkeeping only).
    size_t resident_bytes_ = 0;
  };

  explicit CatalogRegistry(CatalogRegistryOptions options = {});
  ~CatalogRegistry();
  CatalogRegistry(const CatalogRegistry&) = delete;
  CatalogRegistry& operator=(const CatalogRegistry&) = delete;

  // Compiles `curve` (validating arbitrage-freeness) and publishes it
  // under `curve_id`, interning the id on first publish. On error the
  // previously published snapshot, if any, keeps serving. May evict the
  // least-recently-touched OTHER listing when max_resident_listings would
  // be exceeded. Returns the slot, which stays valid for the registry's
  // lifetime.
  StatusOr<const CurveSlot*> Publish(const std::string& curve_id,
                                     const core::PiecewiseLinearPricing& curve);

  // Marks the curve withdrawn: subsequent Load() returns nullptr and the
  // serving engine reports NotFound. The slot itself stays valid and the
  // id can be republished later.
  Status Withdraw(const std::string& curve_id);

  // Resolves an id to its slot: one lock-free intern-table probe + one
  // chunk index. nullptr for ids never published. Takes a string_view so
  // the server's zero-allocation request path can look up ids that are
  // views into the wire buffer.
  const CurveSlot* Find(std::string_view curve_id) const;

  // Ref-based access for callers that cache the dense handle.
  CurveRef FindRef(std::string_view curve_id) const {
    return interner_.Find(curve_id);
  }
  const CurveSlot* slot(CurveRef ref) const;
  std::string_view KeyOf(CurveRef ref) const { return interner_.KeyOf(ref); }

  // Number of ids ever published (withdrawn ids included).
  size_t size() const { return interner_.size(); }

  // Listings with a resident compiled snapshot right now.
  size_t resident_listings() const {
    return static_cast<size_t>(resident_listings_.Value());
  }
  // Total MemoryBytes() of all resident compiled snapshots.
  size_t resident_bytes() const {
    return static_cast<size_t>(resident_bytes_.Value());
  }

  // Withdraws every resident listing whose last Touch() is at least
  // `idle_micros` older than `now_micros`. O(size()) scan — an operator /
  // maintenance path, not a request path. Returns the count evicted.
  size_t EvictIdle(uint64_t now_micros, uint64_t idle_micros);

  // Microseconds on the steady clock — the time base Touch() and
  // EvictIdle() expect.
  static uint64_t NowMicros();

 private:
  // Slot directory mirroring the intern table's chunking: refs are dense,
  // so chunk c holds refs [c << kChunkShift, (c + 1) << kChunkShift).
  // Chunk pointers are atomic (readers index without the mutex); chunks
  // are allocated under the mutex and never freed or moved before
  // destruction.
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSlots = size_t{1} << kChunkShift;
  static constexpr size_t kMaxChunks = 4096;

  // Returns the slot for `ref`, allocating its chunk if needed. Mutex
  // must be held.
  CurveSlot* EnsureSlotLocked(CurveRef ref);
  // Clears `slot`'s snapshot + residency accounting. Mutex must be held.
  void WithdrawSlotLocked(CurveSlot* slot);
  // Evicts the least-recently-touched resident listing other than
  // `keep`. Mutex must be held.
  void EvictLruLocked(const CurveSlot* keep);

  const CatalogRegistryOptions options_;
  InternTable interner_;
  mutable std::mutex mutex_;  // publish-side bookkeeping only
  std::array<std::atomic<CurveSlot*>, kMaxChunks> chunks_{};
  Gauge resident_listings_;
  Gauge resident_bytes_;
};

}  // namespace mbp::serving

#endif  // MBP_SERVING_CATALOG_REGISTRY_H_

#include "serving/pricing_snapshot.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/check.h"
#include "common/sharded_cache.h"
#include "linalg/kernels.h"

namespace mbp::serving {
namespace {

// Process-wide compilation stamp; see PricingSnapshot::version().
std::atomic<uint64_t> g_next_version{1};

// Bucket-index size: ~2 buckets per knot makes the expected per-bucket
// window 0-1 segments, capped so a pathological million-knot curve still
// compiles into a bounded index.
size_t BucketCountForKnots(size_t num_knots) {
  const size_t want = std::min<size_t>(2 * num_knots, 1u << 17);
  return static_cast<size_t>(NextPowerOfTwo(std::max<size_t>(want, 1)));
}

}  // namespace

StatusOr<std::shared_ptr<const PricingSnapshot>> PricingSnapshot::Compile(
    const core::PiecewiseLinearPricing& curve) {
  // The arbitrage-freeness invariants are certified once here, instead of
  // being the caller's per-query responsibility: a snapshot that exists is
  // a snapshot that is safe to sell from.
  MBP_RETURN_IF_ERROR(curve.ValidateArbitrageFree());

  const std::vector<core::PricePoint>& points = curve.points();
  const size_t n = points.size();
  MBP_CHECK_GT(n, 0u);
  MBP_CHECK_LT(n, std::numeric_limits<uint32_t>::max());

  auto snapshot = std::shared_ptr<PricingSnapshot>(new PricingSnapshot());
  snapshot->version_ =
      g_next_version.fetch_add(1, std::memory_order_relaxed);
  snapshot->x_.resize(n);
  snapshot->price_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    snapshot->x_[i] = points[i].x;
    snapshot->price_[i] = points[i].price;
  }
  if (n > 1) {
    snapshot->dx_.resize(n - 1);
    snapshot->dprice_.resize(n - 1);
    for (size_t i = 0; i + 1 < n; ++i) {
      // The exact subtractions PriceAtInverseNcp evaluates inline; storing
      // them keeps interpolation bit-identical to the research path.
      snapshot->dx_[i] = snapshot->x_[i + 1] - snapshot->x_[i];
      snapshot->dprice_[i] = snapshot->price_[i + 1] - snapshot->price_[i];
    }
  }

  const size_t num_buckets = BucketCountForKnots(n);
  snapshot->num_buckets_ = num_buckets;
  snapshot->bucket_width_ =
      snapshot->x_.back() / static_cast<double>(num_buckets);
  snapshot->inv_bucket_width_ = 1.0 / snapshot->bucket_width_;
  snapshot->bucket_hint_.resize(num_buckets + 1);
  size_t knot = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    // First knot strictly right of the bucket's left edge; the same
    // comparison UpperKnot's window bounds are derived from.
    const double edge = snapshot->bucket_width_ * static_cast<double>(b);
    while (knot < n && !(snapshot->x_[knot] > edge)) ++knot;
    snapshot->bucket_hint_[b] = static_cast<uint32_t>(knot);
  }
  // Sentinel: the last bucket's window always extends to the end, which
  // absorbs any floating-point slack between bucket_width_ * num_buckets_
  // and x_.back().
  snapshot->bucket_hint_[num_buckets] = static_cast<uint32_t>(n);
  return std::shared_ptr<const PricingSnapshot>(std::move(snapshot));
}

size_t PricingSnapshot::UpperKnot(double x) const {
  // Bucket estimate, then exact edge comparisons. The multiply lands
  // within one bucket of the true floor(x / width); the loops (almost
  // always zero iterations) settle x into the bucket whose edges bound it,
  // so the window below provably brackets the answer.
  size_t b = std::min(num_buckets_ - 1,
                      static_cast<size_t>(x * inv_bucket_width_));
  while (b > 0 && x < bucket_width_ * static_cast<double>(b)) --b;
  while (b + 1 < num_buckets_ &&
         x >= bucket_width_ * static_cast<double>(b + 1)) {
    ++b;
  }
  // Every knot <= the left edge sits below bucket_hint_[b]; every knot
  // > the right edge sits at or past bucket_hint_[b + 1] (the last bucket
  // runs to the sentinel). upper_bound over that window equals the global
  // upper_bound.
  const double* first = x_.data() + bucket_hint_[b];
  const double* last = x_.data() + bucket_hint_[b + 1];
  return static_cast<size_t>(std::upper_bound(first, last, x) - x_.data());
}

double PricingSnapshot::PriceAt(double x) const {
  MBP_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x <= x_[0]) {
    // Linear from the origin through the first knot (same expression as
    // PiecewiseLinearPricing::PriceAtInverseNcp).
    return price_[0] * (x / x_[0]);
  }
  if (x >= x_.back()) return price_.back();
  const size_t hi = UpperKnot(x);
  const size_t lo = hi - 1;
  const double t = (x - x_[lo]) / dx_[lo];
  return price_[lo] + t * dprice_[lo];
}

void PricingSnapshot::PriceAtBatch(const double* xs, double* out,
                                   size_t n) const {
  if (n == 0) return;
  MBP_CHECK(xs != nullptr);
  MBP_CHECK(out != nullptr);
  linalg::kernels::PwlView view;
  view.x = x_.data();
  view.price = price_.data();
  view.dx = dx_.data();
  view.dprice = dprice_.data();
  view.bucket_hint = bucket_hint_.data();
  view.n = x_.size();
  view.num_buckets = num_buckets_;
  view.bucket_width = bucket_width_;
  view.inv_bucket_width = inv_bucket_width_;
  linalg::kernels::Active().pwl_batch(view, xs, out, n);
}

double PricingSnapshot::BudgetToInverseNcp(double budget) const {
  MBP_CHECK_GE(budget, 0.0);
  if (budget >= price_.back()) {
    return std::numeric_limits<double>::infinity();
  }
  if (budget <= price_[0]) {
    if (price_[0] <= 0.0) return std::numeric_limits<double>::infinity();
    return x_[0] * budget / price_[0];
  }
  // Last knot with price <= budget (prices are monotone: certified at
  // Compile); same arithmetic as MaxInverseNcpForBudget.
  const auto it = std::partition_point(
      price_.begin(), price_.end(),
      [budget](double p) { return p <= budget; });
  const size_t lo = static_cast<size_t>(it - price_.begin()) - 1;
  const double rise = dprice_[lo];
  if (rise <= 0.0) return x_[lo + 1];
  const double t = (budget - price_[lo]) / rise;
  return x_[lo] + t * dx_[lo];
}

std::vector<core::PricePoint> PricingSnapshot::Knots() const {
  std::vector<core::PricePoint> knots(x_.size());
  for (size_t i = 0; i < x_.size(); ++i) {
    knots[i] = core::PricePoint{x_[i], price_[i]};
  }
  return knots;
}

}  // namespace mbp::serving

#ifndef MBP_SERVING_PRICE_QUERY_ENGINE_H_
#define MBP_SERVING_PRICE_QUERY_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sharded_cache.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "serving/catalog_registry.h"

namespace mbp::serving {

struct PriceQueryEngineOptions {
  // Memo-cache geometry; shards are rounded up to a power of two. A
  // capacity of 0 disables the memo cache (every query evaluates the
  // snapshot directly).
  // The cache is direct-mapped (see ShardedMemoCache), so total resident
  // entries are bounded by shards * capacity; the default is 2^16 slots
  // (~1.5 MiB), small enough to stay cache-resident under a realistic
  // working set.
  size_t cache_shards = 16;
  size_t cache_capacity_per_shard = 1 << 12;

  // Query quantization step. 0 (default) caches on the exact bit pattern
  // of x. A positive quantum snaps every query to the nearest multiple of
  // `quantum` BEFORE evaluation, so nearby queries share one cache entry.
  // The served price is then exactly the curve's price at Quantize(x) —
  // quantization trades query resolution for hit rate, never price
  // fidelity: cached and uncached answers for the same query are still
  // bit-identical.
  double quantum = 0.0;

  // Batches smaller than this run inline on the calling thread; pool
  // dispatch only pays off once a batch clearly exceeds its overhead.
  size_t min_parallel_batch = 2048;
  // Queries per ParallelFor chunk in the batch path.
  size_t batch_grain = 1024;
};

// The broker-side serving front end for price queries: resolves curve ids
// through a CatalogRegistry, memoizes repeated point lookups in a sharded
// cache, and fans large batches across the shared ThreadPool.
//
// Concurrency: Price/PriceBatch/BudgetToInverseNcp are safe to call from
// any number of threads concurrently with Publish/Withdraw on the
// registry. Point queries take exactly one shard mutex on the memo path;
// the snapshot itself is resolved through a thread-local pin keyed by the
// publish stamp, so the atomic shared_ptr load (and its refcount traffic)
// is paid once per publish per thread, not once per query.
// Every served price is the bit-exact evaluation of a published snapshot;
// during a racing republish a query may be served from either the
// outgoing or the incoming curve, but once Publish returns every new
// query serves the new curve (stale memo entries are unreachable: the
// publish stamp is part of the cache key). See DESIGN.md §5b.
//
// Determinism: PriceBatch writes each output slot from an independent pure
// evaluation of one snapshot, so results are bit-identical to the serial
// loop at every thread count, and to Price() on the same engine.
class PriceQueryEngine {
 public:
  // `registry` must outlive the engine.
  explicit PriceQueryEngine(const CatalogRegistry* registry,
                            PriceQueryEngineOptions options = {});

  // --- Point queries ------------------------------------------------------

  // Price of the model at x = 1/delta, served from the memo cache or the
  // current snapshot. NotFound if the id was never published or withdrawn.
  StatusOr<double> Price(const CatalogRegistry::CurveSlot* slot,
                         double x) const;
  StatusOr<double> Price(const std::string& curve_id, double x) const;

  // Largest affordable x for `budget` on the current snapshot (uncached:
  // budget inversions are already O(log n) and rare relative to prices).
  StatusOr<double> BudgetToInverseNcp(const CatalogRegistry::CurveSlot* slot,
                                      double budget) const;
  StatusOr<double> BudgetToInverseNcp(const std::string& curve_id,
                                      double budget) const;

  // --- Batched throughput path -------------------------------------------

  // Evaluates xs[i] -> out[i] for i in [0, count). The whole batch is
  // served from ONE snapshot load (a consistent view even while the curve
  // is republished mid-batch) and bypasses the memo cache: the batch path
  // exists to saturate cores on streaming work, where a per-element shard
  // lock would serialize it. Results are bit-identical to calling Price()
  // per element at any thread count.
  Status PriceBatch(const CatalogRegistry::CurveSlot* slot,
                    const double* xs, double* out, size_t count,
                    const ParallelConfig& parallel = {}) const;
  Status PriceBatch(const std::string& curve_id, const std::vector<double>& xs,
                    std::vector<double>* out,
                    const ParallelConfig& parallel = {}) const;

  // --- Introspection ------------------------------------------------------

  // The canonical representative x the engine evaluates for a query x
  // (identity when options.quantum == 0).
  double Quantize(double x) const;

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  CacheStats cache_stats() const;

  // Drops every memoized price (stats are kept). Queries in flight are
  // unaffected beyond refilling their entries.
  void ClearCache() { cache_.Clear(); }

  const CatalogRegistry& registry() const { return *registry_; }

 private:
  StatusOr<const CatalogRegistry::CurveSlot*> ResolveSlot(
      const std::string& curve_id) const;

  const CatalogRegistry* registry_;
  PriceQueryEngineOptions options_;
  mutable ShardedMemoCache<double> cache_;
};

}  // namespace mbp::serving

#endif  // MBP_SERVING_PRICE_QUERY_ENGINE_H_

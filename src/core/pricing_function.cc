#include "core/pricing_function.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace mbp::core {

double PricingFunction::PriceAtNcp(double delta) const {
  MBP_CHECK_GT(delta, 0.0);
  return PriceAtInverseNcp(1.0 / delta);
}

StatusOr<PiecewiseLinearPricing> PiecewiseLinearPricing::Create(
    std::vector<PricePoint> points) {
  if (points.empty()) {
    return InvalidArgumentError("pricing curve needs at least one point");
  }
  double prev_x = 0.0;
  for (const PricePoint& point : points) {
    if (!(point.x > prev_x)) {
      return InvalidArgumentError(
          "pricing points must have strictly increasing x > 0");
    }
    if (point.price < 0.0 || !std::isfinite(point.price)) {
      return InvalidArgumentError("prices must be finite and non-negative");
    }
    prev_x = point.x;
  }
  return PiecewiseLinearPricing(std::move(points));
}

double PiecewiseLinearPricing::PriceAtInverseNcp(double x) const {
  MBP_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  const PricePoint& first = points_.front();
  if (x <= first.x) {
    // Linear from the origin through the first knot.
    return first.price * (x / first.x);
  }
  const PricePoint& last = points_.back();
  if (x >= last.x) return last.price;
  // Find the bracketing segment.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double value, const PricePoint& p) { return value < p.x; });
  const size_t hi = static_cast<size_t>(it - points_.begin());
  const size_t lo = hi - 1;
  const double t = (x - points_[lo].x) / (points_[hi].x - points_[lo].x);
  return points_[lo].price + t * (points_[hi].price - points_[lo].price);
}

Status PiecewiseLinearPricing::ValidateArbitrageFree() const {
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].price + 1e-9 < points_[i - 1].price) {
      return FailedPreconditionError(
          "prices are not monotone non-decreasing at knot " +
          std::to_string(i));
    }
    const double ratio_prev = points_[i - 1].price / points_[i - 1].x;
    const double ratio_here = points_[i].price / points_[i].x;
    if (ratio_here > ratio_prev + 1e-9) {
      return FailedPreconditionError(
          "price/x is not monotone non-increasing at knot " +
          std::to_string(i) + "; the curve is not subadditive");
    }
  }
  return Status::OK();
}

double PiecewiseLinearPricing::MaxInverseNcpForBudget(double budget) const {
  MBP_CHECK_GE(budget, 0.0);
  const PricePoint& last = points_.back();
  if (budget >= last.price) {
    return std::numeric_limits<double>::infinity();
  }
  const PricePoint& first = points_.front();
  if (budget <= first.price) {
    // On the origin segment price = first.price * x / first.x.
    if (first.price <= 0.0) return std::numeric_limits<double>::infinity();
    return first.x * budget / first.price;
  }
  // Find the last knot with price <= budget and invert its right segment.
  // Prices are monotone non-decreasing (precondition), so "price <= budget"
  // is a true-prefix predicate and std::partition_point binary-searches it.
  // Ties on flat runs resolve identically to the old linear scan: the
  // partition point is the first knot priced above budget, so lo is the
  // LAST knot with price <= budget. The scan survives as
  // internal::MaxInverseNcpForBudgetLinearScan, the test oracle.
  const auto it = std::partition_point(
      points_.begin(), points_.end(),
      [budget](const PricePoint& p) { return p.price <= budget; });
  const size_t lo = static_cast<size_t>(it - points_.begin()) - 1;
  const PricePoint& left = points_[lo];
  const PricePoint& right = points_[lo + 1];
  const double rise = right.price - left.price;
  if (rise <= 0.0) return right.x;  // flat segment: whole segment affordable
  const double t = (budget - left.price) / rise;
  return left.x + t * (right.x - left.x);
}

namespace internal {

double MaxInverseNcpForBudgetLinearScan(const std::vector<PricePoint>& points,
                                        double budget) {
  MBP_CHECK_GE(budget, 0.0);
  const PricePoint& last = points.back();
  if (budget >= last.price) {
    return std::numeric_limits<double>::infinity();
  }
  const PricePoint& first = points.front();
  if (budget <= first.price) {
    if (first.price <= 0.0) return std::numeric_limits<double>::infinity();
    return first.x * budget / first.price;
  }
  size_t lo = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].price <= budget) lo = i;
  }
  const PricePoint& left = points[lo];
  const PricePoint& right = points[lo + 1];
  const double rise = right.price - left.price;
  if (rise <= 0.0) return right.x;
  const double t = (budget - left.price) / rise;
  return left.x + t * (right.x - left.x);
}

}  // namespace internal

std::vector<double> RelaxedMinorant(const PriceCallable& price,
                                    const std::vector<double>& xs) {
  std::vector<double> q(xs.size());
  double min_ratio = std::numeric_limits<double>::infinity();
  double prev_x = 0.0;
  for (size_t j = 0; j < xs.size(); ++j) {
    MBP_CHECK_GT(xs[j], prev_x) << "grid must be strictly increasing > 0";
    prev_x = xs[j];
    min_ratio = std::min(min_ratio, price(xs[j]) / xs[j]);
    q[j] = xs[j] * min_ratio;
  }
  return q;
}

std::optional<MonotonicityViolation> FindMonotonicityViolation(
    const PriceCallable& price, double x_max, size_t grid_size,
    double tolerance) {
  MBP_CHECK_GT(x_max, 0.0);
  MBP_CHECK_GE(grid_size, 2u);
  const double step = x_max / static_cast<double>(grid_size);
  double prev_x = step;
  double prev_price = price(prev_x);
  for (size_t i = 2; i <= grid_size; ++i) {
    const double x = step * static_cast<double>(i);
    const double p = price(x);
    if (p + tolerance < prev_price) {
      return MonotonicityViolation{prev_x, x, prev_price, p};
    }
    prev_x = x;
    prev_price = p;
  }
  return std::nullopt;
}

std::optional<SubadditivityViolation> FindSubadditivityViolation(
    const PriceCallable& price, double x_max, size_t grid_size,
    double tolerance) {
  MBP_CHECK_GT(x_max, 0.0);
  MBP_CHECK_GE(grid_size, 2u);
  const double step = x_max / static_cast<double>(grid_size);
  // Cache prices at grid points; check all pairs whose sum stays on-grid.
  std::vector<double> cached(grid_size + 1, 0.0);
  for (size_t i = 1; i <= grid_size; ++i) {
    cached[i] = price(step * static_cast<double>(i));
  }
  for (size_t i = 1; i <= grid_size; ++i) {
    for (size_t j = i; i + j <= grid_size; ++j) {
      const double sum = cached[i] + cached[j];
      const double combined = cached[i + j];
      if (combined > sum + tolerance) {
        return SubadditivityViolation{step * static_cast<double>(i),
                                      step * static_cast<double>(j), sum,
                                      combined};
      }
    }
  }
  return std::nullopt;
}

bool IsArbitrageFreeOnGrid(const PriceCallable& price, double x_max,
                           size_t grid_size, double tolerance) {
  return !FindMonotonicityViolation(price, x_max, grid_size, tolerance)
              .has_value() &&
         !FindSubadditivityViolation(price, x_max, grid_size, tolerance)
              .has_value();
}

}  // namespace mbp::core

#ifndef MBP_CORE_REVENUE_OPT_H_
#define MBP_CORE_REVENUE_OPT_H_

#include <vector>

#include "common/statusor.h"
#include "core/curves.h"
#include "core/pricing_function.h"

namespace mbp::core {

// Result of a revenue optimization: the price z_j assigned to each curve
// point a_j, the realized revenue sum_j b_j z_j 1[z_j <= v_j], and the
// demand-weighted affordability ratio sum_j b_j 1[z_j <= v_j].
struct RevenueOptResult {
  std::vector<double> prices;
  double revenue = 0.0;
  double affordability = 0.0;
};

// Revenue of arbitrary prices against a market curve (the T_bv objective).
double RevenueOf(const std::vector<CurvePoint>& curve,
                 const std::vector<double>& prices);

// Demand-weighted fraction of buyers who can afford their instance.
double AffordabilityOf(const std::vector<CurvePoint>& curve,
                       const std::vector<double>& prices);

// The paper's MBP revenue optimizer (Theorem 10): the O(n^2) dynamic
// program that maximizes T_bv over the relaxed feasible region (4)
//   z_j / a_j non-increasing,  z_j non-decreasing,  z_j >= 0.
// Any feasible solution is arbitrage-free (Lemma 8), and the optimum is at
// least half the true subadditive optimum (Proposition 3).
//
// Requirements: curve x strictly increasing, values non-negative and
// non-decreasing (the paper's monotone-valuations assumption), demands
// non-negative.
StatusOr<RevenueOptResult> MaximizeRevenueDp(
    const std::vector<CurvePoint>& curve);

// Wraps optimized knot prices into the canonical piecewise-linear
// arbitrage-free pricing function (Proposition 1).
StatusOr<PiecewiseLinearPricing> PricingFromKnots(
    const std::vector<CurvePoint>& curve, const std::vector<double>& prices);

}  // namespace mbp::core

#endif  // MBP_CORE_REVENUE_OPT_H_

#include "core/marketplace.h"

#include <algorithm>

namespace mbp::core {

Status Marketplace::List(std::string id, Seller seller,
                         ModelListing listing,
                         const Broker::Options& options) {
  if (id.empty()) return InvalidArgumentError("listing id must not be empty");
  for (const Entry& entry : entries_) {
    if (entry.info.id == id) {
      return InvalidArgumentError("listing id already exists: " + id);
    }
  }
  const std::string seller_name = seller.name();
  MBP_ASSIGN_OR_RETURN(Broker broker,
                       Broker::Create(std::move(seller), listing, options));
  Entry entry;
  entry.info = CatalogEntry{std::move(id), seller_name, listing.model,
                            listing.test_error};
  entry.broker = std::make_unique<Broker>(std::move(broker));
  entries_.push_back(std::move(entry));
  return Status::OK();
}

std::vector<CatalogEntry> Marketplace::Catalog() const {
  std::vector<CatalogEntry> catalog;
  catalog.reserve(entries_.size());
  for (const Entry& entry : entries_) catalog.push_back(entry.info);
  return catalog;
}

StatusOr<Broker*> Marketplace::Lookup(const std::string& id) {
  for (Entry& entry : entries_) {
    if (entry.info.id == id) return entry.broker.get();
  }
  return NotFoundError("no listing with id: " + id);
}

Status Marketplace::Delist(const std::string& id) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const Entry& entry) { return entry.info.id == id; });
  if (it == entries_.end()) {
    return NotFoundError("no listing with id: " + id);
  }
  entries_.erase(it);
  return Status::OK();
}

TransactionLedger Marketplace::BuildLedger() const {
  TransactionLedger ledger;
  for (const Entry& entry : entries_) {
    for (const Transaction& txn : entry.broker->transactions()) {
      const Status status = ledger.Append(
          LedgerRecord{entry.info.id, txn.id, txn.delta, txn.price,
                       txn.quoted_expected_error});
      MBP_CHECK(status.ok()) << status.ToString();
    }
  }
  return ledger;
}

double Marketplace::TotalRevenue() const {
  double total = 0.0;
  for (const Entry& entry : entries_) {
    total += entry.broker->total_revenue();
  }
  return total;
}

}  // namespace mbp::core

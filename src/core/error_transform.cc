#include "core/error_transform.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ml/sufficient_stats.h"
#include "optim/pava.h"

namespace mbp::core {
namespace {

// Trials per Monte-Carlo task. Fixed (never derived from the thread
// count) so the task decomposition — and therefore every RNG substream —
// is identical at any concurrency level.
constexpr size_t kTrialsPerChunk = 64;

// Piecewise-linear interpolation of ys over ascending xs, clamped to the
// table's range at both ends.
double Interpolate(const std::vector<double>& xs,
                   const std::vector<double>& ys, double x) {
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const size_t hi = static_cast<size_t>(it - xs.begin());
  const size_t lo = hi - 1;
  const double span = xs[hi] - xs[lo];
  if (span <= 0.0) return ys[lo];
  const double t = (x - xs[lo]) / span;
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

}  // namespace

StatusOr<AnalyticSquareLossTransform> AnalyticSquareLossTransform::Build(
    const linalg::Vector& optimal, const data::Dataset& eval) {
  if (optimal.size() != eval.num_features()) {
    return InvalidArgumentError(
        "optimal model dimension must match dataset features");
  }
  const size_t n = eval.num_examples();
  const size_t d = eval.num_features();
  // tr(X^T X) = sum of squared entries = sum_i ||x_i||^2.
  double trace = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* row = eval.ExampleFeatures(i);
    for (size_t j = 0; j < d; ++j) trace += row[j] * row[j];
  }
  const double slope =
      trace / (2.0 * static_cast<double>(n) * static_cast<double>(d));
  if (!(slope > 0.0)) {
    return InvalidArgumentError(
        "dataset has all-zero features; the square-loss transform would "
        "be flat and non-invertible");
  }
  const ml::SquareLoss epsilon(0.0);
  return AnalyticSquareLossTransform(epsilon.Evaluate(optimal, eval),
                                     slope);
}

StatusOr<EmpiricalErrorTransform> EmpiricalErrorTransform::Build(
    const RandomizedMechanism& mechanism, const linalg::Vector& optimal,
    const ml::Loss& error_function, const data::Dataset& eval,
    const BuildOptions& options) {
  if (optimal.size() != eval.num_features()) {
    return InvalidArgumentError(
        "optimal model dimension must match dataset features");
  }
  if (!(options.delta_min > 0.0) || options.delta_max <= options.delta_min) {
    return InvalidArgumentError("need 0 < delta_min < delta_max");
  }
  if (options.grid_size < 2) {
    return InvalidArgumentError("grid_size must be >= 2");
  }
  if (options.trials_per_delta == 0) {
    return InvalidArgumentError("trials_per_delta must be > 0");
  }

  // Geometric δ grid, ascending.
  std::vector<double> deltas(options.grid_size);
  const double ratio = std::pow(options.delta_max / options.delta_min,
                                1.0 / (options.grid_size - 1));
  double delta = options.delta_min;
  for (size_t g = 0; g < options.grid_size; ++g) {
    deltas[g] = delta;
    delta *= ratio;
  }
  deltas.back() = options.delta_max;  // exact endpoint despite rounding

  // The sweep is a flat list of (grid point g, trial chunk c) tasks so
  // parallelism is available even when the grid is smaller than the
  // thread count. Task (g, c) owns the trials [c*K, min((c+1)*K, T)) of
  // grid point g and an RNG substream derived from (seed, g, c*K); its
  // partial sum lands in a dedicated slot, and slots are reduced in chunk
  // order below — deterministic at every thread count.
  const size_t chunks_per_point =
      (options.trials_per_delta + kTrialsPerChunk - 1) / kTrialsPerChunk;
  std::vector<double> partial_sums(options.grid_size * chunks_per_point);

  // Square-loss fast path: every trial scores ε on the SAME dataset, so
  // fetch its sufficient statistics once (cached across transforms built
  // on the same dataset) and evaluate each noisy instance in O(d^2) via
  //   ||y - X h||^2 = y^T y - 2 h.(X^T y) + h.(G h)
  // instead of the O(n d) streaming pass. Same value up to rounding.
  std::shared_ptr<const ml::SufficientStats> eval_stats;
  if (error_function.kind() == ml::LossKind::kSquare) {
    eval_stats = ml::SufficientStatsCache::Shared().GetOrBuild(
        eval, options.parallel);
  }
  MBP_RETURN_IF_ERROR(ParallelFor(
      options.parallel, 0, partial_sums.size(), 1,
      [&](size_t task_begin, size_t task_end) {
        for (size_t task = task_begin; task < task_end; ++task) {
          const size_t g = task / chunks_per_point;
          const size_t c = task % chunks_per_point;
          const size_t trial_begin = c * kTrialsPerChunk;
          const size_t trial_end = std::min(trial_begin + kTrialsPerChunk,
                                            options.trials_per_delta);
          random::Rng rng(options.seed ^
                          (0x9E3779B97F4A7C15ULL * (g + 1)) ^
                          (0xBF58476D1CE4E5B9ULL * (trial_begin + 1)));
          double total = 0.0;
          for (size_t t = trial_begin; t < trial_end; ++t) {
            const linalg::Vector noisy =
                mechanism.Perturb(optimal, deltas[g], rng);
            total += eval_stats != nullptr
                         ? ml::SquareLossFromStats(
                               *eval_stats, noisy,
                               error_function.l2_regularization())
                         : error_function.Evaluate(noisy, eval);
          }
          partial_sums[task] = total;
        }
        return Status::OK();
      }));

  std::vector<double> errors(options.grid_size);
  for (size_t g = 0; g < options.grid_size; ++g) {
    double total = 0.0;
    for (size_t c = 0; c < chunks_per_point; ++c) {
      total += partial_sums[g * chunks_per_point + c];
    }
    errors[g] = total / static_cast<double>(options.trials_per_delta);
  }

  // Theorem 4 guarantees monotonicity in expectation for strictly convex ε;
  // Monte-Carlo noise (and non-convex losses like 0/1) can still produce
  // small inversions, so project onto the monotone cone.
  errors = optim::IsotonicNonDecreasing(errors);

  const double min_error = error_function.Evaluate(optimal, eval);
  return EmpiricalErrorTransform(std::move(deltas), std::move(errors),
                                 min_error);
}

double EmpiricalErrorTransform::ExpectedError(double delta) const {
  if (delta <= 0.0) return min_error_;
  if (delta < deltas_.front()) {
    // Linear blend between the optimal instance's error at δ=0 and the
    // first grid point.
    const double t = delta / deltas_.front();
    return min_error_ + t * (errors_.front() - min_error_);
  }
  return Interpolate(deltas_, errors_, delta);
}

double EmpiricalErrorTransform::DeltaForError(double error) const {
  if (error <= min_error_) return 0.0;
  if (error <= errors_.front()) {
    const double span = errors_.front() - min_error_;
    if (span <= 0.0) return deltas_.front();
    return deltas_.front() * (error - min_error_) / span;
  }
  if (error >= errors_.back()) return deltas_.back();
  // The error table is non-decreasing; find the bracketing segment and
  // invert linearly (flat segments return their left endpoint).
  const auto it = std::upper_bound(errors_.begin(), errors_.end(), error);
  const size_t hi = static_cast<size_t>(it - errors_.begin());
  const size_t lo = hi - 1;
  const double span = errors_[hi] - errors_[lo];
  if (span <= 0.0) return deltas_[lo];
  const double t = (error - errors_[lo]) / span;
  return deltas_[lo] + t * (deltas_[hi] - deltas_[lo]);
}

}  // namespace mbp::core

#ifndef MBP_CORE_DEMAND_ESTIMATION_H_
#define MBP_CORE_DEMAND_ESTIMATION_H_

// Market research from the broker's own books. The paper assumes the
// seller supplies value/demand curves via external market research
// (Figure 2a); a running marketplace can instead estimate them from its
// transaction ledger and re-optimize prices for the next period:
//
//   demand_j  ~ the share of sales at quality level x_j;
//   value_j   = the highest price ever paid at x_j (every buyer who paid
//               it valued the instance at least that much), smoothed with
//               an isotonic fit so the estimate is non-decreasing in x
//               (the monotone-valuation assumption the DP requires).
//
// The value estimate is a LOWER bound on true valuations by
// construction; re-optimizing against it is conservative and never
// prices a previously-observed buyer out.

#include <vector>

#include "common/statusor.h"
#include "core/curves.h"
#include "core/ledger.h"

namespace mbp::core {

struct DemandEstimationOptions {
  // A record at NCP δ maps to grid level x_j when |1/δ - x_j| is within
  // this fraction of the grid spacing; unmatched records are skipped.
  double match_tolerance = 0.5;
  // Demand mass given to levels with zero observed sales (so the curve
  // stays usable as a sampling distribution).
  double unseen_demand_floor = 1e-3;
};

// Estimates a market curve over `x_grid` (strictly increasing, > 0) from
// the ledger's records. Requires at least one record mapping onto the
// grid. Levels with no sales get value interpolated from observed
// neighbors and the demand floor.
StatusOr<std::vector<CurvePoint>> EstimateCurveFromLedger(
    const TransactionLedger& ledger, const std::vector<double>& x_grid,
    const DemandEstimationOptions& options = {});

}  // namespace mbp::core

#endif  // MBP_CORE_DEMAND_ESTIMATION_H_

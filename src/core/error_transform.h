#ifndef MBP_CORE_ERROR_TRANSFORM_H_
#define MBP_CORE_ERROR_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "common/thread_pool.h"
#include "core/mechanism.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "ml/loss.h"

namespace mbp::core {

// A monotone map between the noise control parameter δ and the expected
// buyer-facing error E[ε(ĥ^δ_λ(D), D)] (Section 4.2 / Figure 2's "error
// curve transformation"). Both directions are exposed: the broker quotes
// expected error per δ, and the error-inverse ϕ turns a buyer error budget
// back into a δ (Theorem 6).
class ErrorTransform {
 public:
  virtual ~ErrorTransform() = default;

  // Expected error at the given NCP (delta >= 0).
  virtual double ExpectedError(double delta) const = 0;

  // The error-inverse ϕ: the δ whose expected error equals `error`.
  // Values outside the transform's error range clamp to the range ends.
  virtual double DeltaForError(double error) const = 0;

  // Error at δ = 0, i.e. the optimal instance's error.
  virtual double MinError() const = 0;
};

// Analytic transform for the model-space square loss
// ε_s(h, D) = ||h - h*||^2: Lemma 3 gives E[ε_s] = δ exactly, for every
// mechanism normalized as in mechanism.h.
class SquareLossTransform final : public ErrorTransform {
 public:
  double ExpectedError(double delta) const override { return delta; }
  double DeltaForError(double error) const override {
    return error < 0.0 ? 0.0 : error;
  }
  double MinError() const override { return 0.0; }
};

// Closed-form transform for the DATASET square loss
// ε(h, D) = (1/2n) Σ (y_i - h.x_i)^2 under any mechanism with isotropic
// noise covariance E[w w^T] = (δ/d) I (Gaussian, Laplace, uniform
// additive — all mechanisms here except the multiplicative one). Exact:
//   E[ε(h* + w, D)] = ε(h*, D) + δ * tr(X^T X) / (2 n d),
// because the cross term vanishes by unbiasedness and
// E[(w.x_i)^2] = (δ/d) ||x_i||^2. No Monte Carlo needed; the broker can
// use this instead of EmpiricalErrorTransform for square-loss listings
// (see the analytic-vs-empirical ablation bench).
class AnalyticSquareLossTransform final : public ErrorTransform {
 public:
  // `optimal` is h*_λ(D); `eval` is the dataset ε operates on.
  static StatusOr<AnalyticSquareLossTransform> Build(
      const linalg::Vector& optimal, const data::Dataset& eval);

  double ExpectedError(double delta) const override {
    return min_error_ + slope_ * (delta < 0.0 ? 0.0 : delta);
  }
  double DeltaForError(double error) const override {
    if (error <= min_error_) return 0.0;
    return (error - min_error_) / slope_;
  }
  double MinError() const override { return min_error_; }

  // The exact linear coefficient tr(X^T X) / (2 n d).
  double slope() const { return slope_; }

 private:
  AnalyticSquareLossTransform(double min_error, double slope)
      : min_error_(min_error), slope_(slope) {}

  double min_error_;
  double slope_;
};

// Empirical Monte-Carlo transform for arbitrary ε (logistic loss, 0/1
// error, ...): the Figure 6 procedure. For each δ on a grid, draws
// `trials_per_delta` noisy instances from the mechanism and averages
// ε(ĥ, D). The resulting table is made monotone with an isotonic fit
// (guaranteed by Theorem 4 for strictly convex ε; enforced numerically for
// losses like 0/1), then interpolated in both directions.
class EmpiricalErrorTransform final : public ErrorTransform {
 public:
  struct BuildOptions {
    // δ grid: `grid_size` geometrically spaced points in
    // [delta_min, delta_max].
    double delta_min = 0.01;
    double delta_max = 1.0;
    size_t grid_size = 30;
    // Noisy models drawn per grid point (paper uses 2000).
    size_t trials_per_delta = 2000;
    uint64_t seed = 7;
    // Concurrency of the Monte-Carlo sweep. The sweep is decomposed into
    // (grid point, trial chunk) tasks, each owning an RNG substream
    // derived from (seed, grid index, first trial index); per-chunk
    // partial sums are reduced in chunk order, so the fitted table is
    // bit-identical for ANY thread count — threads only change wall time.
    ParallelConfig parallel;
  };

  // `optimal` is h*_λ(D); `eval` is the dataset ε operates on (test or
  // train, per the buyer's preference).
  static StatusOr<EmpiricalErrorTransform> Build(
      const RandomizedMechanism& mechanism, const linalg::Vector& optimal,
      const ml::Loss& error_function, const data::Dataset& eval,
      const BuildOptions& options);

  double ExpectedError(double delta) const override;
  double DeltaForError(double error) const override;
  double MinError() const override { return min_error_; }

  // The fitted (δ, expected error) table, ascending in δ; exactly the
  // series Figure 6 plots (against 1/δ).
  const std::vector<double>& delta_grid() const { return deltas_; }
  const std::vector<double>& error_grid() const { return errors_; }

 private:
  EmpiricalErrorTransform(std::vector<double> deltas,
                          std::vector<double> errors, double min_error)
      : deltas_(std::move(deltas)),
        errors_(std::move(errors)),
        min_error_(min_error) {}

  std::vector<double> deltas_;   // ascending
  std::vector<double> errors_;   // non-decreasing (isotonic-fitted)
  double min_error_;             // error of the optimal instance (δ = 0)
};

}  // namespace mbp::core

#endif  // MBP_CORE_ERROR_TRANSFORM_H_

#include "core/arbitrage.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/check.h"
#include "linalg/vector_ops.h"
#include "ml/loss.h"

namespace mbp::core {

std::optional<ArbitrageAttack> FindArbitrageAttack(
    const PriceCallable& price, double x_max, size_t grid_size,
    double tolerance) {
  MBP_CHECK_GT(x_max, 0.0);
  MBP_CHECK_GE(grid_size, 2u);
  const double step = x_max / static_cast<double>(grid_size);

  std::vector<double> grid_price(grid_size + 1, 0.0);
  for (size_t i = 1; i <= grid_size; ++i) {
    grid_price[i] = price(step * static_cast<double>(i));
  }

  // cheapest[t]: min total price of a multiset of grid points whose x-sum
  // is >= t*step, plus the first purchased point (for reconstruction).
  std::vector<double> cheapest(grid_size + 1,
                               std::numeric_limits<double>::infinity());
  std::vector<size_t> first_pick(grid_size + 1, 0);
  cheapest[0] = 0.0;
  for (size_t t = 1; t <= grid_size; ++t) {
    for (size_t i = 1; i <= grid_size; ++i) {
      const size_t rest = t > i ? t - i : 0;
      const double cost = grid_price[i] + cheapest[rest];
      if (cost < cheapest[t]) {
        cheapest[t] = cost;
        first_pick[t] = i;
      }
    }
  }

  for (size_t t = 1; t <= grid_size; ++t) {
    if (cheapest[t] + tolerance < grid_price[t]) {
      // Reconstruct the multiset that undercuts target t.
      ArbitrageAttack attack;
      attack.target_delta = 1.0 / (step * static_cast<double>(t));
      attack.target_price = grid_price[t];
      attack.total_price = cheapest[t];
      size_t remaining = t;
      while (remaining > 0) {
        const size_t pick = first_pick[remaining];
        MBP_CHECK_GT(pick, 0u);
        attack.purchase_deltas.push_back(
            1.0 / (step * static_cast<double>(pick)));
        remaining = remaining > pick ? remaining - pick : 0;
      }
      attack.combined_delta = CombinedDelta(attack.purchase_deltas);
      return attack;
    }
  }
  return std::nullopt;
}

StatusOr<ExecutedAttack> ExecuteArbitrageAttack(
    Broker& broker, const ArbitrageAttack& attack) {
  if (attack.purchase_deltas.empty()) {
    return InvalidArgumentError("attack has no purchases");
  }
  ExecutedAttack executed;
  std::vector<linalg::Vector> instances;
  instances.reserve(attack.purchase_deltas.size());
  for (double delta : attack.purchase_deltas) {
    MBP_ASSIGN_OR_RETURN(Transaction txn, broker.BuyAtNcp(delta));
    executed.total_paid += txn.price;
    instances.push_back(txn.instance.coefficients());
  }
  executed.combined_instance =
      CombineInstances(instances, attack.purchase_deltas);
  executed.target_price =
      broker.pricing().PriceAtNcp(attack.target_delta);
  executed.target_error =
      broker.error_transform().ExpectedError(attack.target_delta);

  if (broker.listing().error_space == ErrorSpace::kModelSquare) {
    executed.combined_error = linalg::SquaredDistance(
        executed.combined_instance, broker.optimal_model().coefficients());
  } else {
    const std::unique_ptr<ml::Loss> epsilon =
        ml::MakeLoss(broker.listing().test_error, 0.0);
    const data::Dataset& eval = broker.listing().evaluate_on_test
                                    ? broker.seller().test()
                                    : broker.seller().train();
    executed.combined_error =
        epsilon->Evaluate(executed.combined_instance, eval);
  }
  return executed;
}

linalg::Vector CombineInstances(
    const std::vector<linalg::Vector>& instances,
    const std::vector<double>& deltas) {
  MBP_CHECK_EQ(instances.size(), deltas.size());
  MBP_CHECK_GE(instances.size(), 1u);
  double total_precision = 0.0;
  for (double delta : deltas) {
    MBP_CHECK_GT(delta, 0.0);
    total_precision += 1.0 / delta;
  }
  linalg::Vector combined(instances.front().size());
  for (size_t i = 0; i < instances.size(); ++i) {
    MBP_CHECK_EQ(instances[i].size(), combined.size());
    const double weight = (1.0 / deltas[i]) / total_precision;
    linalg::Axpy(weight, instances[i].data(), combined.data(),
                 combined.size());
  }
  return combined;
}

double CombinedDelta(const std::vector<double>& deltas) {
  MBP_CHECK_GE(deltas.size(), 1u);
  double total_precision = 0.0;
  for (double delta : deltas) {
    MBP_CHECK_GT(delta, 0.0);
    total_precision += 1.0 / delta;
  }
  return 1.0 / total_precision;
}

}  // namespace mbp::core

#include "core/ledger.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace mbp::core {
namespace {

constexpr char kHeader[] = "mbp-ledger v1";

StatusOr<double> ParseDouble(const std::string& token) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed number: '" + token + "'");
  }
  return value;
}

}  // namespace

Status TransactionLedger::Append(LedgerRecord record) {
  if (record.listing_id.empty() ||
      record.listing_id.find_first_of(" \t\n\r") != std::string::npos) {
    return InvalidArgumentError(
        "listing id must be non-empty without whitespace");
  }
  if (record.price < 0.0 || !std::isfinite(record.price)) {
    return InvalidArgumentError("price must be finite and non-negative");
  }
  if (!(record.ncp >= 0.0)) {
    return InvalidArgumentError("ncp must be non-negative");
  }
  records_.push_back(std::move(record));
  return Status::OK();
}

double TransactionLedger::TotalRevenue() const {
  double total = 0.0;
  for (const LedgerRecord& record : records_) total += record.price;
  return total;
}

double TransactionLedger::RevenueForListing(
    const std::string& listing_id) const {
  double total = 0.0;
  for (const LedgerRecord& record : records_) {
    if (record.listing_id == listing_id) total += record.price;
  }
  return total;
}

double TransactionLedger::BrokerCut(double rate) const {
  MBP_CHECK(rate >= 0.0 && rate <= 1.0) << "rate must be in [0, 1]";
  return rate * TotalRevenue();
}

Status TransactionLedger::SaveTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return InternalError("cannot open for writing: " + path);
  }
  out.precision(17);
  out << kHeader << "\n";
  for (const LedgerRecord& record : records_) {
    out << record.listing_id << " " << record.transaction_id << " "
        << record.ncp << " " << record.price << " " << record.quoted_error
        << "\n";
  }
  if (!out.good()) return InternalError("I/O error writing: " + path);
  return Status::OK();
}

StatusOr<TransactionLedger> TransactionLedger::LoadFrom(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line) ||
      (line != kHeader && line != std::string(kHeader) + "\r")) {
    return InvalidArgumentError("missing or wrong ledger header");
  }
  TransactionLedger ledger;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream row(line);
    LedgerRecord record;
    std::string id_token, ncp_token, price_token, error_token, extra;
    if (!(row >> record.listing_id >> id_token >> ncp_token >>
          price_token >> error_token) ||
        (row >> extra)) {
      return InvalidArgumentError("malformed ledger line " +
                                  std::to_string(line_number));
    }
    MBP_ASSIGN_OR_RETURN(double txn_id, ParseDouble(id_token));
    if (txn_id < 0 || txn_id != static_cast<uint64_t>(txn_id)) {
      return InvalidArgumentError("bad transaction id at line " +
                                  std::to_string(line_number));
    }
    record.transaction_id = static_cast<uint64_t>(txn_id);
    MBP_ASSIGN_OR_RETURN(record.ncp, ParseDouble(ncp_token));
    MBP_ASSIGN_OR_RETURN(record.price, ParseDouble(price_token));
    MBP_ASSIGN_OR_RETURN(record.quoted_error, ParseDouble(error_token));
    MBP_RETURN_IF_ERROR(ledger.Append(std::move(record)));
  }
  return ledger;
}

}  // namespace mbp::core

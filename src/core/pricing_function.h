#ifndef MBP_CORE_PRICING_FUNCTION_H_
#define MBP_CORE_PRICING_FUNCTION_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/statusor.h"

namespace mbp::core {

// Pricing functions are represented in x-space, x = 1/δ (the inverse NCP,
// equal to the Gaussian mechanism's inverse variance). Theorem 5/6: a
// pricing function is arbitrage-free iff p̄(x) = p(1/x) is monotone
// non-decreasing and subadditive over x ≥ 0.
class PricingFunction {
 public:
  virtual ~PricingFunction() = default;

  // Price at x = 1/δ. Defined for x >= 0 with PriceAtInverseNcp(0) == 0
  // conceptually (an infinitely noisy model is free).
  virtual double PriceAtInverseNcp(double x) const = 0;

  // Price at NCP δ > 0.
  double PriceAtNcp(double delta) const;
};

// One knot of a pricing curve: the price charged at x = 1/δ.
struct PricePoint {
  double x = 0.0;      // inverse NCP, > 0
  double price = 0.0;  // >= 0
};

// The canonical arbitrage-free representation (Proposition 1): linear from
// the origin to the first knot, linear between knots, constant after the
// last knot. When the knots satisfy the relaxed feasibility conditions of
// problem (4) — prices non-decreasing and price/x non-increasing — the
// extension is monotone and subadditive everywhere (Lemma 8 +
// Proposition 1), hence arbitrage-free for the Gaussian mechanism.
class PiecewiseLinearPricing final : public PricingFunction {
 public:
  // `points` must have strictly increasing x > 0 and prices >= 0.
  // Does NOT require the relaxed conditions — deliberately, so tests and
  // benches can also build broken pricing curves; call
  // ValidateArbitrageFree() to certify a curve before selling with it.
  static StatusOr<PiecewiseLinearPricing> Create(
      std::vector<PricePoint> points);

  double PriceAtInverseNcp(double x) const override;

  // OK iff prices are non-decreasing in x and price/x is non-increasing
  // (the sufficient-and-exact certificate for this piecewise-linear form).
  Status ValidateArbitrageFree() const;

  // Largest x whose price does not exceed `budget`, or +infinity when the
  // budget covers the whole curve (price is constant after the last knot).
  // Requires a monotone curve (ValidateArbitrageFree() == OK) and
  // budget >= 0. Used by the broker's price-budget purchase option.
  // O(log n): binary search over the (monotone) knot prices.
  double MaxInverseNcpForBudget(double budget) const;

  const std::vector<PricePoint>& points() const { return points_; }

 private:
  explicit PiecewiseLinearPricing(std::vector<PricePoint> points)
      : points_(std::move(points)) {}

  std::vector<PricePoint> points_;
};

namespace internal {

// The original O(n) budget inversion, kept verbatim as the oracle for the
// binary-search implementation in MaxInverseNcpForBudget. Test-only.
double MaxInverseNcpForBudgetLinearScan(const std::vector<PricePoint>& points,
                                        double budget);

}  // namespace internal

// --- Generic sampled property checkers -----------------------------------
//
// These operate on arbitrary price callables (not just the canonical form),
// sampling a uniform grid over (0, x_max]. They are used by tests, by the
// arbitrage demos, and to sanity-check baseline pricing schemes.

using PriceCallable = std::function<double(double)>;

// A pair x1 < x2 with price(x1) > price(x2) + tolerance.
struct MonotonicityViolation {
  double x1, x2;
  double price1, price2;
};

// A pair (x, y) with price(x + y) > price(x) + price(y) + tolerance.
struct SubadditivityViolation {
  double x, y;
  double price_sum;       // price(x) + price(y)
  double price_combined;  // price(x + y)
};

// The Lemma 9 construction: given any monotone subadditive pricing p̄
// sampled at the strictly increasing grid points `xs`, returns
//   q(x) = x * min_{y <= x, y in grid} p̄(y) / y,
// which is feasible for the relaxed problem (3) (q non-decreasing, q/x
// non-increasing, q >= 0) and satisfies p̄(x)/2 <= q(x) <= p̄(x) on the
// grid. This is the bridge the approximation guarantees of Propositions
// 2/3 are built on, exposed so sellers can convert an arbitrary
// well-behaved curve into relaxed-feasible knot prices.
std::vector<double> RelaxedMinorant(const PriceCallable& price,
                                    const std::vector<double>& xs);

std::optional<MonotonicityViolation> FindMonotonicityViolation(
    const PriceCallable& price, double x_max, size_t grid_size = 200,
    double tolerance = 1e-9);

std::optional<SubadditivityViolation> FindSubadditivityViolation(
    const PriceCallable& price, double x_max, size_t grid_size = 200,
    double tolerance = 1e-9);

// True iff no violation of either property is found on the grid.
bool IsArbitrageFreeOnGrid(const PriceCallable& price, double x_max,
                           size_t grid_size = 200, double tolerance = 1e-9);

}  // namespace mbp::core

#endif  // MBP_CORE_PRICING_FUNCTION_H_

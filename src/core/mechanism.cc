#include "core/mechanism.h"

#include <cmath>

#include "common/check.h"
#include "linalg/vector_ops.h"
#include "random/distributions.h"

namespace mbp::core {

double RandomizedMechanism::ExpectedSquaredNoise(double delta,
                                                 size_t dim) const {
  MBP_CHECK_GE(delta, 0.0);
  MBP_CHECK_GT(dim, 0u);
  return delta;
}

linalg::Vector GaussianMechanism::Perturb(const linalg::Vector& optimal,
                                          double delta,
                                          random::Rng& rng) const {
  MBP_CHECK_GE(delta, 0.0);
  MBP_CHECK_GT(optimal.size(), 0u);
  if (delta == 0.0) return optimal;
  const double stddev =
      std::sqrt(delta / static_cast<double>(optimal.size()));
  linalg::Vector noisy = optimal;
  for (size_t i = 0; i < noisy.size(); ++i) {
    noisy[i] += random::SampleNormal(rng, 0.0, stddev);
  }
  return noisy;
}

linalg::Vector LaplaceMechanism::Perturb(const linalg::Vector& optimal,
                                         double delta,
                                         random::Rng& rng) const {
  MBP_CHECK_GE(delta, 0.0);
  MBP_CHECK_GT(optimal.size(), 0u);
  if (delta == 0.0) return optimal;
  // Var(Laplace(0, b)) = 2 b^2, so b = sqrt(delta / (2d)) gives
  // E||w||^2 = d * 2 b^2 = delta.
  const double scale =
      std::sqrt(delta / (2.0 * static_cast<double>(optimal.size())));
  linalg::Vector noisy = optimal;
  for (size_t i = 0; i < noisy.size(); ++i) {
    noisy[i] += random::SampleLaplace(rng, 0.0, scale);
  }
  return noisy;
}

linalg::Vector UniformAdditiveMechanism::Perturb(
    const linalg::Vector& optimal, double delta, random::Rng& rng) const {
  MBP_CHECK_GE(delta, 0.0);
  MBP_CHECK_GT(optimal.size(), 0u);
  if (delta == 0.0) return optimal;
  // Var(U[-r, r]) = r^2 / 3, so r = sqrt(3 delta / d).
  const double radius =
      std::sqrt(3.0 * delta / static_cast<double>(optimal.size()));
  linalg::Vector noisy = optimal;
  for (size_t i = 0; i < noisy.size(); ++i) {
    noisy[i] += random::SampleUniform(rng, -radius, radius);
  }
  return noisy;
}

linalg::Vector UniformMultiplicativeMechanism::Perturb(
    const linalg::Vector& optimal, double delta, random::Rng& rng) const {
  MBP_CHECK_GE(delta, 0.0);
  MBP_CHECK_GT(optimal.size(), 0u);
  if (delta == 0.0) return optimal;
  const double norm_sq = linalg::SquaredNorm2(optimal);
  MBP_CHECK_GT(norm_sq, 0.0)
      << "multiplicative noise needs a non-zero model";
  // h_i -> h_i * u_i, u_i ~ U[1-r, 1+r]: per-coordinate variance
  // h_i^2 r^2 / 3, so r = sqrt(3 delta / ||h||^2) gives E||w||^2 = delta.
  const double radius = std::sqrt(3.0 * delta / norm_sq);
  linalg::Vector noisy = optimal;
  for (size_t i = 0; i < noisy.size(); ++i) {
    noisy[i] *= random::SampleUniform(rng, 1.0 - radius, 1.0 + radius);
  }
  return noisy;
}

std::unique_ptr<RandomizedMechanism> MakeMechanism(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kGaussian:
      return std::make_unique<GaussianMechanism>();
    case MechanismKind::kLaplace:
      return std::make_unique<LaplaceMechanism>();
    case MechanismKind::kUniformAdditive:
      return std::make_unique<UniformAdditiveMechanism>();
    case MechanismKind::kUniformMultiplicative:
      return std::make_unique<UniformMultiplicativeMechanism>();
  }
  MBP_CHECK(false) << "unknown MechanismKind";
  return nullptr;
}

}  // namespace mbp::core

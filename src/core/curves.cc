#include "core/curves.h"

#include <cmath>

namespace mbp::core {
namespace {

// Normalized value shape on t in [0, 1]; non-decreasing with f(0) ~ 0 and
// f(1) = 1.
double ValueAt(ValueShape shape, double t) {
  switch (shape) {
    case ValueShape::kLinear:
      return t;
    case ValueShape::kConvex:
      return std::pow(t, 2.5);
    case ValueShape::kConcave:
      return std::pow(t, 1.0 / 2.5);
    case ValueShape::kSigmoid: {
      // Logistic squashed to hit 0 and 1 exactly at the endpoints.
      const double raw = 1.0 / (1.0 + std::exp(-10.0 * (t - 0.5)));
      const double lo = 1.0 / (1.0 + std::exp(5.0));
      const double hi = 1.0 / (1.0 + std::exp(-5.0));
      return (raw - lo) / (hi - lo);
    }
  }
  return t;
}

// Unnormalized demand weight on t in [0, 1].
double DemandAt(DemandShape shape, double t) {
  const auto bump = [](double t, double center, double width) {
    const double z = (t - center) / width;
    return std::exp(-0.5 * z * z);
  };
  switch (shape) {
    case DemandShape::kUniform:
      return 1.0;
    case DemandShape::kMidPeaked:
      return bump(t, 0.5, 0.2);
    case DemandShape::kExtremes:
      return bump(t, 0.0, 0.15) + bump(t, 1.0, 0.15);
    case DemandShape::kHighAccuracy:
      return bump(t, 1.0, 0.25);
    case DemandShape::kLowAccuracy:
      return bump(t, 0.0, 0.25);
  }
  return 1.0;
}

}  // namespace

std::string ValueShapeToString(ValueShape shape) {
  switch (shape) {
    case ValueShape::kLinear:
      return "linear";
    case ValueShape::kConvex:
      return "convex";
    case ValueShape::kConcave:
      return "concave";
    case ValueShape::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

std::string DemandShapeToString(DemandShape shape) {
  switch (shape) {
    case DemandShape::kUniform:
      return "uniform";
    case DemandShape::kMidPeaked:
      return "mid_peaked";
    case DemandShape::kExtremes:
      return "extremes";
    case DemandShape::kHighAccuracy:
      return "high_accuracy";
    case DemandShape::kLowAccuracy:
      return "low_accuracy";
  }
  return "unknown";
}

StatusOr<std::vector<CurvePoint>> MakeMarketCurve(
    const MarketCurveOptions& options) {
  if (options.num_points < 2) {
    return InvalidArgumentError("curve needs at least 2 points");
  }
  if (!(options.x_min > 0.0) || options.x_max <= options.x_min) {
    return InvalidArgumentError("need 0 < x_min < x_max");
  }
  if (options.max_value <= 0.0) {
    return InvalidArgumentError("max_value must be positive");
  }

  const size_t n = options.num_points;
  std::vector<CurvePoint> curve(n);
  double total_demand = 0.0;
  // A small value floor keeps even the noisiest instance worth something,
  // matching the strictly positive value curves in the paper's figures.
  const double floor = 0.02 * options.max_value;
  for (size_t j = 0; j < n; ++j) {
    const double t = static_cast<double>(j) / static_cast<double>(n - 1);
    curve[j].x = options.x_min + t * (options.x_max - options.x_min);
    curve[j].value =
        floor + (options.max_value - floor) * ValueAt(options.value_shape, t);
    curve[j].demand = DemandAt(options.demand_shape, t);
    total_demand += curve[j].demand;
  }
  for (CurvePoint& point : curve) point.demand /= total_demand;
  return curve;
}

}  // namespace mbp::core

#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mbp::core {
namespace {

Status ValidateCurve(const std::vector<CurvePoint>& curve) {
  if (curve.empty()) return InvalidArgumentError("market curve is empty");
  double prev_x = 0.0;
  for (const CurvePoint& point : curve) {
    if (!(point.x > prev_x)) {
      return InvalidArgumentError("curve x must be strictly increasing > 0");
    }
    if (point.value < 0.0 || point.demand < 0.0) {
      return InvalidArgumentError("values and demands must be non-negative");
    }
    prev_x = point.x;
  }
  return Status::OK();
}

std::vector<double> LinearPrices(const std::vector<CurvePoint>& curve) {
  const size_t n = curve.size();
  std::vector<double> prices(n);
  if (n == 1) {
    prices[0] = curve[0].value;
    return prices;
  }
  const double x0 = curve.front().x;
  const double x1 = curve.back().x;
  const double v0 = curve.front().value;
  const double v1 = curve.back().value;
  for (size_t j = 0; j < n; ++j) {
    const double t = (curve[j].x - x0) / (x1 - x0);
    prices[j] = v0 + t * (v1 - v0);
  }
  return prices;
}

std::vector<double> ConstantPrices(const std::vector<CurvePoint>& curve,
                                   double price) {
  return std::vector<double>(curve.size(), price);
}

double MaxValuation(const std::vector<CurvePoint>& curve) {
  double max_value = 0.0;
  for (const CurvePoint& point : curve) {
    max_value = std::max(max_value, point.value);
  }
  return max_value;
}

// The largest single price that at least half of the (demand-weighted)
// buyer population can afford: the demand-weighted lower median of the
// valuations.
double MedianAffordablePrice(const std::vector<CurvePoint>& curve) {
  std::vector<std::pair<double, double>> by_value;  // (valuation, demand)
  double total = 0.0;
  for (const CurvePoint& point : curve) {
    by_value.emplace_back(point.value, point.demand);
    total += point.demand;
  }
  std::sort(by_value.begin(), by_value.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // Walk valuations from high to low until half the demand can afford.
  double covered = 0.0;
  for (const auto& [value, demand] : by_value) {
    covered += demand;
    if (covered >= 0.5 * total) return value;
  }
  return by_value.back().first;
}

// The single price maximizing revenue: scan candidate prices = valuations.
double OptimalConstantPrice(const std::vector<CurvePoint>& curve) {
  double best_price = 0.0;
  double best_revenue = -1.0;
  for (const CurvePoint& candidate : curve) {
    const double price = candidate.value;
    double revenue = 0.0;
    for (const CurvePoint& point : curve) {
      if (price <= point.value + 1e-9) revenue += point.demand * price;
    }
    if (revenue > best_revenue) {
      best_revenue = revenue;
      best_price = price;
    }
  }
  return best_price;
}

}  // namespace

std::string BaselineKindToString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kLinear:
      return "Lin";
    case BaselineKind::kMaxConstant:
      return "MaxC";
    case BaselineKind::kMedianConstant:
      return "MedC";
    case BaselineKind::kOptimalConstant:
      return "OptC";
  }
  return "unknown";
}

StatusOr<RevenueOptResult> PriceWithBaseline(
    BaselineKind kind, const std::vector<CurvePoint>& curve) {
  MBP_RETURN_IF_ERROR(ValidateCurve(curve));
  std::vector<double> prices;
  switch (kind) {
    case BaselineKind::kLinear:
      prices = LinearPrices(curve);
      break;
    case BaselineKind::kMaxConstant:
      prices = ConstantPrices(curve, MaxValuation(curve));
      break;
    case BaselineKind::kMedianConstant:
      prices = ConstantPrices(curve, MedianAffordablePrice(curve));
      break;
    case BaselineKind::kOptimalConstant:
      prices = ConstantPrices(curve, OptimalConstantPrice(curve));
      break;
  }
  RevenueOptResult result;
  result.prices = std::move(prices);
  result.revenue = RevenueOf(curve, result.prices);
  result.affordability = AffordabilityOf(curve, result.prices);
  return result;
}

std::vector<BaselineKind> AllBaselines() {
  return {BaselineKind::kLinear, BaselineKind::kMaxConstant,
          BaselineKind::kMedianConstant, BaselineKind::kOptimalConstant};
}

}  // namespace mbp::core

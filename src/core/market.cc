#include "core/market.h"

#include <algorithm>
#include <cmath>

#include "core/revenue_opt.h"
#include "linalg/vector_ops.h"
#include "ml/trainer.h"

namespace mbp::core {
namespace {

// The listing's model family must match the dataset's task.
Status ValidateListing(const ModelListing& listing,
                       const data::Dataset& train) {
  const bool classification =
      train.task() == data::TaskType::kBinaryClassification;
  switch (listing.model) {
    case ml::ModelKind::kLinearRegression:
      if (classification) {
        return InvalidArgumentError(
            "linear regression listed on a classification dataset");
      }
      break;
    case ml::ModelKind::kLogisticRegression:
    case ml::ModelKind::kLinearSvm:
      if (!classification) {
        return InvalidArgumentError(
            "classifier listed on a regression dataset");
      }
      break;
  }
  if (listing.l2 < 0.0) {
    return InvalidArgumentError("l2 must be non-negative");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Seller> Seller::Create(std::string name, data::TrainTestSplit data,
                                std::vector<CurvePoint> market_research) {
  if (market_research.empty()) {
    return InvalidArgumentError("seller needs market research curves");
  }
  if (data.train.num_features() != data.test.num_features()) {
    return InvalidArgumentError("train/test feature counts differ");
  }
  if (data.train.task() != data.test.task()) {
    return InvalidArgumentError("train/test task types differ");
  }
  return Seller(std::move(name), std::move(data),
                std::move(market_research));
}

Broker::Broker(Seller seller, ModelListing listing,
               ml::LinearModel optimal_model,
               std::unique_ptr<RandomizedMechanism> mechanism,
               std::unique_ptr<ErrorTransform> transform,
               PiecewiseLinearPricing pricing, uint64_t seed)
    : seller_(std::move(seller)),
      listing_(listing),
      optimal_model_(std::move(optimal_model)),
      mechanism_(std::move(mechanism)),
      transform_(std::move(transform)),
      pricing_(std::move(pricing)),
      rng_(seed) {}

namespace {

// The shared one-time setup of Section 4: train the optimal instance
// h*_λ(D) and build the error<->NCP transform for the listed buyer-facing
// ε over x = 1/δ in [x_lo, x_hi] (with margin). The instance's error is
// reported unregularized (ε measures predictive error, not the training
// objective).
struct BrokerSetup {
  ml::LinearModel model;
  std::unique_ptr<RandomizedMechanism> mechanism;
  std::unique_ptr<ErrorTransform> transform;
};

StatusOr<BrokerSetup> PrepareSetup(const Seller& seller,
                                   const ModelListing& listing,
                                   const Broker::Options& options,
                                   double x_lo, double x_hi) {
  MBP_RETURN_IF_ERROR(ValidateListing(listing, seller.train()));
  MBP_ASSIGN_OR_RETURN(
      ml::TrainResult trained,
      ml::TrainOptimalModel(listing.model, seller.train(), listing.l2));

  std::unique_ptr<RandomizedMechanism> mechanism =
      MakeMechanism(options.mechanism);

  const data::Dataset& eval =
      listing.evaluate_on_test ? seller.test() : seller.train();

  // Square-loss ε under isotropic noise has the exact closed-form
  // transform of Lemma 3's dataset generalization; prefer it when allowed.
  std::unique_ptr<ErrorTransform> transform;
  const bool isotropic =
      options.mechanism != MechanismKind::kUniformMultiplicative;
  if (listing.error_space == ErrorSpace::kModelSquare) {
    // Lemma 3: E[||ĥ - h*||²] = δ exactly (for every normalized
    // mechanism); the transform is the identity.
    transform = std::make_unique<SquareLossTransform>();
  } else if (options.prefer_analytic_square_transform && isotropic &&
             listing.test_error == ml::LossKind::kSquare) {
    MBP_ASSIGN_OR_RETURN(AnalyticSquareLossTransform analytic,
                         AnalyticSquareLossTransform::Build(
                             trained.model.coefficients(), eval));
    transform = std::make_unique<AnalyticSquareLossTransform>(analytic);
  } else {
    EmpiricalErrorTransform::BuildOptions transform_options =
        options.transform;
    transform_options.delta_min = 0.5 / x_hi;
    transform_options.delta_max = 2.0 / x_lo;
    transform_options.seed = options.seed ^ 0x9E3779B97F4A7C15ULL;
    std::unique_ptr<ml::Loss> epsilon =
        ml::MakeLoss(listing.test_error, 0.0);
    MBP_ASSIGN_OR_RETURN(
        EmpiricalErrorTransform empirical,
        EmpiricalErrorTransform::Build(*mechanism,
                                       trained.model.coefficients(),
                                       *epsilon, eval, transform_options));
    transform =
        std::make_unique<EmpiricalErrorTransform>(std::move(empirical));
  }
  return BrokerSetup{std::move(trained.model), std::move(mechanism),
                     std::move(transform)};
}

}  // namespace

StatusOr<Broker> Broker::Create(Seller seller, ModelListing listing) {
  return Create(std::move(seller), listing, Options{});
}

StatusOr<Broker> Broker::Create(Seller seller, ModelListing listing,
                                const Options& options) {
  // The δ range is derived from the market research so the transform
  // covers every quotable x = 1/δ.
  const std::vector<CurvePoint>& research = seller.market_research();
  MBP_ASSIGN_OR_RETURN(BrokerSetup setup,
                       PrepareSetup(seller, listing, options,
                                    research.front().x, research.back().x));

  // Revenue-optimize the pricing curve and certify arbitrage-freeness
  // (the market's SLA, Section 3.3).
  MBP_ASSIGN_OR_RETURN(RevenueOptResult optimized,
                       MaximizeRevenueDp(research));
  MBP_ASSIGN_OR_RETURN(PiecewiseLinearPricing pricing,
                       PricingFromKnots(research, optimized.prices));
  MBP_RETURN_IF_ERROR(pricing.ValidateArbitrageFree());

  return Broker(std::move(seller), listing, std::move(setup.model),
                std::move(setup.mechanism), std::move(setup.transform),
                std::move(pricing), options.seed);
}

StatusOr<Broker> Broker::CreateWithPricing(Seller seller,
                                           ModelListing listing,
                                           PiecewiseLinearPricing pricing,
                                           const Options& options) {
  MBP_RETURN_IF_ERROR(pricing.ValidateArbitrageFree());
  MBP_ASSIGN_OR_RETURN(
      BrokerSetup setup,
      PrepareSetup(seller, listing, options, pricing.points().front().x,
                   pricing.points().back().x));
  return Broker(std::move(seller), listing, std::move(setup.model),
                std::move(setup.mechanism), std::move(setup.transform),
                std::move(pricing), options.seed);
}

std::vector<QuotePoint> Broker::QuoteCurve(size_t num_points) const {
  MBP_CHECK_GE(num_points, 2u);
  const double x_lo = pricing_.points().front().x;
  const double x_hi = pricing_.points().back().x;
  std::vector<QuotePoint> quotes(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(num_points - 1);
    const double x = x_lo + t * (x_hi - x_lo);
    quotes[i].x = x;
    quotes[i].delta = 1.0 / x;
    quotes[i].expected_error = transform_->ExpectedError(quotes[i].delta);
    quotes[i].price = pricing_.PriceAtInverseNcp(x);
  }
  return quotes;
}

Transaction Broker::Sell(double delta) {
  MBP_CHECK_GE(delta, 0.0);
  // δ = 0 sells the optimal instance at the curve's cap price (the price
  // is constant past the last knot).
  Transaction txn{
      .id = next_transaction_id_++,
      .delta = delta,
      .price = (delta == 0.0) ? pricing_.points().back().price
                              : pricing_.PriceAtNcp(delta),
      .quoted_expected_error = transform_->ExpectedError(delta),
      .instance = ml::LinearModel(
          listing_.model,
          mechanism_->Perturb(optimal_model_.coefficients(), delta, rng_))};
  total_revenue_ += txn.price;
  transactions_.push_back(txn);
  return txn;
}

StatusOr<Transaction> Broker::BuyAtNcp(double delta) {
  if (!(delta > 0.0) || !std::isfinite(delta)) {
    return InvalidArgumentError("delta must be positive and finite");
  }
  return Sell(delta);
}

StatusOr<Transaction> Broker::BuyWithErrorBudget(double error_budget) {
  if (error_budget < transform_->MinError()) {
    return InfeasibleError(
        "error budget is below the optimal instance's error");
  }
  const double delta = transform_->DeltaForError(error_budget);
  return Sell(delta);
}

StatusOr<Transaction> Broker::BuyWithPriceBudget(double price_budget) {
  if (price_budget < 0.0) {
    return InvalidArgumentError("price budget must be non-negative");
  }
  double x = pricing_.MaxInverseNcpForBudget(price_budget);
  if (std::isinf(x)) {
    return Sell(0.0);  // budget covers the whole curve: optimal instance
  }
  // A tiny budget maps to a tiny x (enormous noise); floor it so δ stays
  // finite. The charged price never exceeds the budget.
  const double x_floor = pricing_.points().front().x * 1e-3;
  x = std::max(x, x_floor);
  return Sell(1.0 / x);
}

Status Broker::RefreshPricing(const std::vector<CurvePoint>& research) {
  if (research.empty()) {
    return InvalidArgumentError("empty market research");
  }
  const double covered_lo = pricing_.points().front().x;
  const double covered_hi = pricing_.points().back().x;
  if (research.front().x + 1e-9 < covered_lo ||
      research.back().x > covered_hi + 1e-9) {
    return InvalidArgumentError(
        "new research x range exceeds the error transform's coverage; "
        "create a new broker for a wider quality range");
  }
  MBP_ASSIGN_OR_RETURN(RevenueOptResult optimized,
                       MaximizeRevenueDp(research));
  MBP_ASSIGN_OR_RETURN(PiecewiseLinearPricing pricing,
                       PricingFromKnots(research, optimized.prices));
  MBP_RETURN_IF_ERROR(pricing.ValidateArbitrageFree());
  pricing_ = std::move(pricing);
  return Status::OK();
}

Status Broker::VerifySla(size_t trials, double relative_tolerance) const {
  if (trials == 0) return InvalidArgumentError("trials must be positive");
  if (!(relative_tolerance > 0.0)) {
    return InvalidArgumentError("relative_tolerance must be positive");
  }
  const std::unique_ptr<ml::Loss> epsilon =
      ml::MakeLoss(listing_.test_error, 0.0);
  const data::Dataset& eval =
      listing_.evaluate_on_test ? seller_.test() : seller_.train();
  const linalg::Vector& optimal = optimal_model_.coefficients();
  const size_t d = optimal.size();
  const auto measure_error = [&](const linalg::Vector& h) {
    if (listing_.error_space == ErrorSpace::kModelSquare) {
      return linalg::SquaredDistance(h, optimal);
    }
    return epsilon->Evaluate(h, eval);
  };

  // Probe three quality levels spanning the quotable range.
  const double x_lo = pricing_.points().front().x;
  const double x_hi = pricing_.points().back().x;
  for (double x : {x_lo, std::sqrt(x_lo * x_hi), x_hi}) {
    const double delta = 1.0 / x;
    random::Rng audit_rng(0xA0D17ULL + static_cast<uint64_t>(x * 1e6));
    linalg::Vector mean(d);
    double mean_error = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      const linalg::Vector noisy =
          mechanism_->Perturb(optimal, delta, audit_rng);
      for (size_t j = 0; j < d; ++j) {
        mean[j] += noisy[j] / static_cast<double>(trials);
      }
      mean_error += measure_error(noisy) / static_cast<double>(trials);
    }
    // Clause 1: unbiasedness. The mean-of-trials noise has per-coordinate
    // stddev sqrt(delta / (d * trials)); allow 6 sigma.
    const double allowed_bias =
        6.0 * std::sqrt(delta / (static_cast<double>(d) *
                                 static_cast<double>(trials)));
    for (size_t j = 0; j < d; ++j) {
      if (std::fabs(mean[j] - optimal[j]) > allowed_bias) {
        return FailedPreconditionError(
            "SLA violation: mechanism biased at coordinate " +
            std::to_string(j));
      }
    }
    // Clause 2: the quoted expected error is honest.
    const double quoted = transform_->ExpectedError(delta);
    if (std::fabs(mean_error - quoted) >
        relative_tolerance * (std::fabs(quoted) + 1e-9)) {
      return FailedPreconditionError(
          "SLA violation: measured error " + std::to_string(mean_error) +
          " deviates from quoted " + std::to_string(quoted) +
          " at NCP " + std::to_string(delta));
    }
  }
  return Status::OK();
}

StatusOr<Transaction> Buyer::Purchase(Broker& broker,
                                      const BuyerRequest& request) {
  // Pre-compute the price so the wallet check happens before the sale is
  // recorded on the broker's books.
  double price = 0.0;
  switch (request.mode) {
    case BuyerRequest::Mode::kAtNcp:
      if (!(request.parameter > 0.0)) {
        return InvalidArgumentError("NCP must be positive");
      }
      price = broker.pricing().PriceAtNcp(request.parameter);
      break;
    case BuyerRequest::Mode::kErrorBudget: {
      if (request.parameter < broker.error_transform().MinError()) {
        return InfeasibleError("error budget below optimal error");
      }
      const double delta =
          broker.error_transform().DeltaForError(request.parameter);
      price = (delta == 0.0) ? broker.pricing().points().back().price
                             : broker.pricing().PriceAtNcp(delta);
      break;
    }
    case BuyerRequest::Mode::kPriceBudget:
      price = std::min(request.parameter, wallet_);
      break;
  }
  if (price > wallet_) {
    return FailedPreconditionError(name_ + " cannot afford price " +
                                   std::to_string(price));
  }

  StatusOr<Transaction> txn = [&]() -> StatusOr<Transaction> {
    switch (request.mode) {
      case BuyerRequest::Mode::kAtNcp:
        return broker.BuyAtNcp(request.parameter);
      case BuyerRequest::Mode::kErrorBudget:
        return broker.BuyWithErrorBudget(request.parameter);
      case BuyerRequest::Mode::kPriceBudget:
        return broker.BuyWithPriceBudget(
            std::min(request.parameter, wallet_));
    }
    return InvalidArgumentError("unknown purchase mode");
  }();
  if (!txn.ok()) return txn;
  wallet_ -= txn->price;
  return txn;
}

}  // namespace mbp::core

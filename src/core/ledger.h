#ifndef MBP_CORE_LEDGER_H_
#define MBP_CORE_LEDGER_H_

// Append-only audit books for the marketplace: every completed sale as a
// flat record, with text persistence so books survive process restarts
// and can be inspected/diffed with standard tools. The broker-seller
// settlement (the broker "gets a cut from the seller for each sale",
// Figure 1) is computed from these records.

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace mbp::core {

struct LedgerRecord {
  std::string listing_id;  // which listing sold (no spaces allowed)
  uint64_t transaction_id = 0;
  double ncp = 0.0;
  double price = 0.0;
  double quoted_error = 0.0;
};

class TransactionLedger {
 public:
  TransactionLedger() = default;

  // Appends one sale. InvalidArgument for empty/whitespace listing ids or
  // negative prices.
  Status Append(LedgerRecord record);

  const std::vector<LedgerRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  double TotalRevenue() const;

  // Revenue booked against one listing id.
  double RevenueForListing(const std::string& listing_id) const;

  // The broker's commission at the given rate in [0, 1]; the remainder is
  // owed to sellers.
  double BrokerCut(double rate) const;

  // Persistence: "mbp-ledger v1" header, then one
  // "<listing> <txn-id> <ncp> <price> <quoted-error>" line per record.
  Status SaveTo(const std::string& path) const;
  static StatusOr<TransactionLedger> LoadFrom(const std::string& path);

 private:
  std::vector<LedgerRecord> records_;
};

}  // namespace mbp::core

#endif  // MBP_CORE_LEDGER_H_

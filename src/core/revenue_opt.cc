#include "core/revenue_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mbp::core {
namespace {

constexpr double kPriceTolerance = 1e-9;

Status ValidateCurve(const std::vector<CurvePoint>& curve) {
  if (curve.empty()) {
    return InvalidArgumentError("market curve is empty");
  }
  double prev_x = 0.0;
  double prev_value = -1.0;
  for (const CurvePoint& point : curve) {
    if (!(point.x > prev_x)) {
      return InvalidArgumentError("curve x must be strictly increasing > 0");
    }
    if (point.value < 0.0 || point.demand < 0.0) {
      return InvalidArgumentError("values and demands must be non-negative");
    }
    if (point.value + kPriceTolerance < prev_value) {
      return InvalidArgumentError(
          "valuations must be non-decreasing in x (the paper's monotone "
          "buyer-valuation assumption)");
    }
    prev_x = point.x;
    prev_value = std::max(prev_value, point.value);
  }
  return Status::OK();
}

}  // namespace

double RevenueOf(const std::vector<CurvePoint>& curve,
                 const std::vector<double>& prices) {
  MBP_CHECK_EQ(curve.size(), prices.size());
  double revenue = 0.0;
  for (size_t j = 0; j < curve.size(); ++j) {
    if (prices[j] <= curve[j].value + kPriceTolerance) {
      revenue += curve[j].demand * prices[j];
    }
  }
  return revenue;
}

double AffordabilityOf(const std::vector<CurvePoint>& curve,
                       const std::vector<double>& prices) {
  MBP_CHECK_EQ(curve.size(), prices.size());
  double affordable = 0.0;
  double total = 0.0;
  for (size_t j = 0; j < curve.size(); ++j) {
    total += curve[j].demand;
    if (prices[j] <= curve[j].value + kPriceTolerance) {
      affordable += curve[j].demand;
    }
  }
  return total > 0.0 ? affordable / total : 0.0;
}

StatusOr<RevenueOptResult> MaximizeRevenueDp(
    const std::vector<CurvePoint>& curve) {
  MBP_RETURN_IF_ERROR(ValidateCurve(curve));
  const size_t n = curve.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Candidate slope caps Δ: v_j / a_j for each j, plus +infinity
  // (Theorem 10: the recursion only ever visits these values).
  std::vector<double> caps(n + 1);
  for (size_t j = 0; j < n; ++j) caps[j] = curve[j].value / curve[j].x;
  caps[n] = kInf;

  // opt[k, t]: max revenue from points k..n-1 with prices constrained by
  // z_j <= caps[t] * a_j for all j >= k. Branch choices are recorded so the
  // price vector can be reconstructed. Both tables are single contiguous
  // n x (n+1) buffers (row k holds all caps t), keeping the O(n^2) inner
  // loop on one allocation and one cache stream.
  enum class Branch : uint8_t { kSlopeCapped, kSellAtValue, kSkip };
  const size_t stride = n + 1;
  std::vector<double> opt(n * stride, 0.0);
  std::vector<Branch> branch(n * stride, Branch::kSlopeCapped);

  {
    // Base case k = n-1 (Lemma: s_n = min(v_n, Δ a_n)).
    double* opt_last = opt.data() + (n - 1) * stride;
    Branch* branch_last = branch.data() + (n - 1) * stride;
    for (size_t t = 0; t <= n; ++t) {
      const double price =
          std::min(curve[n - 1].value, caps[t] * curve[n - 1].x);
      opt_last[t] = curve[n - 1].demand * price;
      branch_last[t] = (caps[t] * curve[n - 1].x <= curve[n - 1].value)
                           ? Branch::kSlopeCapped
                           : Branch::kSellAtValue;
    }
  }

  for (size_t k = n - 1; k-- > 0;) {
    double* opt_k = opt.data() + k * stride;
    Branch* branch_k = branch.data() + k * stride;
    const double* opt_next = opt_k + stride;
    for (size_t t = 0; t <= n; ++t) {
      const double capped_price = caps[t] * curve[k].x;
      if (capped_price <= curve[k].value) {
        // Lemma 12: the cap binds below the valuation; charge the cap.
        opt_k[t] = curve[k].demand * capped_price + opt_next[t];
        branch_k[t] = Branch::kSlopeCapped;
      } else {
        // Lemma 13: either sell at v_k (tightening the cap to v_k/a_k = caps[k])
        // or price k out of the market and keep the cap.
        const double sell = curve[k].demand * curve[k].value + opt_next[k];
        const double skip = opt_next[t];
        if (sell >= skip) {
          opt_k[t] = sell;
          branch_k[t] = Branch::kSellAtValue;
        } else {
          opt_k[t] = skip;
          branch_k[t] = Branch::kSkip;
        }
      }
    }
  }

  // Reconstruct prices: forward pass to pick branches, then a backward pass
  // to resolve kSkip prices (z_k = z_{k+1} * a_k / a_{k+1}).
  std::vector<Branch> chosen(n);
  std::vector<size_t> cap_at(n);
  size_t t = n;  // start unconstrained (Δ = +inf)
  for (size_t k = 0; k < n; ++k) {
    chosen[k] = branch[k * stride + t];
    cap_at[k] = t;
    if (chosen[k] == Branch::kSellAtValue && k + 1 < n) t = k;
  }
  std::vector<double> prices(n, 0.0);
  for (size_t k = n; k-- > 0;) {
    switch (chosen[k]) {
      case Branch::kSlopeCapped:
        prices[k] = caps[cap_at[k]] * curve[k].x;
        break;
      case Branch::kSellAtValue:
        prices[k] = curve[k].value;
        break;
      case Branch::kSkip:
        MBP_CHECK_LT(k + 1, n);
        prices[k] = prices[k + 1] * curve[k].x / curve[k + 1].x;
        break;
    }
  }

  RevenueOptResult result;
  result.prices = std::move(prices);
  result.revenue = RevenueOf(curve, result.prices);
  result.affordability = AffordabilityOf(curve, result.prices);
  // The DP value and the realized revenue must agree.
  MBP_CHECK(std::fabs(result.revenue - opt[n]) <=
            1e-6 * (1.0 + std::fabs(result.revenue)))
      << "DP value " << opt[n] << " != realized " << result.revenue;
  return result;
}

StatusOr<PiecewiseLinearPricing> PricingFromKnots(
    const std::vector<CurvePoint>& curve,
    const std::vector<double>& prices) {
  if (curve.size() != prices.size()) {
    return InvalidArgumentError("curve/prices size mismatch");
  }
  std::vector<PricePoint> points(curve.size());
  for (size_t j = 0; j < curve.size(); ++j) {
    points[j] = PricePoint{curve[j].x, prices[j]};
  }
  return PiecewiseLinearPricing::Create(std::move(points));
}

}  // namespace mbp::core

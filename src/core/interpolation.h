#ifndef MBP_CORE_INTERPOLATION_H_
#define MBP_CORE_INTERPOLATION_H_

#include <vector>

#include "common/statusor.h"

namespace mbp::core {

// Price interpolation (Section 5, objectives T^2_pi and T^inf_pi): the
// seller supplies target prices P_j at parameter points a_j, and wants the
// feasible (arbitrage-free by Lemma 8) prices z_j under the relaxed
// constraints of problem (4):
//   z_j / a_j non-increasing,  z_j non-decreasing,  z_j >= 0,
// closest to the targets.

// One target: desired price P at parameter a (= 1/NCP).
struct InterpolationPoint {
  double a = 0.0;  // > 0, strictly increasing across the input
  double target_price = 0.0;  // P_j >= 0
};

struct InterpolationResult {
  std::vector<double> prices;  // fitted z_j
  double objective = 0.0;      // sum of losses sum_j l(z_j, P_j)
  size_t iterations = 0;       // solver iterations actually used
};

struct DykstraOptions {
  size_t max_iterations = 10000;
  double tolerance = 1e-10;  // max coordinate change per sweep
};

// T^2_pi (squared loss): minimizes sum_j (z_j - P_j)^2 over (4).
// The feasible region is the intersection of three convex cones (monotone
// cone, ratio cone, non-negative orthant); Dykstra's alternating-projection
// algorithm with weighted isotonic-regression sub-steps converges to the
// exact Euclidean projection.
StatusOr<InterpolationResult> InterpolateSquaredLoss(
    const std::vector<InterpolationPoint>& points,
    const DykstraOptions& options = {});

// T^inf_pi (absolute loss): minimizes sum_j |z_j - P_j| over (4), solved
// exactly as a linear program by the bundled simplex.
StatusOr<InterpolationResult> InterpolateAbsoluteLoss(
    const std::vector<InterpolationPoint>& points);

}  // namespace mbp::core

#endif  // MBP_CORE_INTERPOLATION_H_

#ifndef MBP_CORE_CURVES_H_
#define MBP_CORE_CURVES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace mbp::core {

// One market-research sample (Figure 2a, transformed to x-space): at
// x = 1/NCP, prospective buyers attach monetary value `value` to a model
// instance of that quality, and `demand` is the fraction of the buyer
// population interested in exactly that quality level.
struct CurvePoint {
  double x = 0.0;       // inverse NCP, > 0, strictly increasing
  double value = 0.0;   // buyer valuation v_j >= 0
  double demand = 0.0;  // buyer mass b_j >= 0 (sums to 1 across the curve)
};

// Value-curve shapes used across Figures 7-10. Values are non-decreasing
// in x (more accurate models are worth at least as much).
enum class ValueShape {
  kLinear,
  kConvex,   // value stays low until high accuracy (Fig. 7a)
  kConcave,  // value rises quickly then saturates (Fig. 7b)
  kSigmoid,  // slow-fast-slow
};

// Demand-curve shapes: where buyer interest concentrates.
enum class DemandShape {
  kUniform,
  kMidPeaked,        // most buyers want medium accuracy (Fig. 8a)
  kExtremes,         // bimodal: very low and very high accuracy (Fig. 8b)
  kHighAccuracy,     // mass concentrated at large x
  kLowAccuracy,      // mass concentrated at small x
};

std::string ValueShapeToString(ValueShape shape);
std::string DemandShapeToString(DemandShape shape);

struct MarketCurveOptions {
  size_t num_points = 10;
  double x_min = 10.0;
  double x_max = 100.0;
  double max_value = 100.0;
  ValueShape value_shape = ValueShape::kLinear;
  DemandShape demand_shape = DemandShape::kUniform;
};

// Builds the market-research curve: `num_points` equally spaced x values in
// [x_min, x_max], a value curve of the requested shape scaled to
// [~0, max_value], and a demand curve normalized to sum to 1.
StatusOr<std::vector<CurvePoint>> MakeMarketCurve(
    const MarketCurveOptions& options);

}  // namespace mbp::core

#endif  // MBP_CORE_CURVES_H_

#include "core/demand_estimation.h"

#include <algorithm>
#include <cmath>

#include "optim/pava.h"

namespace mbp::core {
namespace {

// Index of the grid level closest to x, or npos if outside tolerance.
size_t MatchLevel(double x, const std::vector<double>& grid,
                  double tolerance_fraction) {
  size_t best = grid.size();
  double best_distance = 0.0;
  for (size_t j = 0; j < grid.size(); ++j) {
    const double distance = std::fabs(x - grid[j]);
    if (best == grid.size() || distance < best_distance) {
      best = j;
      best_distance = distance;
    }
  }
  // Spacing around the matched level.
  const double spacing =
      grid.size() == 1
          ? grid[0]
          : (best + 1 < grid.size() ? grid[best + 1] - grid[best]
                                    : grid[best] - grid[best - 1]);
  if (best_distance > tolerance_fraction * spacing) return grid.size();
  return best;
}

}  // namespace

StatusOr<std::vector<CurvePoint>> EstimateCurveFromLedger(
    const TransactionLedger& ledger, const std::vector<double>& x_grid,
    const DemandEstimationOptions& options) {
  if (x_grid.empty()) return InvalidArgumentError("empty x grid");
  double prev = 0.0;
  for (double x : x_grid) {
    if (!(x > prev)) {
      return InvalidArgumentError("x grid must be strictly increasing > 0");
    }
    prev = x;
  }
  if (!(options.match_tolerance > 0.0)) {
    return InvalidArgumentError("match_tolerance must be positive");
  }

  const size_t n = x_grid.size();
  std::vector<size_t> sales(n, 0);
  std::vector<double> max_price(n, -1.0);  // -1 = unobserved
  size_t matched = 0;
  for (const LedgerRecord& record : ledger.records()) {
    if (!(record.ncp > 0.0)) continue;  // δ = 0 (optimal model) has x = inf
    const size_t level =
        MatchLevel(1.0 / record.ncp, x_grid, options.match_tolerance);
    if (level == n) continue;
    ++matched;
    ++sales[level];
    max_price[level] = std::max(max_price[level], record.price);
  }
  if (matched == 0) {
    return FailedPreconditionError(
        "no ledger records map onto the given x grid");
  }

  // Fill unobserved levels by linear interpolation between observed
  // neighbors (clamped at the ends), then smooth with an isotonic fit
  // weighted by sales counts so well-observed levels dominate.
  std::vector<double> values(n, 0.0);
  std::vector<double> weights(n, 0.0);
  // Forward/backward nearest observed indices.
  size_t last_observed = n;
  for (size_t j = 0; j < n; ++j) {
    if (max_price[j] >= 0.0) {
      values[j] = max_price[j];
      weights[j] = static_cast<double>(sales[j]);
      last_observed = j;
    }
  }
  MBP_CHECK_LT(last_observed, n);
  // Interpolate gaps.
  size_t prev_observed = n;
  for (size_t j = 0; j < n; ++j) {
    if (max_price[j] >= 0.0) {
      prev_observed = j;
      continue;
    }
    // Find next observed.
    size_t next_observed = n;
    for (size_t k = j + 1; k < n; ++k) {
      if (max_price[k] >= 0.0) {
        next_observed = k;
        break;
      }
    }
    if (prev_observed == n) {
      values[j] = max_price[next_observed] * x_grid[j] /
                  x_grid[next_observed];  // scale down toward the origin
    } else if (next_observed == n) {
      values[j] = max_price[prev_observed];
    } else {
      const double t = (x_grid[j] - x_grid[prev_observed]) /
                       (x_grid[next_observed] - x_grid[prev_observed]);
      values[j] = max_price[prev_observed] +
                  t * (max_price[next_observed] - max_price[prev_observed]);
    }
    weights[j] = 0.25;  // weak prior weight for interpolated levels
  }
  values = optim::IsotonicNonDecreasing(values, weights);

  // Demand: sales share with a floor for unseen levels.
  std::vector<CurvePoint> curve(n);
  double total = 0.0;
  for (size_t j = 0; j < n; ++j) {
    curve[j].x = x_grid[j];
    curve[j].value = values[j];
    curve[j].demand = static_cast<double>(sales[j]) +
                      options.unseen_demand_floor * matched;
    total += curve[j].demand;
  }
  for (CurvePoint& point : curve) point.demand /= total;
  return curve;
}

}  // namespace mbp::core

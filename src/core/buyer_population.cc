#include "core/buyer_population.h"

#include <cmath>

namespace mbp::core {

StatusOr<PopulationOutcome> SimulateBuyerPopulation(
    Broker& broker, const std::vector<CurvePoint>& curve,
    const PopulationOptions& options, random::Rng& rng) {
  if (curve.empty()) return InvalidArgumentError("empty market curve");
  if (options.num_buyers == 0) {
    return InvalidArgumentError("num_buyers must be positive");
  }
  if (options.valuation_jitter < 0.0 || options.valuation_jitter >= 1.0) {
    return InvalidArgumentError("valuation_jitter must be in [0, 1)");
  }
  double total_demand = 0.0;
  for (const CurvePoint& point : curve) {
    if (point.demand < 0.0) {
      return InvalidArgumentError("negative demand weight");
    }
    total_demand += point.demand;
  }
  if (!(total_demand > 0.0)) {
    return InvalidArgumentError("demand weights must sum to > 0");
  }

  PopulationOutcome outcome;
  outcome.buyers = options.num_buyers;

  // Expected per-buyer revenue/affordability implied by the posted curve
  // (jitter-free): sum_j (b_j / B) * price_j * 1[price_j <= v_j].
  for (const CurvePoint& point : curve) {
    const double posted = broker.pricing().PriceAtInverseNcp(point.x);
    if (posted <= point.value + 1e-9) {
      outcome.expected_revenue_per_buyer +=
          point.demand / total_demand * posted;
      outcome.expected_affordability += point.demand / total_demand;
    }
  }

  for (size_t b = 0; b < outcome.buyers; ++b) {
    // Sample a quality level from the demand distribution.
    double u = rng.NextDouble() * total_demand;
    size_t level = 0;
    for (; level + 1 < curve.size(); ++level) {
      if (u < curve[level].demand) break;
      u -= curve[level].demand;
    }
    double valuation = curve[level].value;
    if (options.valuation_jitter > 0.0) {
      valuation *= 1.0 + rng.NextDouble(-options.valuation_jitter,
                                        options.valuation_jitter);
    }
    const double posted =
        broker.pricing().PriceAtInverseNcp(curve[level].x);
    if (posted <= valuation + 1e-9) {
      MBP_ASSIGN_OR_RETURN(Transaction txn,
                           broker.BuyAtNcp(1.0 / curve[level].x));
      outcome.revenue += txn.price;
      ++outcome.sales;
    } else {
      ++outcome.priced_out;
    }
  }
  outcome.affordability = static_cast<double>(outcome.sales) /
                          static_cast<double>(outcome.buyers);
  return outcome;
}

}  // namespace mbp::core

#include "core/privacy.h"

#include <cmath>
#include <vector>

namespace mbp::core {
namespace {

Status ValidateCommon(size_t dim, double l2_sensitivity, double delta_dp) {
  if (dim == 0) return InvalidArgumentError("dim must be positive");
  if (!(l2_sensitivity > 0.0)) {
    return InvalidArgumentError("l2_sensitivity must be positive");
  }
  if (!(delta_dp > 0.0 && delta_dp < 1.0)) {
    return InvalidArgumentError("delta_dp must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

StatusOr<DpGuarantee> GaussianMechanismPrivacy(double ncp, size_t dim,
                                               double l2_sensitivity,
                                               double delta_dp) {
  MBP_RETURN_IF_ERROR(ValidateCommon(dim, l2_sensitivity, delta_dp));
  if (!(ncp > 0.0)) return InvalidArgumentError("ncp must be positive");
  const double sigma = std::sqrt(ncp / static_cast<double>(dim));
  DpGuarantee guarantee;
  guarantee.delta_dp = delta_dp;
  guarantee.epsilon =
      l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / delta_dp)) / sigma;
  return guarantee;
}

StatusOr<double> NcpForPrivacy(double epsilon, double delta_dp, size_t dim,
                               double l2_sensitivity) {
  MBP_RETURN_IF_ERROR(ValidateCommon(dim, l2_sensitivity, delta_dp));
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("epsilon must be positive");
  }
  // sigma = sensitivity * sqrt(2 ln(1.25/delta_dp)) / epsilon, and
  // ncp = d * sigma^2.
  const double sigma = l2_sensitivity *
                       std::sqrt(2.0 * std::log(1.25 / delta_dp)) / epsilon;
  return static_cast<double>(dim) * sigma * sigma;
}

StatusOr<DpGuarantee> PortfolioPrivacy(const std::vector<double>& ncps,
                                       size_t dim, double l2_sensitivity,
                                       double delta_dp) {
  if (ncps.empty()) {
    return InvalidArgumentError("portfolio must not be empty");
  }
  double total_precision = 0.0;
  for (double ncp : ncps) {
    if (!(ncp > 0.0)) {
      return InvalidArgumentError("every NCP must be positive");
    }
    total_precision += 1.0 / ncp;
  }
  return GaussianMechanismPrivacy(1.0 / total_precision, dim,
                                  l2_sensitivity, delta_dp);
}

StatusOr<double> ErmL2Sensitivity(double lipschitz, double l2, size_t n) {
  if (!(lipschitz > 0.0)) {
    return InvalidArgumentError("lipschitz must be positive");
  }
  if (!(l2 > 0.0)) {
    return InvalidArgumentError(
        "sensitivity bound requires strictly convex (l2 > 0) training");
  }
  if (n == 0) return InvalidArgumentError("n must be positive");
  return lipschitz / (l2 * static_cast<double>(n));
}

}  // namespace mbp::core

#ifndef MBP_CORE_ARBITRAGE_H_
#define MBP_CORE_ARBITRAGE_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "core/market.h"
#include "core/pricing_function.h"
#include "linalg/vector.h"

namespace mbp::core {

// Tools that play the attacker of Definition 3 (k-arbitrage): buy several
// cheap noisy instances and combine them into one better instance. For the
// Gaussian mechanism the optimal unbiased combiner is inverse-variance
// weighting, and the combined instance's effective NCP is
// 1 / sum_i (1/δ_i) — exactly the quantity Theorem 5's conditions guard.

// A discovered arbitrage opportunity against a pricing function.
struct ArbitrageAttack {
  // NCPs of the instances the attacker buys.
  std::vector<double> purchase_deltas;
  double total_price = 0.0;     // what the attacker pays in total
  double combined_delta = 0.0;  // effective NCP of the combined instance
  double target_delta = 0.0;    // the instance being undercut
  double target_price = 0.0;    // what the market charges for the target
};

// Searches for a k-arbitrage opportunity against `price` (given in x-space,
// x = 1/δ) over a uniform grid of `grid_size` points on (0, x_max]: is
// there a target x0 and a multiset of grid points with total x >= x0 and
// total price < price(x0)? Runs the unbounded-knapsack cheapest-cover DP,
// O(grid_size^2). Returns nullopt when the function is arbitrage-safe on
// the grid (which Theorem 5 guarantees for monotone subadditive curves).
std::optional<ArbitrageAttack> FindArbitrageAttack(
    const PriceCallable& price, double x_max, size_t grid_size = 200,
    double tolerance = 1e-6);

// Outcome of EXECUTING an arbitrage attack against a live broker: what
// the attacker actually paid, what the market charges for the target, and
// the measured quality of the combined instance versus a directly
// purchased target instance.
struct ExecutedAttack {
  double total_paid = 0.0;      // sum of the attacker's purchase prices
  double target_price = 0.0;    // posted price of the undercut instance
  double combined_error = 0.0;  // ε of the combined instance
  double target_error = 0.0;    // quoted expected ε of the target
  linalg::Vector combined_instance;
};

// Carries out `attack` against `broker` for real: buys every instance in
// attack.purchase_deltas (the broker's books advance), combines them with
// inverse-variance weights, and evaluates the buyer-facing ε of the
// result on the broker's evaluation dataset. Used to demonstrate
// Definition 3 end-to-end and to verify that certified pricing makes such
// attacks unprofitable.
StatusOr<ExecutedAttack> ExecuteArbitrageAttack(Broker& broker,
                                                const ArbitrageAttack& attack);

// The attacker's combiner g: inverse-variance weighted average of
// purchased instances. Unbiased whenever each instance is unbiased.
// Requires instances.size() == deltas.size() >= 1, all deltas > 0.
linalg::Vector CombineInstances(
    const std::vector<linalg::Vector>& instances,
    const std::vector<double>& deltas);

// Effective NCP of the combined instance: 1 / sum_i (1/δ_i).
double CombinedDelta(const std::vector<double>& deltas);

}  // namespace mbp::core

#endif  // MBP_CORE_ARBITRAGE_H_

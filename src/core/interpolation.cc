#include "core/interpolation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "optim/pava.h"
#include "optim/simplex.h"

namespace mbp::core {
namespace {

Status ValidatePoints(const std::vector<InterpolationPoint>& points) {
  if (points.empty()) {
    return InvalidArgumentError("need at least one interpolation point");
  }
  double prev_a = 0.0;
  for (const InterpolationPoint& point : points) {
    if (!(point.a > prev_a)) {
      return InvalidArgumentError("a must be strictly increasing > 0");
    }
    if (point.target_price < 0.0) {
      return InvalidArgumentError("target prices must be non-negative");
    }
    prev_a = point.a;
  }
  return Status::OK();
}

// Projection onto the monotone non-decreasing cone.
std::vector<double> ProjectMonotone(const std::vector<double>& y) {
  return optim::IsotonicNonDecreasing(y);
}

// Projection onto { z : z_j / a_j non-increasing }: substitute r = z/a,
// giving a weighted isotonic problem with weights a_j^2.
std::vector<double> ProjectRatio(const std::vector<double>& y,
                                 const std::vector<double>& a,
                                 std::vector<double>& scratch_ratio,
                                 std::vector<double>& scratch_weight) {
  const size_t n = y.size();
  scratch_ratio.resize(n);
  scratch_weight.resize(n);
  for (size_t j = 0; j < n; ++j) {
    scratch_ratio[j] = y[j] / a[j];
    scratch_weight[j] = a[j] * a[j];
  }
  std::vector<double> fit =
      optim::IsotonicNonIncreasing(scratch_ratio, scratch_weight);
  for (size_t j = 0; j < n; ++j) fit[j] *= a[j];
  return fit;
}

std::vector<double> ProjectNonNegative(const std::vector<double>& y) {
  std::vector<double> out = y;
  for (double& v : out) v = std::max(v, 0.0);
  return out;
}

}  // namespace

StatusOr<InterpolationResult> InterpolateSquaredLoss(
    const std::vector<InterpolationPoint>& points,
    const DykstraOptions& options) {
  MBP_RETURN_IF_ERROR(ValidatePoints(points));
  const size_t n = points.size();
  std::vector<double> a(n), target(n);
  for (size_t j = 0; j < n; ++j) {
    a[j] = points[j].a;
    target[j] = points[j].target_price;
  }

  // Dykstra's algorithm over the three cones. increments[s] carries the
  // correction for set s between cycles; plain alternating projections
  // without them would converge to a feasible point but not the projection.
  std::vector<double> x = target;
  std::vector<std::vector<double>> increments(
      3, std::vector<double>(n, 0.0));
  std::vector<double> scratch_ratio, scratch_weight;

  size_t iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    double max_change = 0.0;
    for (int s = 0; s < 3; ++s) {
      std::vector<double> y(n);
      for (size_t j = 0; j < n; ++j) y[j] = x[j] + increments[s][j];
      std::vector<double> projected;
      switch (s) {
        case 0:
          projected = ProjectMonotone(y);
          break;
        case 1:
          projected = ProjectRatio(y, a, scratch_ratio, scratch_weight);
          break;
        default:
          projected = ProjectNonNegative(y);
          break;
      }
      for (size_t j = 0; j < n; ++j) {
        increments[s][j] = y[j] - projected[j];
        max_change = std::max(max_change, std::fabs(projected[j] - x[j]));
      }
      x = std::move(projected);
    }
    if (max_change < options.tolerance) break;
  }

  InterpolationResult result;
  result.prices = std::move(x);
  result.iterations = iteration + 1;
  result.objective = 0.0;
  for (size_t j = 0; j < n; ++j) {
    const double diff = result.prices[j] - target[j];
    result.objective += diff * diff;
  }
  return result;
}

StatusOr<InterpolationResult> InterpolateAbsoluteLoss(
    const std::vector<InterpolationPoint>& points) {
  MBP_RETURN_IF_ERROR(ValidatePoints(points));
  const size_t n = points.size();

  // LP variables: [ z_0..z_{n-1} | t_0..t_{n-1} ], all >= 0.
  //   maximize  -sum_j t_j
  //   s.t.  z_j - t_j <= P_j          (t_j >= z_j - P_j)
  //        -z_j - t_j <= -P_j         (t_j >= P_j - z_j)
  //         z_j - z_{j+1} <= 0        (monotone)
  //         a_j * z_{j+1} - a_{j+1} * z_j <= 0   (ratio non-increasing)
  const size_t num_vars = 2 * n;
  const size_t num_rows = 2 * n + 2 * (n - 1);
  optim::LinearProgram lp;
  lp.objective = linalg::Vector(num_vars);
  for (size_t j = 0; j < n; ++j) lp.objective[n + j] = -1.0;
  lp.constraints = linalg::Matrix(num_rows, num_vars);
  lp.rhs = linalg::Vector(num_rows);

  size_t row = 0;
  for (size_t j = 0; j < n; ++j) {
    lp.constraints(row, j) = 1.0;
    lp.constraints(row, n + j) = -1.0;
    lp.rhs[row] = points[j].target_price;
    ++row;
    lp.constraints(row, j) = -1.0;
    lp.constraints(row, n + j) = -1.0;
    lp.rhs[row] = -points[j].target_price;
    ++row;
  }
  for (size_t j = 0; j + 1 < n; ++j) {
    lp.constraints(row, j) = 1.0;
    lp.constraints(row, j + 1) = -1.0;
    lp.rhs[row] = 0.0;
    ++row;
    lp.constraints(row, j + 1) = points[j].a;
    lp.constraints(row, j) = -points[j + 1].a;
    lp.rhs[row] = 0.0;
    ++row;
  }
  MBP_CHECK_EQ(row, num_rows);

  MBP_ASSIGN_OR_RETURN(optim::LpSolution solution,
                       optim::SolveLinearProgram(lp));
  InterpolationResult result;
  result.prices.resize(n);
  result.objective = 0.0;
  for (size_t j = 0; j < n; ++j) {
    result.prices[j] = solution.x[j];
    result.objective += std::fabs(result.prices[j] - points[j].target_price);
  }
  result.iterations = 1;
  return result;
}

}  // namespace mbp::core

#ifndef MBP_CORE_BUYER_POPULATION_H_
#define MBP_CORE_BUYER_POPULATION_H_

// Monte-Carlo buyer population simulation: turns the market-research
// curves into a stream of individual buyers hitting a live broker, the
// way Section 6.2's revenue/affordability numbers are realized in an
// actual market rather than in expectation.

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/curves.h"
#include "core/market.h"
#include "random/rng.h"

namespace mbp::core {

struct PopulationOptions {
  size_t num_buyers = 1000;
  // Each buyer's private valuation is the curve value times
  // (1 + U[-valuation_jitter, +valuation_jitter]): buyer heterogeneity
  // around the market research.
  double valuation_jitter = 0.0;
};

struct PopulationOutcome {
  size_t buyers = 0;
  size_t sales = 0;
  size_t priced_out = 0;
  double revenue = 0.0;        // total collected by the broker
  double affordability = 0.0;  // sales / buyers
  // Expected values implied by the curve and posted prices, for
  // comparison with the realized numbers above.
  double expected_revenue_per_buyer = 0.0;
  double expected_affordability = 0.0;
};

// Draws `num_buyers` buyers: each samples a quality level from the demand
// distribution, jitters their valuation, and purchases at the posted
// price iff they can afford it. Executes real purchases against `broker`
// (its revenue and transaction log advance). The demand weights of
// `curve` must sum to something positive.
StatusOr<PopulationOutcome> SimulateBuyerPopulation(
    Broker& broker, const std::vector<CurvePoint>& curve,
    const PopulationOptions& options, random::Rng& rng);

}  // namespace mbp::core

#endif  // MBP_CORE_BUYER_POPULATION_H_

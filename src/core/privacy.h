#ifndef MBP_CORE_PRIVACY_H_
#define MBP_CORE_PRIVACY_H_

// The differential-privacy connection the paper sketches in Section 2
// ("if the Gaussian mechanism is applied, then arbitrage-freeness may
// imply certain connections of the privacy between different model
// instances") and leaves to future work. This module makes the
// correspondence concrete for the Gaussian mechanism K_G:
//
// K_G adds N(0, (δ/d) I_d) noise to the optimal model h*(D). If replacing
// one training example can move h* by at most `l2_sensitivity` in L2 norm,
// then releasing one instance at NCP δ is the classical Gaussian DP
// mechanism with per-coordinate stddev σ = sqrt(δ/d), hence
// (ε, δ_dp)-differentially private with
//     ε = sensitivity * sqrt(2 ln(1.25/δ_dp)) / σ          (ε <= 1 regime).
//
// Because the noise of independent purchases composes exactly like the
// arbitrage combination of Theorem 5 (precisions 1/δ add), a buyer holding
// instances at δ_1..δ_k has the privacy of a single instance at
// 1/δ_eff = Σ 1/δ_i — so an arbitrage-free price in x = 1/δ is also a
// price that is monotone and subadditive in this privacy loss.

#include <cstddef>
#include <vector>

#include "common/statusor.h"

namespace mbp::core {

// Differential-privacy guarantee of one released instance.
struct DpGuarantee {
  double epsilon = 0.0;
  double delta_dp = 0.0;  // the DP failure probability (not the NCP!)
};

// ε of the Gaussian mechanism at NCP `ncp` for a model of dimension `dim`,
// training-stability L2 sensitivity `l2_sensitivity`, and target failure
// probability `delta_dp`. Classical bound (Dwork & Roth Thm A.1), valid
// (tight) for the returned ε <= 1; larger values are still reported but
// flagged by the caller if needed. InvalidArgument on non-positive inputs
// or delta_dp outside (0, 1).
StatusOr<DpGuarantee> GaussianMechanismPrivacy(double ncp, size_t dim,
                                               double l2_sensitivity,
                                               double delta_dp);

// The NCP required to meet a target (epsilon, delta_dp) guarantee — the
// inverse of GaussianMechanismPrivacy. InvalidArgument on non-positive
// inputs.
StatusOr<double> NcpForPrivacy(double epsilon, double delta_dp, size_t dim,
                               double l2_sensitivity);

// Effective privacy of a PORTFOLIO of purchased instances at the given
// NCPs: by the precision-additivity of independent Gaussian noise, the
// portfolio is equivalent to one instance at δ_eff = 1 / Σ (1/δ_i)
// (the same quantity Theorem 5's subadditivity prices). Empty portfolios
// are invalid.
StatusOr<DpGuarantee> PortfolioPrivacy(const std::vector<double>& ncps,
                                       size_t dim, double l2_sensitivity,
                                       double delta_dp);

// Upper bound on the L2 sensitivity of L2-regularized empirical risk
// minimization with per-example loss Lipschitz constant `lipschitz`,
// regularization coefficient l2 > 0, and n training examples:
//     sensitivity <= lipschitz / (l2 * n)
// (Chaudhuri & Monteleoni-style ERM stability). InvalidArgument if l2 or
// n is non-positive.
StatusOr<double> ErmL2Sensitivity(double lipschitz, double l2, size_t n);

}  // namespace mbp::core

#endif  // MBP_CORE_PRIVACY_H_

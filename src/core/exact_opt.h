#ifndef MBP_CORE_EXACT_OPT_H_
#define MBP_CORE_EXACT_OPT_H_

#include <vector>

#include "common/statusor.h"
#include "common/thread_pool.h"
#include "core/curves.h"
#include "core/interpolation.h"
#include "core/revenue_opt.h"

namespace mbp::core {

// Exact revenue maximization over ALL monotone + subadditive (i.e. truly
// arbitrage-free, Theorem 5) pricing functions — the paper's exponential
// "MILP" yardstick from Figures 9-10. The general problem is coNP-hard
// (Theorem 7); this solver handles curves whose x values lie on an integer
// grid (x_j = u_j * base for integers u_j), where subadditive-extension
// feasibility reduces to an unbounded-knapsack covering test:
//
//   a price assignment {z_j} extends to a monotone subadditive function
//   through all (x_j, z_j) iff z is non-decreasing and no z_k exceeds the
//   cheapest way of covering u_k by other points, i.e.
//   z_k <= min{ sum_j m_j z_j : sum_j m_j u_j >= u_k, m_j in Z >= 0 }.
//
// The search enumerates anchor subsets A of the curve points and prices
// with the min-plus closure of {(u_j, v_j) : j in A}:
//   f_A(x) = min{ sum_{j in A} m_j v_j : sum_{j in A} m_j u_j >= x }.
// Every f_A is monotone and subadditive; conversely, for any feasible f,
// taking A = {j : f(u_j) <= v_j} yields f_A >= f pointwise with every
// earner still earning, so max over the 2^n subsets is the true optimum.
// Exponential by design (the problem is coNP-hard): 2^n closures, each an
// unbounded-knapsack DP.
//
// Returns InvalidArgument if the x values do not share a common base step
// (or the grid exceeds max_grid_units), ResourceExhausted when
// curve.size() > 24. The 2^n enumeration runs in parallel mask chunks per
// `parallel`, with a chunk-ordered reduction: the result is identical at
// any thread count.
StatusOr<RevenueOptResult> MaximizeRevenueExact(
    const std::vector<CurvePoint>& curve, size_t max_grid_units = 100000,
    const ParallelConfig& parallel = {});

// Decision procedure for the paper's SUBADDITIVE INTERPOLATION problem
// (Definition 6) on integer-grid inputs: does a positive, monotone,
// subadditive function through every (a_j, P_j) exist? Exact via the same
// covering characterization (this is the problem proved coNP-hard in
// Theorem 7; integer-grid instances are exactly the unbounded-subset-sum
// reduction's domain).
StatusOr<bool> SubadditiveInterpolationFeasible(
    const std::vector<InterpolationPoint>& points,
    size_t max_grid_units = 100000);

}  // namespace mbp::core

#endif  // MBP_CORE_EXACT_OPT_H_

#include "core/exact_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mbp::core {
namespace {

constexpr double kTol = 1e-9;

// Approximate real GCD (Euclid with tolerance), used to recover the common
// base step of the x grid.
double ApproxGcd(double a, double b, double tolerance) {
  a = std::fabs(a);
  b = std::fabs(b);
  while (b > tolerance) {
    const double r = std::fmod(a, b);
    a = b;
    // fmod can return values within tolerance of b (i.e. "zero" remainder).
    b = (r > b - tolerance) ? 0.0 : r;
  }
  return a;
}

// Maps x values onto an integer grid: x_j ~= units[j] * base. Empty result
// means no acceptable common base was found.
std::vector<size_t> IntegerizeGrid(const std::vector<double>& xs,
                                   size_t max_grid_units) {
  double base = xs[0];
  for (size_t j = 1; j < xs.size(); ++j) {
    base = ApproxGcd(base, xs[j], 1e-6 * xs[0]);
    if (base < 1e-9) return {};
  }
  std::vector<size_t> units(xs.size());
  for (size_t j = 0; j < xs.size(); ++j) {
    const double ratio = xs[j] / base;
    const auto unit = static_cast<size_t>(std::llround(ratio));
    if (unit == 0 || std::fabs(ratio - static_cast<double>(unit)) > 1e-6) {
      return {};
    }
    if (unit > max_grid_units) return {};
    units[j] = unit;
  }
  return units;
}

// Cheapest multiset cover by the anchors: for every t = 0..max(targets),
//   g[t] = min { sum_j m_j cost_j : sum_j m_j anchor_unit_j >= t }.
// Unbounded-knapsack DP in O(max_target * |anchors|).
std::vector<double> MinCoverCosts(const std::vector<size_t>& target_units,
                                  const std::vector<size_t>& anchor_units,
                                  const std::vector<double>& anchor_costs) {
  const size_t max_unit =
      *std::max_element(target_units.begin(), target_units.end());
  std::vector<double> cover(max_unit + 1,
                            std::numeric_limits<double>::infinity());
  cover[0] = 0.0;
  for (size_t t = 1; t <= max_unit; ++t) {
    for (size_t j = 0; j < anchor_units.size(); ++j) {
      const size_t rest = t > anchor_units[j] ? t - anchor_units[j] : 0;
      cover[t] = std::min(cover[t], anchor_costs[j] + cover[rest]);
    }
  }
  return cover;
}

// Cover where every point is both a target and an anchor at its own price.
std::vector<double> MinCoverCosts(const std::vector<size_t>& units,
                                  const std::vector<double>& prices) {
  return MinCoverCosts(units, units, prices);
}

// True iff the monotone assignment `prices` admits a monotone subadditive
// extension through all (units[j], prices[j]).
bool CoveringFeasible(const std::vector<size_t>& units,
                      const std::vector<double>& prices) {
  const std::vector<double> cover = MinCoverCosts(units, prices);
  for (size_t j = 0; j < units.size(); ++j) {
    if (cover[units[j]] + kTol < prices[j]) return false;
  }
  return true;
}

// Exhaustive search over anchor subsets. For anchor set A, prices are the
// min-plus closure f_A evaluated at every grid point; the closure is
// monotone and subadditive by construction, and dominates any feasible
// pricing whose earner set is A (see header comment). The empty set means
// "price everyone out" (revenue 0) and is skipped.
//
// The 2^n - 1 masks are scanned in contiguous chunks that run
// concurrently; each chunk keeps its own running best under the serial
// comparison rule, and chunk winners are folded in ascending chunk order,
// so the result is identical at any thread count.
class ExactSearch {
 public:
  ExactSearch(const std::vector<CurvePoint>& curve,
              std::vector<size_t> units)
      : curve_(curve), units_(std::move(units)), n_(curve.size()) {}

  struct ChunkBest {
    double revenue = 0.0;
    std::vector<double> prices;  // empty: nothing beat the no-sale base
  };

  RevenueOptResult Run(const ParallelConfig& parallel) {
    const double max_value =
        std::max_element(curve_.begin(), curve_.end(),
                         [](const CurvePoint& a, const CurvePoint& b) {
                           return a.value < b.value;
                         })
            ->value;
    RevenueOptResult best;
    // No-sale fallback: everything priced above every valuation.
    best.prices.assign(n_, 2.0 * max_value + 1.0);
    best.revenue = 0.0;

    const uint64_t num_masks = (uint64_t{1} << n_) - 1;  // masks 1..2^n-1
    constexpr size_t kMasksPerChunk = size_t{1} << 12;
    const size_t num_chunks =
        static_cast<size_t>((num_masks + kMasksPerChunk - 1) /
                            kMasksPerChunk);
    std::vector<ChunkBest> chunk_best(num_chunks);
    MBP_CHECK(ParallelFor(
                  parallel, 0, num_chunks, 1,
                  [&](size_t chunk_begin, size_t chunk_end) {
                    for (size_t c = chunk_begin; c < chunk_end; ++c) {
                      ScanMasks(1 + uint64_t{c} * kMasksPerChunk,
                                std::min(num_masks + 1,
                                         1 + uint64_t{c + 1} *
                                                 kMasksPerChunk),
                                chunk_best[c]);
                    }
                    return Status::OK();
                  })
                  .ok());
    for (const ChunkBest& candidate : chunk_best) {
      if (!candidate.prices.empty() &&
          candidate.revenue > best.revenue + kTol) {
        best.revenue = candidate.revenue;
        best.prices = candidate.prices;
      }
    }
    best.revenue = RevenueOf(curve_, best.prices);
    best.affordability = AffordabilityOf(curve_, best.prices);
    return best;
  }

 private:
  // Scans masks in [mask_begin, mask_end), recording the chunk's winner.
  void ScanMasks(uint64_t mask_begin, uint64_t mask_end,
                 ChunkBest& out) const {
    std::vector<size_t> anchor_units;
    std::vector<double> anchor_costs;
    std::vector<double> prices(n_);
    for (uint64_t mask = mask_begin; mask < mask_end; ++mask) {
      anchor_units.clear();
      anchor_costs.clear();
      for (size_t j = 0; j < n_; ++j) {
        if (mask & (uint64_t{1} << j)) {
          anchor_units.push_back(units_[j]);
          anchor_costs.push_back(curve_[j].value);
        }
      }
      const std::vector<double> cover =
          MinCoverCosts(units_, anchor_units, anchor_costs);
      for (size_t j = 0; j < n_; ++j) prices[j] = cover[units_[j]];
      const double revenue = RevenueOf(curve_, prices);
      if (revenue > out.revenue + kTol) {
        out.revenue = revenue;
        out.prices = prices;
      }
    }
  }

  const std::vector<CurvePoint>& curve_;
  std::vector<size_t> units_;
  size_t n_;
};

Status ValidateExactInputs(const std::vector<CurvePoint>& curve) {
  if (curve.empty()) return InvalidArgumentError("market curve is empty");
  double prev_x = 0.0;
  double prev_v = -1.0;
  for (const CurvePoint& point : curve) {
    if (!(point.x > prev_x)) {
      return InvalidArgumentError("curve x must be strictly increasing > 0");
    }
    if (point.value < 0.0 || point.demand < 0.0) {
      return InvalidArgumentError("values and demands must be non-negative");
    }
    if (point.value + kTol < prev_v) {
      return InvalidArgumentError("valuations must be non-decreasing");
    }
    prev_x = point.x;
    prev_v = std::max(prev_v, point.value);
  }
  return Status::OK();
}

}  // namespace

StatusOr<RevenueOptResult> MaximizeRevenueExact(
    const std::vector<CurvePoint>& curve, size_t max_grid_units,
    const ParallelConfig& parallel) {
  MBP_RETURN_IF_ERROR(ValidateExactInputs(curve));
  std::vector<double> xs(curve.size());
  for (size_t j = 0; j < curve.size(); ++j) xs[j] = curve[j].x;
  if (curve.size() > 24) {
    return ResourceExhaustedError(
        "exact solver enumerates 2^n anchor subsets; n > 24 is impractical");
  }
  std::vector<size_t> units = IntegerizeGrid(xs, max_grid_units);
  if (units.empty()) {
    return InvalidArgumentError(
        "curve x values do not lie on a common integer grid (or the grid "
        "exceeds max_grid_units); the exact solver requires one");
  }
  ExactSearch search(curve, std::move(units));
  return search.Run(parallel);
}

StatusOr<bool> SubadditiveInterpolationFeasible(
    const std::vector<InterpolationPoint>& points, size_t max_grid_units) {
  if (points.empty()) {
    return InvalidArgumentError("need at least one point");
  }
  std::vector<double> xs(points.size());
  std::vector<double> prices(points.size());
  double prev_x = 0.0;
  for (size_t j = 0; j < points.size(); ++j) {
    if (!(points[j].a > prev_x)) {
      return InvalidArgumentError("a must be strictly increasing > 0");
    }
    prev_x = points[j].a;
    xs[j] = points[j].a;
    prices[j] = points[j].target_price;
    // Definition 6 requires a positive function.
    if (!(prices[j] > 0.0)) return false;
  }
  // Monotonicity across the sample points is necessary.
  for (size_t j = 1; j < points.size(); ++j) {
    if (prices[j] + kTol < prices[j - 1]) return false;
  }
  std::vector<size_t> units = IntegerizeGrid(xs, max_grid_units);
  if (units.empty()) {
    return InvalidArgumentError(
        "points do not lie on a common integer grid");
  }
  return CoveringFeasible(units, prices);
}

}  // namespace mbp::core

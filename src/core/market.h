#ifndef MBP_CORE_MARKET_H_
#define MBP_CORE_MARKET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/curves.h"
#include "core/error_transform.h"
#include "core/mechanism.h"
#include "core/pricing_function.h"
#include "data/dataset.h"
#include "ml/loss.h"
#include "ml/model.h"

namespace mbp::core {

// ------------------------------------------------------------------ Seller

// The agent that owns the dataset for sale (Figure 1A). Supplies the
// train/test pair and the market research (value + demand curves over
// x = 1/NCP) the broker prices from.
class Seller {
 public:
  static StatusOr<Seller> Create(std::string name, data::TrainTestSplit data,
                                 std::vector<CurvePoint> market_research);

  const std::string& name() const { return name_; }
  const data::Dataset& train() const { return data_.train; }
  const data::Dataset& test() const { return data_.test; }
  const std::vector<CurvePoint>& market_research() const {
    return market_research_;
  }

 private:
  Seller(std::string name, data::TrainTestSplit data,
         std::vector<CurvePoint> market_research)
      : name_(std::move(name)),
        data_(std::move(data)),
        market_research_(std::move(market_research)) {}

  std::string name_;
  data::TrainTestSplit data_;
  std::vector<CurvePoint> market_research_;
};

// --------------------------------------------------------------- Listings

// Where the buyer-facing error ε lives.
enum class ErrorSpace {
  // ε is a dataset loss (Table 2): evaluated on D_test or D_train.
  kDataset,
  // ε is the model-space square loss ε_s(h) = ||h - h*||² of Section 4 —
  // the loss under which Lemma 3 gives E[ε_s] = δ exactly and Theorem 5
  // characterizes arbitrage-freeness. `test_error` is ignored.
  kModelSquare,
};

// One entry of the broker's supported-model menu M: the model family (which
// fixes the training loss λ per Table 2) and the buyer-facing error ε.
struct ModelListing {
  ml::ModelKind model = ml::ModelKind::kLinearRegression;
  double l2 = 1e-3;  // coefficient of the L2 term in λ
  // Buyer-facing error function ε and where it is evaluated.
  ErrorSpace error_space = ErrorSpace::kDataset;
  ml::LossKind test_error = ml::LossKind::kSquare;
  bool evaluate_on_test = true;  // ε on D_test (default) or D_train
};

// One point of the price-error curve shown to the buyer (step 2 of the
// broker-buyer interaction).
struct QuotePoint {
  double delta = 0.0;           // NCP
  double x = 0.0;               // 1/NCP
  double expected_error = 0.0;  // E[ε(ĥ^δ)]
  double price = 0.0;
};

// A completed sale (steps 3-4): what was paid and the instance delivered.
struct Transaction {
  uint64_t id = 0;
  double delta = 0.0;
  double price = 0.0;
  double quoted_expected_error = 0.0;
  ml::LinearModel instance;
};

// ------------------------------------------------------------------ Broker

// The market maker (Figure 1B). On construction it performs the one-time
// work of Section 4: trains the optimal instance h*_λ(D), builds the
// error<->NCP transform for the listed ε, optimizes the arbitrage-free
// pricing curve from the seller's market research, and verifies the
// arbitrage-freeness certificate. Each sale then costs only one noise draw.
//
// Thread safety: a Broker is NOT thread-safe — sales mutate the RNG,
// revenue, and transaction log. Serialize access (one selling thread per
// broker); concurrent READS of pricing()/error_transform() between sales
// are fine.
class Broker {
 public:
  struct Options {
    MechanismKind mechanism = MechanismKind::kGaussian;
    EmpiricalErrorTransform::BuildOptions transform;
    // For square-loss listings under an isotropic mechanism (all but the
    // multiplicative one), use the closed-form transform of
    // AnalyticSquareLossTransform instead of Monte Carlo: exact and
    // instantaneous. Ignored for other ε.
    bool prefer_analytic_square_transform = true;
    uint64_t seed = 42;
  };

  static StatusOr<Broker> Create(Seller seller, ModelListing listing,
                                 const Options& options);
  // Default options: Gaussian mechanism, default transform grid, seed 42.
  static StatusOr<Broker> Create(Seller seller, ModelListing listing);

  // Creates a broker with a seller-chosen pricing curve instead of the
  // revenue-optimized one — the price-interpolation workflow of Section 5
  // (fit seller target prices with interpolation.h, then list here). The
  // curve must pass the arbitrage-freeness certificate; this is the
  // market's SLA and is enforced, not assumed.
  static StatusOr<Broker> CreateWithPricing(Seller seller,
                                            ModelListing listing,
                                            PiecewiseLinearPricing pricing,
                                            const Options& options);

  Broker(Broker&&) = default;
  Broker& operator=(Broker&&) = default;

  const Seller& seller() const { return seller_; }
  const ModelListing& listing() const { return listing_; }
  const ml::LinearModel& optimal_model() const { return optimal_model_; }
  const PiecewiseLinearPricing& pricing() const { return pricing_; }
  const ErrorTransform& error_transform() const { return *transform_; }

  // The price-error curve (step 2): `num_points` quotes spanning the
  // pricing curve's x range.
  std::vector<QuotePoint> QuoteCurve(size_t num_points = 20) const;

  // Purchase option 1: buy at an explicit NCP δ > 0 (a point on the curve).
  StatusOr<Transaction> BuyAtNcp(double delta);

  // Purchase option 2: cheapest instance with expected error <= budget.
  // Infeasible when the budget is below the optimal instance's error.
  StatusOr<Transaction> BuyWithErrorBudget(double error_budget);

  // Purchase option 3: most accurate instance with price <= budget
  // (budget >= 0; a zero budget buys an arbitrarily noisy instance at the
  // smallest positive x the curve quotes).
  StatusOr<Transaction> BuyWithPriceBudget(double price_budget);

  // Re-optimizes the pricing curve against fresh market research (e.g.
  // the ledger-estimated curves of core/demand_estimation.h) without
  // retraining the model or rebuilding the error transform. The new
  // curve's x range must lie within the transform's coverage, i.e. within
  // [first, last] knot x of the current pricing (the quotes stay honest).
  // The arbitrage-freeness certificate is re-checked before swapping.
  Status RefreshPricing(const std::vector<CurvePoint>& research);

  // Empirical audit of the market's SLA (Section 3.3's guarantees as a
  // runnable check): draws `trials` fresh instances at several NCPs and
  // verifies (1) the mean instance matches the optimal model
  // (unbiasedness) and (2) the measured mean ε matches the quoted
  // expected error within `relative_tolerance`. Uses its own RNG stream,
  // so the purchase history is unaffected. Returns FailedPrecondition
  // naming the violated clause.
  Status VerifySla(size_t trials = 200,
                   double relative_tolerance = 0.15) const;

  double total_revenue() const { return total_revenue_; }
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }

 private:
  Broker(Seller seller, ModelListing listing, ml::LinearModel optimal_model,
         std::unique_ptr<RandomizedMechanism> mechanism,
         std::unique_ptr<ErrorTransform> transform,
         PiecewiseLinearPricing pricing, uint64_t seed);

  // Samples one instance at δ, charges the curve price, records the sale.
  Transaction Sell(double delta);

  Seller seller_;
  ModelListing listing_;
  ml::LinearModel optimal_model_;
  std::unique_ptr<RandomizedMechanism> mechanism_;
  std::unique_ptr<ErrorTransform> transform_;
  PiecewiseLinearPricing pricing_;
  random::Rng rng_;
  uint64_t next_transaction_id_ = 1;
  double total_revenue_ = 0.0;
  std::vector<Transaction> transactions_;
};

// ------------------------------------------------------------------- Buyer

// A scripted buyer (Figure 1C) for simulations and examples: how they pick
// a purchase option against a broker.
struct BuyerRequest {
  enum class Mode { kAtNcp, kErrorBudget, kPriceBudget };
  Mode mode = Mode::kPriceBudget;
  double parameter = 0.0;  // δ, error budget, or price budget per mode
};

class Buyer {
 public:
  Buyer(std::string name, double wallet) : name_(std::move(name)),
                                           wallet_(wallet) {}

  const std::string& name() const { return name_; }
  double wallet() const { return wallet_; }

  // Executes the request against the broker if the wallet covers the
  // price; debits the wallet on success. FailedPrecondition when the
  // charged price would exceed the wallet.
  StatusOr<Transaction> Purchase(Broker& broker, const BuyerRequest& request);

 private:
  std::string name_;
  double wallet_;
};

}  // namespace mbp::core

#endif  // MBP_CORE_MARKET_H_

#ifndef MBP_CORE_MARKETPLACE_H_
#define MBP_CORE_MARKETPLACE_H_

// The full marketplace of Section 3.1: a broker supports a MENU M of ML
// models (e.g. logistic regression for classification and least squares
// for regression), each listed over some seller's dataset. Buyers browse
// the menu, pick the model family they want, and interact with that
// listing's broker. This composes the single-listing Broker into the
// multi-model marketplace of Figure 1.

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/ledger.h"
#include "core/market.h"

namespace mbp::core {

// A catalog entry: a human-readable listing id plus its live broker.
struct CatalogEntry {
  std::string id;           // unique listing identifier
  std::string seller_name;  // convenience copy of the seller's name
  ml::ModelKind model;
  ml::LossKind test_error;
};

class Marketplace {
 public:
  Marketplace() = default;

  Marketplace(Marketplace&&) = default;
  Marketplace& operator=(Marketplace&&) = default;

  // Lists a new (seller, model) offering under `id`. Broker construction
  // (training + pricing optimization) happens here, once.
  // InvalidArgument if the id is already taken or any broker setup step
  // fails.
  Status List(std::string id, Seller seller, ModelListing listing,
              const Broker::Options& options);

  // The browsable menu M, in listing order.
  std::vector<CatalogEntry> Catalog() const;

  // Accesses a live listing by id; NotFound if absent.
  StatusOr<Broker*> Lookup(const std::string& id);

  // Removes a listing (e.g. the seller withdraws the dataset).
  // NotFound if absent.
  Status Delist(const std::string& id);

  // Total revenue booked across all listings.
  double TotalRevenue() const;

  // Snapshots every completed transaction across all listings into audit
  // books (see core/ledger.h). Records carry the listing id.
  TransactionLedger BuildLedger() const;

  size_t num_listings() const { return entries_.size(); }

 private:
  struct Entry {
    CatalogEntry info;
    std::unique_ptr<Broker> broker;
  };
  std::vector<Entry> entries_;
};

}  // namespace mbp::core

#endif  // MBP_CORE_MARKETPLACE_H_

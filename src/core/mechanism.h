#ifndef MBP_CORE_MECHANISM_H_
#define MBP_CORE_MECHANISM_H_

#include <memory>
#include <string>

#include "linalg/vector.h"
#include "random/rng.h"

namespace mbp::core {

// A randomized noise-injection mechanism K (Section 3.1): given the optimal
// model instance h*_λ(D) and a noise control parameter (NCP) δ, produces a
// noisy model instance ĥ^δ = K(h*, w), w ~ W_δ.
//
// Every implementation in this library satisfies the paper's two
// restrictions by construction:
//   1. Unbiasedness:  E[K(h*, w)] = h*.
//   2. The NCP δ is exactly the expected squared model-space error:
//      E[||K(h*, w) - h*||^2] = δ  (Lemma 3 normalization),
//      so larger δ means strictly larger expected error for any strictly
//      convex ε (Theorem 4).
class RandomizedMechanism {
 public:
  virtual ~RandomizedMechanism() = default;

  virtual std::string name() const = 0;

  // Samples one noisy instance at NCP `delta` >= 0 (delta == 0 returns the
  // optimal instance unchanged).
  virtual linalg::Vector Perturb(const linalg::Vector& optimal, double delta,
                                 random::Rng& rng) const = 0;

  // E[||K(h*,w) - h*||^2] at the given delta and model dimension. Equal to
  // delta for every mechanism shipped here; exposed as a virtual so tests
  // and the analytic error transform state the dependency explicitly.
  virtual double ExpectedSquaredNoise(double delta, size_t dim) const;
};

// The paper's Gaussian mechanism K_G (Equation 1):
//   ĥ = h* + w,  w ~ N(0, (δ/d) · I_d).
// Per-coordinate variance δ/d makes E||w||^2 = δ.
class GaussianMechanism final : public RandomizedMechanism {
 public:
  std::string name() const override { return "gaussian"; }
  linalg::Vector Perturb(const linalg::Vector& optimal, double delta,
                         random::Rng& rng) const override;
};

// Additive i.i.d. Laplace noise (the alternative in Example 2), scaled so
// that E||w||^2 = δ: per-coordinate scale b = sqrt(δ / (2d)).
class LaplaceMechanism final : public RandomizedMechanism {
 public:
  std::string name() const override { return "laplace"; }
  linalg::Vector Perturb(const linalg::Vector& optimal, double delta,
                         random::Rng& rng) const override;
};

// Additive i.i.d. uniform noise U[-r, r] (mechanism K_1 of Example 1),
// scaled so that E||w||^2 = δ: r = sqrt(3δ/d).
class UniformAdditiveMechanism final : public RandomizedMechanism {
 public:
  std::string name() const override { return "uniform_additive"; }
  linalg::Vector Perturb(const linalg::Vector& optimal, double delta,
                         random::Rng& rng) const override;
};

// Multiplicative uniform noise (mechanism K_2 of Example 1): each
// coordinate is scaled by an independent uniform factor. Normalized so
// that E||K(h*,w) - h*||^2 = δ: the half-width is r = sqrt(3δ) / ||h*||,
// giving per-coordinate variance h_i^2 r^2 / 3 summing to δ. Requires
// ||h*|| > 0 (checked).
class UniformMultiplicativeMechanism final : public RandomizedMechanism {
 public:
  std::string name() const override { return "uniform_multiplicative"; }
  linalg::Vector Perturb(const linalg::Vector& optimal, double delta,
                         random::Rng& rng) const override;
};

enum class MechanismKind {
  kGaussian,
  kLaplace,
  kUniformAdditive,
  kUniformMultiplicative,
};

std::unique_ptr<RandomizedMechanism> MakeMechanism(MechanismKind kind);

}  // namespace mbp::core

#endif  // MBP_CORE_MECHANISM_H_

#ifndef MBP_CORE_BASELINES_H_
#define MBP_CORE_BASELINES_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/curves.h"
#include "core/revenue_opt.h"

namespace mbp::core {

// The four naive pricing schemes MBP is compared against in Section 6.2.
// All produce well-behaved (monotone + subadditive) pricing curves; none
// adapts prices per quality level the way the MBP optimizer does.
enum class BaselineKind {
  kLinear,           // "Lin": linear interpolation of min/max valuation
  kMaxConstant,      // "MaxC": one price = highest valuation
  kMedianConstant,   // "MedC": one price affordable to >= half the buyers
  kOptimalConstant,  // "OptC": the revenue-optimal single price
};

std::string BaselineKindToString(BaselineKind kind);

// Prices every curve point with the chosen baseline scheme and reports the
// realized revenue/affordability. Curve requirements match
// MaximizeRevenueDp (strictly increasing x, non-decreasing values).
StatusOr<RevenueOptResult> PriceWithBaseline(
    BaselineKind kind, const std::vector<CurvePoint>& curve);

// All four baselines, in enum order.
std::vector<BaselineKind> AllBaselines();

}  // namespace mbp::core

#endif  // MBP_CORE_BASELINES_H_

#include "optim/simplex.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace mbp::optim {
namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau over variables
//   [ structural (n) | slack (m) | artificial (<= m) ],
// one row per constraint plus an objective row. We minimize internally.
class Tableau {
 public:
  Tableau(const LinearProgram& lp)
      : m_(lp.constraints.rows()), n_(lp.constraints.cols()) {
    num_artificial_ = 0;
    // Rows with negative rhs are flipped so rhs >= 0; their slack then
    // enters with coefficient -1 and cannot seed the basis, so they get an
    // artificial variable instead.
    std::vector<bool> flipped(m_);
    for (size_t i = 0; i < m_; ++i) {
      flipped[i] = lp.rhs[i] < 0.0;
      if (flipped[i]) ++num_artificial_;
    }
    total_vars_ = n_ + m_ + num_artificial_;
    rows_.assign(m_, std::vector<double>(total_vars_ + 1, 0.0));
    basis_.assign(m_, 0);

    size_t artificial = n_ + m_;
    for (size_t i = 0; i < m_; ++i) {
      const double sign = flipped[i] ? -1.0 : 1.0;
      for (size_t j = 0; j < n_; ++j) {
        rows_[i][j] = sign * lp.constraints(i, j);
      }
      rows_[i][n_ + i] = sign;  // slack
      rows_[i][total_vars_] = sign * lp.rhs[i];
      if (flipped[i]) {
        rows_[i][artificial] = 1.0;
        basis_[i] = artificial++;
      } else {
        basis_[i] = n_ + i;
      }
    }
  }

  size_t num_structural() const { return n_; }
  size_t num_artificial() const { return num_artificial_; }
  size_t first_artificial() const { return n_ + m_; }

  // Runs simplex minimizing `cost` (length total_vars_). `allowed` marks
  // columns eligible to enter the basis. Returns false if unbounded.
  bool Minimize(const std::vector<double>& cost,
                const std::vector<bool>& allowed) {
    // Reduced-cost row: z_j = c_j - c_B^T B^{-1} A_j, maintained explicitly.
    std::vector<double> reduced(total_vars_ + 1, 0.0);
    for (size_t j = 0; j < total_vars_; ++j) reduced[j] = cost[j];
    for (size_t i = 0; i < m_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      for (size_t j = 0; j <= total_vars_; ++j) {
        reduced[j] -= cb * rows_[i][j];
      }
    }

    for (;;) {
      // Bland's rule: smallest-index column with negative reduced cost.
      size_t pivot_col = total_vars_;
      for (size_t j = 0; j < total_vars_; ++j) {
        if (allowed[j] && reduced[j] < -kEps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col == total_vars_) return true;  // optimal

      // Ratio test, Bland tie-break on smallest basis index.
      size_t pivot_row = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m_; ++i) {
        const double a = rows_[i][pivot_col];
        if (a > kEps) {
          const double ratio = rows_[i][total_vars_] / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (pivot_row == m_ || basis_[i] < basis_[pivot_row]))) {
            best_ratio = ratio;
            pivot_row = i;
          }
        }
      }
      if (pivot_row == m_) return false;  // unbounded direction

      Pivot(pivot_row, pivot_col, reduced);
    }
  }

  // Current value of basic variable in row i.
  double BasicValue(size_t i) const { return rows_[i][total_vars_]; }
  size_t BasisVar(size_t i) const { return basis_[i]; }
  size_t num_rows() const { return m_; }

  // After phase 1: pivot remaining artificial variables out of the basis
  // where possible (degenerate rows); rows that cannot be pivoted are
  // redundant constraints and harmless since their artificial is 0.
  void DriveOutArtificials(const std::vector<bool>& allowed) {
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < first_artificial()) continue;
      for (size_t j = 0; j < first_artificial(); ++j) {
        if (allowed[j] && std::fabs(rows_[i][j]) > kEps) {
          std::vector<double> dummy(total_vars_ + 1, 0.0);
          Pivot(i, j, dummy);
          break;
        }
      }
    }
  }

 private:
  void Pivot(size_t pivot_row, size_t pivot_col,
             std::vector<double>& reduced) {
    const double pivot = rows_[pivot_row][pivot_col];
    MBP_CHECK(std::fabs(pivot) > 0.0);
    for (size_t j = 0; j <= total_vars_; ++j) {
      rows_[pivot_row][j] /= pivot;
    }
    for (size_t i = 0; i < m_; ++i) {
      if (i == pivot_row) continue;
      const double factor = rows_[i][pivot_col];
      if (factor == 0.0) continue;
      for (size_t j = 0; j <= total_vars_; ++j) {
        rows_[i][j] -= factor * rows_[pivot_row][j];
      }
    }
    const double reduced_factor = reduced[pivot_col];
    if (reduced_factor != 0.0) {
      for (size_t j = 0; j <= total_vars_; ++j) {
        reduced[j] -= reduced_factor * rows_[pivot_row][j];
      }
    }
    basis_[pivot_row] = pivot_col;
  }

  size_t m_;
  size_t n_;
  size_t num_artificial_;
  size_t total_vars_;
  std::vector<std::vector<double>> rows_;
  std::vector<size_t> basis_;
};

}  // namespace

StatusOr<LpSolution> SolveLinearProgram(const LinearProgram& lp) {
  const size_t m = lp.constraints.rows();
  const size_t n = lp.constraints.cols();
  if (lp.objective.size() != n) {
    return InvalidArgumentError("objective length must match column count");
  }
  if (lp.rhs.size() != m) {
    return InvalidArgumentError("rhs length must match row count");
  }
  if (n == 0) {
    return InvalidArgumentError("LP must have at least one variable");
  }

  Tableau tableau(lp);
  const size_t total = n + m + tableau.num_artificial();

  if (tableau.num_artificial() > 0) {
    // Phase 1: minimize the sum of artificials over all columns.
    std::vector<double> phase1_cost(total, 0.0);
    for (size_t j = tableau.first_artificial(); j < total; ++j) {
      phase1_cost[j] = 1.0;
    }
    std::vector<bool> allow_all(total, true);
    const bool bounded = tableau.Minimize(phase1_cost, allow_all);
    MBP_CHECK(bounded) << "phase-1 objective is bounded below by 0";
    double infeasibility = 0.0;
    for (size_t i = 0; i < tableau.num_rows(); ++i) {
      if (tableau.BasisVar(i) >= tableau.first_artificial()) {
        infeasibility += tableau.BasicValue(i);
      }
    }
    if (infeasibility > 1e-6) {
      return InfeasibleError("LP is infeasible");
    }
    std::vector<bool> allow_original(total, true);
    for (size_t j = tableau.first_artificial(); j < total; ++j) {
      allow_original[j] = false;
    }
    tableau.DriveOutArtificials(allow_original);
  }

  // Phase 2: minimize -c over structural+slack columns only.
  std::vector<double> phase2_cost(total, 0.0);
  for (size_t j = 0; j < n; ++j) phase2_cost[j] = -lp.objective[j];
  std::vector<bool> allowed(total, true);
  for (size_t j = tableau.first_artificial(); j < total; ++j) {
    allowed[j] = false;
  }
  if (!tableau.Minimize(phase2_cost, allowed)) {
    return OutOfRangeError("LP objective is unbounded above");
  }

  LpSolution solution;
  solution.x = linalg::Vector(n);
  for (size_t i = 0; i < tableau.num_rows(); ++i) {
    const size_t var = tableau.BasisVar(i);
    if (var < n) solution.x[var] = tableau.BasicValue(i);
  }
  double value = 0.0;
  for (size_t j = 0; j < n; ++j) value += lp.objective[j] * solution.x[j];
  solution.objective_value = value;
  return solution;
}

}  // namespace mbp::optim

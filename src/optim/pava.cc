#include "optim/pava.h"

#include <algorithm>

#include "common/check.h"

namespace mbp::optim {
namespace {

// Blocks of pooled values: each holds the weighted mean of a maximal run.
struct Block {
  double weighted_sum;
  double weight;
  size_t count;

  double mean() const { return weighted_sum / weight; }
};

}  // namespace

std::vector<double> IsotonicNonDecreasing(const std::vector<double>& values,
                                          const std::vector<double>& weights) {
  MBP_CHECK_EQ(values.size(), weights.size());
  std::vector<Block> stack;
  stack.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    MBP_CHECK_GT(weights[i], 0.0);
    Block block{values[i] * weights[i], weights[i], 1};
    // Merge backwards while the new block's mean violates monotonicity.
    while (!stack.empty() && stack.back().mean() > block.mean()) {
      block.weighted_sum += stack.back().weighted_sum;
      block.weight += stack.back().weight;
      block.count += stack.back().count;
      stack.pop_back();
    }
    stack.push_back(block);
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& block : stack) {
    out.insert(out.end(), block.count, block.mean());
  }
  return out;
}

std::vector<double> IsotonicNonIncreasing(const std::vector<double>& values,
                                          const std::vector<double>& weights) {
  // Reverse, solve non-decreasing, reverse back.
  std::vector<double> reversed_values(values.rbegin(), values.rend());
  std::vector<double> reversed_weights(weights.rbegin(), weights.rend());
  std::vector<double> fit =
      IsotonicNonDecreasing(reversed_values, reversed_weights);
  std::reverse(fit.begin(), fit.end());
  return fit;
}

std::vector<double> IsotonicNonDecreasing(const std::vector<double>& values) {
  return IsotonicNonDecreasing(values,
                               std::vector<double>(values.size(), 1.0));
}

std::vector<double> IsotonicNonIncreasing(const std::vector<double>& values) {
  return IsotonicNonIncreasing(values,
                               std::vector<double>(values.size(), 1.0));
}

}  // namespace mbp::optim

#ifndef MBP_OPTIM_SIMPLEX_H_
#define MBP_OPTIM_SIMPLEX_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::optim {

// A linear program in inequality form:
//
//   maximize    c^T x
//   subject to  A x <= b
//               x >= 0
//
// b entries may be negative (the solver introduces artificial variables and
// runs phase 1 as needed). Equality rows can be encoded as a pair of
// opposing inequalities.
struct LinearProgram {
  linalg::Vector objective;    // c, length n
  linalg::Matrix constraints;  // A, m x n
  linalg::Vector rhs;          // b, length m
};

struct LpSolution {
  linalg::Vector x;
  double objective_value = 0.0;
};

// Dense two-phase primal simplex with Bland's anti-cycling rule.
// Returns:
//   Infeasible           - the feasible region is empty,
//   OutOfRange           - the objective is unbounded above,
//   InvalidArgument      - dimension mismatches.
// Intended for the small/medium LPs of the pricing optimizer (tens to a few
// hundred variables), not industrial-scale problems.
StatusOr<LpSolution> SolveLinearProgram(const LinearProgram& lp);

}  // namespace mbp::optim

#endif  // MBP_OPTIM_SIMPLEX_H_

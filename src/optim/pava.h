#ifndef MBP_OPTIM_PAVA_H_
#define MBP_OPTIM_PAVA_H_

#include <vector>

namespace mbp::optim {

// Weighted isotonic regression by the Pool-Adjacent-Violators Algorithm.
//
// Returns the x that minimizes sum_i weights[i] * (x[i] - values[i])^2
// subject to x[0] <= x[1] <= ... <= x[n-1]. All weights must be > 0.
// Runs in O(n).
std::vector<double> IsotonicNonDecreasing(const std::vector<double>& values,
                                          const std::vector<double>& weights);

// Same but subject to x[0] >= x[1] >= ... >= x[n-1].
std::vector<double> IsotonicNonIncreasing(const std::vector<double>& values,
                                          const std::vector<double>& weights);

// Unweighted conveniences (all weights 1).
std::vector<double> IsotonicNonDecreasing(const std::vector<double>& values);
std::vector<double> IsotonicNonIncreasing(const std::vector<double>& values);

}  // namespace mbp::optim

#endif  // MBP_OPTIM_PAVA_H_

#ifndef MBP_ML_MODEL_H_
#define MBP_ML_MODEL_H_

#include <string>

#include "data/dataset.h"
#include "linalg/vector.h"

namespace mbp::ml {

// The ML model families the broker's menu M supports (paper Table 2).
// All are linear hypotheses h in R^d; they differ in training loss.
enum class ModelKind {
  kLinearRegression,  // square loss
  kLogisticRegression,
  kLinearSvm,  // smoothed L2 hinge
};

std::string ModelKindToString(ModelKind kind);

// A trained (or noise-injected) linear model instance: the concrete object
// the marketplace sells. Value-semantic and cheap to copy, so broker code
// can freely clone and perturb instances.
class LinearModel {
 public:
  LinearModel(ModelKind kind, linalg::Vector coefficients)
      : kind_(kind), coefficients_(std::move(coefficients)) {}

  ModelKind kind() const { return kind_; }
  size_t num_features() const { return coefficients_.size(); }
  const linalg::Vector& coefficients() const { return coefficients_; }
  linalg::Vector& coefficients() { return coefficients_; }

  // Raw score h.x for the feature row `x` of length num_features().
  double Score(const double* x) const;

  // For classification models: sign of the score, in {-1, +1}.
  double PredictLabel(const double* x) const {
    return Score(x) > 0.0 ? 1.0 : -1.0;
  }

  // Scores every example of `data` (length = data.num_examples()).
  linalg::Vector ScoreAll(const data::Dataset& data) const;

 private:
  ModelKind kind_;
  linalg::Vector coefficients_;
};

}  // namespace mbp::ml

#endif  // MBP_ML_MODEL_H_

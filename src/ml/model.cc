#include "ml/model.h"

#include "common/check.h"
#include "linalg/vector_ops.h"

namespace mbp::ml {

std::string ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return "linear_regression";
    case ModelKind::kLogisticRegression:
      return "logistic_regression";
    case ModelKind::kLinearSvm:
      return "linear_svm";
  }
  return "unknown";
}

double LinearModel::Score(const double* x) const {
  return linalg::Dot(x, coefficients_.data(), coefficients_.size());
}

linalg::Vector LinearModel::ScoreAll(const data::Dataset& data) const {
  MBP_CHECK_EQ(data.num_features(), num_features());
  linalg::Vector scores(data.num_examples());
  for (size_t i = 0; i < data.num_examples(); ++i) {
    scores[i] = Score(data.ExampleFeatures(i));
  }
  return scores;
}

}  // namespace mbp::ml

#ifndef MBP_ML_LOSS_H_
#define MBP_ML_LOSS_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::ml {

// Identifiers for the error functions of the paper's Table 2.
enum class LossKind {
  kSquare,         // least squares (regression), optionally L2-regularized
  kLogistic,       // logistic loss (classification), optionally L2
  kSmoothedHinge,  // smoothed L2-SVM hinge loss
  kZeroOne,        // misclassification rate (evaluation only)
};

std::string LossKindToString(LossKind kind);

// An error function λ or ε from the paper: maps a hypothesis h (a linear
// model's coefficient vector) and a dataset to a non-negative average loss.
//
// Hypotheses are vectors in R^d where d is the dataset's feature count, per
// the paper's fixed-hypothesis-space setting (Section 3.4). All losses are
// averaged over the examples. The L2 penalty, when present, adds
// l2 * ||h||^2 exactly as in Table 2.
class Loss {
 public:
  virtual ~Loss() = default;

  virtual std::string name() const = 0;
  virtual LossKind kind() const = 0;

  // Whether Gradient()/Hessian() are implemented.
  virtual bool differentiable() const = 0;

  // Whether the loss is strictly convex in h. (True for square loss with
  // full-rank data, and for logistic/hinge whenever l2 > 0; the error
  // transformation theory of Theorem 4 requires this for invertibility.)
  virtual bool strictly_convex() const = 0;

  // Average loss of hypothesis h on `data`. Requires
  // h.size() == data.num_features().
  virtual double Evaluate(const linalg::Vector& h,
                          const data::Dataset& data) const = 0;

  // Gradient of Evaluate w.r.t. h. Checked programming error if
  // !differentiable().
  virtual linalg::Vector Gradient(const linalg::Vector& h,
                                  const data::Dataset& data) const;

  // Hessian of Evaluate w.r.t. h (d x d). Checked programming error if
  // !differentiable().
  virtual linalg::Matrix Hessian(const linalg::Vector& h,
                                 const data::Dataset& data) const;

  // Adds `weight` times the gradient of the UNREGULARIZED per-example
  // loss at (x, y) into `grad` (x has h.size() entries). The mini-batch
  // SGD trainer builds stochastic gradients from this without copying
  // rows. Checked programming error if !differentiable().
  virtual void AccumulateExampleGradient(const linalg::Vector& h,
                                         const double* x, double y,
                                         double weight,
                                         linalg::Vector& grad) const;

  double l2_regularization() const { return l2_; }

 protected:
  explicit Loss(double l2) : l2_(l2) {}

  double l2_;
};

// (1/2n) sum_i (y_i - h.x_i)^2 + l2 * ||h||^2.
class SquareLoss final : public Loss {
 public:
  explicit SquareLoss(double l2 = 0.0) : Loss(l2) {}

  std::string name() const override { return "square"; }
  LossKind kind() const override { return LossKind::kSquare; }
  bool differentiable() const override { return true; }
  bool strictly_convex() const override { return true; }

  double Evaluate(const linalg::Vector& h,
                  const data::Dataset& data) const override;
  linalg::Vector Gradient(const linalg::Vector& h,
                          const data::Dataset& data) const override;
  linalg::Matrix Hessian(const linalg::Vector& h,
                         const data::Dataset& data) const override;
  void AccumulateExampleGradient(const linalg::Vector& h, const double* x,
                                 double y, double weight,
                                 linalg::Vector& grad) const override;
};

// (1/n) sum_i log(1 + exp(-y_i h.x_i)) + l2 * ||h||^2, labels in {-1,+1}.
class LogisticLoss final : public Loss {
 public:
  explicit LogisticLoss(double l2 = 0.0) : Loss(l2) {}

  std::string name() const override { return "logistic"; }
  LossKind kind() const override { return LossKind::kLogistic; }
  bool differentiable() const override { return true; }
  bool strictly_convex() const override { return l2_ > 0.0; }

  double Evaluate(const linalg::Vector& h,
                  const data::Dataset& data) const override;
  linalg::Vector Gradient(const linalg::Vector& h,
                          const data::Dataset& data) const override;
  linalg::Matrix Hessian(const linalg::Vector& h,
                         const data::Dataset& data) const override;
  void AccumulateExampleGradient(const linalg::Vector& h, const double* x,
                                 double y, double weight,
                                 linalg::Vector& grad) const override;
};

// Quadratically smoothed hinge (the differentiable surrogate for the L2
// linear SVM of Table 2): per-example loss on margin m = y_i h.x_i is
//   0                      if m >= 1
//   (1 - m)^2 / (2*gamma)  if 1 - gamma < m < 1
//   1 - m - gamma/2        if m <= 1 - gamma
// averaged, plus l2 * ||h||^2.
class SmoothedHingeLoss final : public Loss {
 public:
  explicit SmoothedHingeLoss(double l2 = 0.0, double gamma = 1.0);

  std::string name() const override { return "smoothed_hinge"; }
  LossKind kind() const override { return LossKind::kSmoothedHinge; }
  bool differentiable() const override { return true; }
  bool strictly_convex() const override { return l2_ > 0.0; }

  double Evaluate(const linalg::Vector& h,
                  const data::Dataset& data) const override;
  linalg::Vector Gradient(const linalg::Vector& h,
                          const data::Dataset& data) const override;
  void AccumulateExampleGradient(const linalg::Vector& h, const double* x,
                                 double y, double weight,
                                 linalg::Vector& grad) const override;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

// (1/n) sum_i 1[sign(h.x_i) != y_i]. Evaluation-only (not differentiable,
// not convex); the paper uses it as a buyer-facing ε for classifiers.
class ZeroOneLoss final : public Loss {
 public:
  ZeroOneLoss() : Loss(0.0) {}

  std::string name() const override { return "zero_one"; }
  LossKind kind() const override { return LossKind::kZeroOne; }
  bool differentiable() const override { return false; }
  bool strictly_convex() const override { return false; }

  double Evaluate(const linalg::Vector& h,
                  const data::Dataset& data) const override;
};

// Factory keyed by LossKind. `l2` is ignored for kZeroOne.
std::unique_ptr<Loss> MakeLoss(LossKind kind, double l2 = 0.0);

}  // namespace mbp::ml

#endif  // MBP_ML_LOSS_H_

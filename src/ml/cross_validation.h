#ifndef MBP_ML_CROSS_VALIDATION_H_
#define MBP_ML_CROSS_VALIDATION_H_

#include <vector>

#include "common/statusor.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "ml/loss.h"
#include "ml/trainer.h"
#include "random/rng.h"

namespace mbp::ml {

// K-fold cross-validation. The broker uses this to pick the L2 strength of
// the training objective λ before listing a model: the paper fixes the
// hypothesis space and objective per listing (Section 3.4), but choosing
// λ's regularizer is the broker's job and wants a data-driven default.

struct CrossValidationResult {
  std::vector<double> fold_errors;  // held-out error per fold
  double mean_error = 0.0;
  double stddev_error = 0.0;
};

// Trains `model` with TrainOptimalModel on k-1 folds and scores
// `eval_loss` on the held-out fold, for each of `folds` folds (>= 2).
// The fold assignment is a seeded random permutation. Folds train
// concurrently per `parallel`; each fold is deterministic and writes its
// own result slot, so the output is identical at any thread count.
StatusOr<CrossValidationResult> KFoldCrossValidate(
    ModelKind model, const data::Dataset& dataset, double l2,
    const Loss& eval_loss, size_t folds, random::Rng& rng,
    const ParallelConfig& parallel = {});

// Returns the candidate l2 with the lowest mean cross-validated error.
// `candidates` must be non-empty; every candidate is evaluated with the
// same fold assignment so the comparison is paired.
StatusOr<double> SelectL2ByCrossValidation(
    ModelKind model, const data::Dataset& dataset,
    const std::vector<double>& candidates, const Loss& eval_loss,
    size_t folds, random::Rng& rng, const ParallelConfig& parallel = {});

}  // namespace mbp::ml

#endif  // MBP_ML_CROSS_VALIDATION_H_

#include "ml/trainer.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace mbp::ml {
namespace {

// Armijo sufficient-decrease backtracking along `direction` from h.
// Returns the accepted step (possibly 0 when no decrease is found).
double BacktrackingStep(const Loss& loss, const data::Dataset& train,
                        const linalg::Vector& h, double current_loss,
                        const linalg::Vector& gradient,
                        const linalg::Vector& direction,
                        double initial_step) {
  constexpr double kArmijoC = 1e-4;
  constexpr double kShrink = 0.5;
  constexpr int kMaxBacktracks = 50;
  const double directional_derivative = linalg::Dot(gradient, direction);
  double step = initial_step;
  for (int i = 0; i < kMaxBacktracks; ++i) {
    const linalg::Vector candidate = linalg::AddScaled(h, step, direction);
    const double candidate_loss = loss.Evaluate(candidate, train);
    if (candidate_loss <=
        current_loss + kArmijoC * step * directional_derivative) {
      return step;
    }
    step *= kShrink;
  }
  return 0.0;
}

Status ValidateTrainInputs(const Loss& loss, const data::Dataset& train) {
  if (!loss.differentiable()) {
    return InvalidArgumentError("training requires a differentiable loss");
  }
  if (train.num_examples() == 0) {
    return InvalidArgumentError("empty training set");
  }
  return Status::OK();
}

}  // namespace

LossKind TrainingLossKind(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return LossKind::kSquare;
    case ModelKind::kLogisticRegression:
      return LossKind::kLogistic;
    case ModelKind::kLinearSvm:
      return LossKind::kSmoothedHinge;
  }
  MBP_CHECK(false) << "unknown ModelKind";
  return LossKind::kSquare;
}

StatusOr<TrainResult> TrainLinearRegression(const data::Dataset& train,
                                            double l2,
                                            SufficientStatsCache* cache) {
  if (train.task() != data::TaskType::kRegression) {
    return InvalidArgumentError(
        "linear regression requires a regression dataset");
  }
  // The statistics pass (Gram matrix + X^T y) is the O(n d^2) cost of this
  // trainer; the cache pays it once per dataset. A cache hit returns the
  // exact object a cold build computes, so the two paths are bit-identical.
  std::shared_ptr<const SufficientStats> cached;
  SufficientStats local;
  const SufficientStats* stats;
  if (cache != nullptr) {
    cached = cache->GetOrBuild(train);
    stats = cached.get();
  } else {
    local = SufficientStats::Build(train);
    stats = &local;
  }
  auto solved = SolveNormalEquations(*stats, l2, cache);
  if (!solved.ok()) return solved.status();
  LinearModel model(ModelKind::kLinearRegression, std::move(solved).value());
  const SquareLoss loss(l2);
  TrainResult result{.model = std::move(model),
                     .final_loss = 0.0,
                     .iterations = 1,
                     .converged = true};
  result.final_loss = loss.Evaluate(result.model.coefficients(), train);
  return result;
}

StatusOr<TrainResult> TrainLinearRegressionFromStats(
    const SufficientStats& stats, double l2, SufficientStatsCache* cache) {
  if (stats.n == 0) {
    return InvalidArgumentError("empty sufficient statistics");
  }
  auto solved = SolveNormalEquations(stats, l2, cache);
  if (!solved.ok()) return solved.status();
  LinearModel model(ModelKind::kLinearRegression, std::move(solved).value());
  TrainResult result{.model = std::move(model),
                     .final_loss = 0.0,
                     .iterations = 1,
                     .converged = true};
  result.final_loss =
      SquareLossFromStats(stats, result.model.coefficients(), l2);
  return result;
}

StatusOr<TrainResult> TrainGradientDescent(const Loss& loss,
                                           const data::Dataset& train,
                                           ModelKind kind,
                                           const TrainOptions& options) {
  MBP_RETURN_IF_ERROR(ValidateTrainInputs(loss, train));
  linalg::Vector h(train.num_features());
  double current_loss = loss.Evaluate(h, train);
  size_t iteration = 0;
  bool converged = false;
  for (; iteration < options.max_iterations; ++iteration) {
    const linalg::Vector gradient = loss.Gradient(h, train);
    if (linalg::NormInf(gradient) < options.gradient_tolerance) {
      converged = true;
      break;
    }
    const linalg::Vector direction = linalg::Scaled(gradient, -1.0);
    const double step =
        BacktrackingStep(loss, train, h, current_loss, gradient, direction,
                         options.initial_step);
    if (step == 0.0) break;  // line search failed; we are at numerical floor
    h = linalg::AddScaled(h, step, direction);
    current_loss = loss.Evaluate(h, train);
  }
  return TrainResult{.model = LinearModel(kind, std::move(h)),
                     .final_loss = current_loss,
                     .iterations = iteration,
                     .converged = converged};
}

StatusOr<TrainResult> TrainNewton(const Loss& loss,
                                  const data::Dataset& train, ModelKind kind,
                                  const TrainOptions& options) {
  MBP_RETURN_IF_ERROR(ValidateTrainInputs(loss, train));
  linalg::Vector h(train.num_features());
  double current_loss = loss.Evaluate(h, train);
  size_t iteration = 0;
  bool converged = false;
  for (; iteration < options.max_iterations; ++iteration) {
    const linalg::Vector gradient = loss.Gradient(h, train);
    if (linalg::NormInf(gradient) < options.gradient_tolerance) {
      converged = true;
      break;
    }
    const linalg::Matrix hessian = loss.Hessian(h, train);
    const linalg::Vector neg_gradient = linalg::Scaled(gradient, -1.0);
    // Small diagonal jitter keeps the solve stable near-singular Hessians;
    // on failure fall back to plain gradient descent for this step.
    auto newton = linalg::SolveSpd(hessian, neg_gradient, 1e-10);
    const linalg::Vector direction =
        newton.ok() ? std::move(newton).value() : neg_gradient;
    const double step = BacktrackingStep(loss, train, h, current_loss,
                                         gradient, direction, 1.0);
    if (step == 0.0) break;
    h = linalg::AddScaled(h, step, direction);
    current_loss = loss.Evaluate(h, train);
  }
  return TrainResult{.model = LinearModel(kind, std::move(h)),
                     .final_loss = current_loss,
                     .iterations = iteration,
                     .converged = converged};
}

StatusOr<TrainResult> TrainOptimalModel(ModelKind kind,
                                        const data::Dataset& train,
                                        double l2,
                                        const TrainOptions& options) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return TrainLinearRegression(train, l2);
    case ModelKind::kLogisticRegression: {
      if (train.task() != data::TaskType::kBinaryClassification) {
        return InvalidArgumentError(
            "logistic regression requires a classification dataset");
      }
      const LogisticLoss loss(l2);
      return TrainNewton(loss, train, kind, options);
    }
    case ModelKind::kLinearSvm: {
      if (train.task() != data::TaskType::kBinaryClassification) {
        return InvalidArgumentError(
            "linear SVM requires a classification dataset");
      }
      const SmoothedHingeLoss loss(l2);
      return TrainGradientDescent(loss, train, kind, options);
    }
  }
  return InvalidArgumentError("unknown model kind");
}

}  // namespace mbp::ml

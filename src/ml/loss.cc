#include "ml/loss.h"

#include <cmath>

#include "common/check.h"
#include "linalg/vector_ops.h"

namespace mbp::ml {
namespace {

// Numerically stable log(1 + exp(z)).
double Log1pExp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

// Stable logistic sigmoid 1 / (1 + exp(-z)).
double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

std::string LossKindToString(LossKind kind) {
  switch (kind) {
    case LossKind::kSquare:
      return "square";
    case LossKind::kLogistic:
      return "logistic";
    case LossKind::kSmoothedHinge:
      return "smoothed_hinge";
    case LossKind::kZeroOne:
      return "zero_one";
  }
  return "unknown";
}

linalg::Vector Loss::Gradient(const linalg::Vector&,
                              const data::Dataset&) const {
  MBP_CHECK(false) << "Gradient() called on non-differentiable loss "
                   << name();
  return linalg::Vector();
}

linalg::Matrix Loss::Hessian(const linalg::Vector&,
                             const data::Dataset&) const {
  MBP_CHECK(false) << "Hessian() not implemented for loss " << name();
  return linalg::Matrix();
}

void Loss::AccumulateExampleGradient(const linalg::Vector&, const double*,
                                     double, double,
                                     linalg::Vector&) const {
  MBP_CHECK(false)
      << "AccumulateExampleGradient() called on non-differentiable loss "
      << name();
}

// ---------------------------------------------------------------- Square

double SquareLoss::Evaluate(const linalg::Vector& h,
                            const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double residual =
        data.Target(i) -
        linalg::Dot(data.ExampleFeatures(i), h.data(), h.size());
    total += residual * residual;
  }
  return total / (2.0 * static_cast<double>(n)) +
         l2_ * linalg::SquaredNorm2(h);
}

linalg::Vector SquareLoss::Gradient(const linalg::Vector& h,
                                    const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  linalg::Vector grad(h.size());
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.ExampleFeatures(i);
    const double residual =
        linalg::Dot(x, h.data(), h.size()) - data.Target(i);
    linalg::Axpy(residual, x, grad.data(), h.size());
  }
  linalg::Scale(1.0 / static_cast<double>(n), grad.data(), grad.size());
  linalg::Axpy(2.0 * l2_, h.data(), grad.data(), h.size());
  return grad;
}

linalg::Matrix SquareLoss::Hessian(const linalg::Vector& h,
                                   const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  linalg::Matrix hessian = linalg::GramMatrix(data.features());
  for (size_t i = 0; i < hessian.rows(); ++i) {
    for (size_t j = 0; j < hessian.cols(); ++j) {
      hessian(i, j) /= static_cast<double>(n);
    }
    hessian(i, i) += 2.0 * l2_;
  }
  return hessian;
}

void SquareLoss::AccumulateExampleGradient(const linalg::Vector& h,
                                           const double* x, double y,
                                           double weight,
                                           linalg::Vector& grad) const {
  // Per-example loss (h.x - y)^2 / 2; gradient (h.x - y) x.
  const double residual = linalg::Dot(x, h.data(), h.size()) - y;
  linalg::Axpy(weight * residual, x, grad.data(), h.size());
}

// -------------------------------------------------------------- Logistic

double LogisticLoss::Evaluate(const linalg::Vector& h,
                              const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double margin =
        data.Target(i) *
        linalg::Dot(data.ExampleFeatures(i), h.data(), h.size());
    total += Log1pExp(-margin);
  }
  return total / static_cast<double>(n) + l2_ * linalg::SquaredNorm2(h);
}

linalg::Vector LogisticLoss::Gradient(const linalg::Vector& h,
                                      const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  linalg::Vector grad(h.size());
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.ExampleFeatures(i);
    const double y = data.Target(i);
    const double margin = y * linalg::Dot(x, h.data(), h.size());
    // d/dh log(1+e^{-m}) = -y * sigmoid(-m) * x.
    linalg::Axpy(-y * Sigmoid(-margin), x, grad.data(), h.size());
  }
  linalg::Scale(1.0 / static_cast<double>(n), grad.data(), grad.size());
  linalg::Axpy(2.0 * l2_, h.data(), grad.data(), h.size());
  return grad;
}

linalg::Matrix LogisticLoss::Hessian(const linalg::Vector& h,
                                     const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  const size_t d = h.size();
  linalg::Matrix hessian(d, d);
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.ExampleFeatures(i);
    const double margin =
        data.Target(i) * linalg::Dot(x, h.data(), d);
    const double p = Sigmoid(margin);
    const double weight = p * (1.0 - p) / static_cast<double>(n);
    if (weight == 0.0) continue;
    // Lower-triangle rank-1 update weight * x x^T.
    for (size_t a = 0; a < d; ++a) {
      const double wa = weight * x[a];
      if (wa == 0.0) continue;
      double* row = hessian.RowData(a);
      for (size_t b = 0; b <= a; ++b) row[b] += wa * x[b];
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) hessian(a, b) = hessian(b, a);
    hessian(a, a) += 2.0 * l2_;
  }
  return hessian;
}

void LogisticLoss::AccumulateExampleGradient(const linalg::Vector& h,
                                             const double* x, double y,
                                             double weight,
                                             linalg::Vector& grad) const {
  const double margin = y * linalg::Dot(x, h.data(), h.size());
  linalg::Axpy(-weight * y * Sigmoid(-margin), x, grad.data(), h.size());
}

// -------------------------------------------------------- Smoothed hinge

SmoothedHingeLoss::SmoothedHingeLoss(double l2, double gamma)
    : Loss(l2), gamma_(gamma) {
  MBP_CHECK_GT(gamma_, 0.0);
}

double SmoothedHingeLoss::Evaluate(const linalg::Vector& h,
                                   const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double margin =
        data.Target(i) *
        linalg::Dot(data.ExampleFeatures(i), h.data(), h.size());
    if (margin >= 1.0) continue;
    const double gap = 1.0 - margin;
    if (gap < gamma_) {
      total += gap * gap / (2.0 * gamma_);
    } else {
      total += gap - gamma_ / 2.0;
    }
  }
  return total / static_cast<double>(n) + l2_ * linalg::SquaredNorm2(h);
}

linalg::Vector SmoothedHingeLoss::Gradient(const linalg::Vector& h,
                                           const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  linalg::Vector grad(h.size());
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.ExampleFeatures(i);
    const double y = data.Target(i);
    const double margin = y * linalg::Dot(x, h.data(), h.size());
    if (margin >= 1.0) continue;
    const double gap = 1.0 - margin;
    const double slope = (gap < gamma_) ? gap / gamma_ : 1.0;
    linalg::Axpy(-y * slope, x, grad.data(), h.size());
  }
  linalg::Scale(1.0 / static_cast<double>(n), grad.data(), grad.size());
  linalg::Axpy(2.0 * l2_, h.data(), grad.data(), h.size());
  return grad;
}

void SmoothedHingeLoss::AccumulateExampleGradient(
    const linalg::Vector& h, const double* x, double y, double weight,
    linalg::Vector& grad) const {
  const double margin = y * linalg::Dot(x, h.data(), h.size());
  if (margin >= 1.0) return;
  const double gap = 1.0 - margin;
  const double slope = (gap < gamma_) ? gap / gamma_ : 1.0;
  linalg::Axpy(-weight * y * slope, x, grad.data(), h.size());
}

// --------------------------------------------------------------- 0/1

double ZeroOneLoss::Evaluate(const linalg::Vector& h,
                             const data::Dataset& data) const {
  MBP_CHECK_EQ(h.size(), data.num_features());
  const size_t n = data.num_examples();
  size_t errors = 0;
  for (size_t i = 0; i < n; ++i) {
    const double score =
        linalg::Dot(data.ExampleFeatures(i), h.data(), h.size());
    const double predicted = score > 0.0 ? 1.0 : -1.0;
    if (predicted != data.Target(i)) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(n);
}

std::unique_ptr<Loss> MakeLoss(LossKind kind, double l2) {
  switch (kind) {
    case LossKind::kSquare:
      return std::make_unique<SquareLoss>(l2);
    case LossKind::kLogistic:
      return std::make_unique<LogisticLoss>(l2);
    case LossKind::kSmoothedHinge:
      return std::make_unique<SmoothedHingeLoss>(l2);
    case LossKind::kZeroOne:
      return std::make_unique<ZeroOneLoss>();
  }
  MBP_CHECK(false) << "unknown LossKind";
  return nullptr;
}

}  // namespace mbp::ml

#ifndef MBP_ML_SUFFICIENT_STATS_H_
#define MBP_ML_SUFFICIENT_STATS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/statusor.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::ml {

// The sufficient statistics of least-squares training on a dataset
// (X, y): everything the closed-form trainer, the square loss, and the
// analytic error transform need, with the O(n d^2) pass over the examples
// paid exactly once. The MBP pipeline re-trains on the SAME dataset over
// and over — every l2 candidate, every Monte-Carlo noise draw, every curve
// point — and each retrain is an O(d^3) solve from these statistics
// instead of a fresh pass over the n examples.
struct SufficientStats {
  linalg::Matrix gram;  // X^T X (d x d)
  linalg::Vector xty;   // X^T y (d)
  double yty = 0.0;     // y^T y
  size_t n = 0;         // examples the stats were accumulated over
  // data::Dataset::stats_key() of the source dataset, or 0 when the stats
  // do not correspond to a live dataset (e.g. after Downdate). Key-0 stats
  // are never cached.
  uint64_t dataset_key = 0;

  // One pass over `dataset` with the dispatched SIMD kernels. Bit-identical
  // for any `parallel` (GramMatrix / MatTVec determinism contract).
  static SufficientStats Build(const data::Dataset& dataset,
                               const ParallelConfig& parallel = {});

  // Statistics of `full` (the dataset these stats were built from) with the
  // rows listed in `removed` taken out — the leave-fold-out rank-k
  // downdate used by k-fold cross-validation:
  //   gram' = gram - sum_r x_r x_r^T,  xty' = xty - sum_r y_r x_r.
  // The removed block's own statistics are accumulated first (in `removed`
  // order) and subtracted in one step, so each entry pays a single
  // cancellation. Cost O(|removed| d^2) against O((n - |removed|) d^2) for
  // rebuilding from scratch. The result carries dataset_key 0.
  SufficientStats Downdate(const data::Dataset& full,
                           const std::vector<size_t>& removed) const;
};

// Solves the regularized normal equations
//   (gram / n + 2 l2 I) h = xty / n
// — the system TrainLinearRegression poses — from precomputed statistics.
// FailedPrecondition when the system is not positive definite (singular
// Gram with l2 == 0). When `cache` is non-null and the stats carry a live
// dataset_key, the Cholesky factor is memoized per (dataset_key, l2), so
// repeat solves (noise sweeps, curve points) skip even the O(d^3) step.
StatusOr<linalg::Vector> SolveNormalEquations(const SufficientStats& stats,
                                              double l2,
                                              class SufficientStatsCache*
                                                  cache = nullptr);

// The square loss (1 / 2n) ||y - X h||^2 + l2 ||h||^2 evaluated from the
// statistics in O(d^2), via
//   ||y - X h||^2 = y^T y - 2 h . (X^T y) + h . (gram h).
// Equal to SquareLoss::Evaluate on the source dataset up to rounding (the
// expansion sums in a different order), NOT bitwise.
double SquareLossFromStats(const SufficientStats& stats,
                           const linalg::Vector& h, double l2);

// Process-wide memo for sufficient statistics and Cholesky factors, keyed
// by data::Dataset::stats_key() (and l2 for factors). Datasets are
// immutable after Create and keys are process-unique, so entries can never
// go stale — "invalidation" is only FIFO eviction once `capacity` distinct
// datasets have been seen (evicting a dataset also drops its factors).
//
// Determinism: a hit returns the exact object a miss would have computed
// (Build and Factorize are deterministic), so cached and cold paths are
// bit-identical; see the exactness gate in bench_kernels.
//
// Thread-safe. Builds run outside the lock: two threads racing on the same
// key may both compute, but they compute identical values and the first
// insert wins.
class SufficientStatsCache {
 public:
  explicit SufficientStatsCache(size_t capacity = 64);

  // The cached stats for `dataset`, building (and inserting) on miss.
  std::shared_ptr<const SufficientStats> GetOrBuild(
      const data::Dataset& dataset, const ParallelConfig& parallel = {});

  // The memoized Cholesky factor of (gram / n + 2 l2 I). Stats with
  // dataset_key 0 (downdates) are factorized but never cached.
  StatusOr<std::shared_ptr<const linalg::Cholesky>> FactorFor(
      const SufficientStats& stats, double l2);

  struct Counters {
    size_t stats_hits = 0;
    size_t stats_misses = 0;
    size_t factor_hits = 0;
    size_t factor_misses = 0;
  };
  Counters counters() const;

  void Clear();

  // The process-wide cache the trainer defaults to.
  static SufficientStatsCache& Shared();

 private:
  void EvictIfNeededLocked();

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::map<uint64_t, std::shared_ptr<const SufficientStats>> stats_;
  std::deque<uint64_t> stats_order_;  // insertion order, for FIFO eviction
  // Factor key: (dataset_key, bit pattern of l2).
  std::map<std::pair<uint64_t, uint64_t>,
           std::shared_ptr<const linalg::Cholesky>>
      factors_;
  Counters counters_;
};

}  // namespace mbp::ml

#endif  // MBP_ML_SUFFICIENT_STATS_H_

#include "ml/sgd.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "linalg/vector_ops.h"
#include "random/rng.h"

namespace mbp::ml {

StatusOr<TrainResult> TrainSgd(const Loss& loss, const data::Dataset& train,
                               ModelKind kind, const SgdOptions& options) {
  if (!loss.differentiable()) {
    return InvalidArgumentError("SGD requires a differentiable loss");
  }
  if (options.batch_size == 0) {
    return InvalidArgumentError("batch_size must be >= 1");
  }
  if (train.num_examples() == 0) {
    return InvalidArgumentError("empty training set");
  }

  const size_t n = train.num_examples();
  const size_t d = train.num_features();
  const double l2 = loss.l2_regularization();
  random::Rng rng(options.seed);

  linalg::Vector h(d);
  linalg::Vector batch_grad(d);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});

  size_t epoch = 0;
  bool converged = false;
  for (; epoch < options.max_epochs; ++epoch) {
    // Fisher-Yates reshuffle per epoch.
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    const double step =
        options.initial_step /
        (1.0 + options.step_decay * static_cast<double>(epoch));

    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(start + options.batch_size, n);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      std::fill(batch_grad.begin(), batch_grad.end(), 0.0);
      for (size_t i = start; i < end; ++i) {
        const size_t row = order[i];
        loss.AccumulateExampleGradient(h, train.ExampleFeatures(row),
                                       train.Target(row), inv_batch,
                                       batch_grad);
      }
      // The L2 term's gradient is deterministic; apply it per batch.
      linalg::Axpy(2.0 * l2, h.data(), batch_grad.data(), d);
      linalg::Axpy(-step, batch_grad.data(), h.data(), d);
    }

    if (options.gradient_tolerance > 0.0) {
      const linalg::Vector full_gradient = loss.Gradient(h, train);
      if (linalg::NormInf(full_gradient) < options.gradient_tolerance) {
        converged = true;
        break;
      }
    }
  }

  const double final_loss = loss.Evaluate(h, train);
  return TrainResult{.model = LinearModel(kind, std::move(h)),
                     .final_loss = final_loss,
                     .iterations = epoch,
                     .converged = converged};
}

}  // namespace mbp::ml

#include "ml/sparse_trainer.h"

#include <cmath>
#include <functional>

#include "linalg/vector_ops.h"

namespace mbp::ml {
namespace {

double Log1pExp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// Objective/gradient pair over sparse data; both cost O(nnz).
struct SparseObjective {
  std::function<double(const linalg::Vector&)> value;
  std::function<linalg::Vector(const linalg::Vector&)> gradient;
};

SparseObjective LogisticObjective(const data::SparseDataset& train,
                                  double l2) {
  const size_t n = train.num_examples();
  SparseObjective objective;
  objective.value = [&train, l2, n](const linalg::Vector& h) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double margin =
          train.Target(i) * train.features().RowDot(i, h);
      total += Log1pExp(-margin);
    }
    return total / static_cast<double>(n) + l2 * linalg::SquaredNorm2(h);
  };
  objective.gradient = [&train, l2, n](const linalg::Vector& h) {
    // weights_i = -y_i * sigmoid(-y_i h.x_i) / n; grad = X^T weights + 2*l2*h.
    linalg::Vector weights(n);
    for (size_t i = 0; i < n; ++i) {
      const double y = train.Target(i);
      const double margin = y * train.features().RowDot(i, h);
      weights[i] = -y * Sigmoid(-margin) / static_cast<double>(n);
    }
    linalg::Vector grad = train.features().TransposeMultiply(weights);
    linalg::Axpy(2.0 * l2, h.data(), grad.data(), grad.size());
    return grad;
  };
  return objective;
}

SparseObjective HingeObjective(const data::SparseDataset& train, double l2,
                               double gamma) {
  const size_t n = train.num_examples();
  SparseObjective objective;
  objective.value = [&train, l2, gamma, n](const linalg::Vector& h) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double margin =
          train.Target(i) * train.features().RowDot(i, h);
      if (margin >= 1.0) continue;
      const double gap = 1.0 - margin;
      total += gap < gamma ? gap * gap / (2.0 * gamma) : gap - gamma / 2.0;
    }
    return total / static_cast<double>(n) + l2 * linalg::SquaredNorm2(h);
  };
  objective.gradient = [&train, l2, gamma, n](const linalg::Vector& h) {
    linalg::Vector weights(n);
    for (size_t i = 0; i < n; ++i) {
      const double y = train.Target(i);
      const double margin = y * train.features().RowDot(i, h);
      if (margin >= 1.0) continue;
      const double gap = 1.0 - margin;
      const double slope = gap < gamma ? gap / gamma : 1.0;
      weights[i] = -y * slope / static_cast<double>(n);
    }
    linalg::Vector grad = train.features().TransposeMultiply(weights);
    linalg::Axpy(2.0 * l2, h.data(), grad.data(), grad.size());
    return grad;
  };
  return objective;
}

StatusOr<TrainResult> MinimizeSparse(const SparseObjective& objective,
                                     size_t dim, ModelKind kind,
                                     const TrainOptions& options) {
  constexpr double kArmijoC = 1e-4;
  constexpr double kShrink = 0.5;
  constexpr int kMaxBacktracks = 50;

  linalg::Vector h(dim);
  double current = objective.value(h);
  size_t iteration = 0;
  bool converged = false;
  for (; iteration < options.max_iterations; ++iteration) {
    const linalg::Vector gradient = objective.gradient(h);
    if (linalg::NormInf(gradient) < options.gradient_tolerance) {
      converged = true;
      break;
    }
    const double directional = -linalg::SquaredNorm2(gradient);
    double step = options.initial_step;
    bool accepted = false;
    for (int backtrack = 0; backtrack < kMaxBacktracks; ++backtrack) {
      const linalg::Vector candidate =
          linalg::AddScaled(h, -step, gradient);
      const double value = objective.value(candidate);
      if (value <= current + kArmijoC * step * directional) {
        h = candidate;
        current = value;
        accepted = true;
        break;
      }
      step *= kShrink;
    }
    if (!accepted) break;  // numerical floor
  }
  return TrainResult{.model = LinearModel(kind, std::move(h)),
                     .final_loss = current,
                     .iterations = iteration,
                     .converged = converged};
}

Status ValidateSparseTrain(const data::SparseDataset& train) {
  if (train.task() != data::TaskType::kBinaryClassification) {
    return InvalidArgumentError(
        "sparse trainers support classification datasets");
  }
  return Status::OK();
}

}  // namespace

StatusOr<TrainResult> TrainLogisticSparse(const data::SparseDataset& train,
                                          double l2,
                                          const TrainOptions& options) {
  MBP_RETURN_IF_ERROR(ValidateSparseTrain(train));
  return MinimizeSparse(LogisticObjective(train, l2),
                        train.num_features(),
                        ModelKind::kLogisticRegression, options);
}

StatusOr<TrainResult> TrainSvmSparse(const data::SparseDataset& train,
                                     double l2,
                                     const TrainOptions& options) {
  MBP_RETURN_IF_ERROR(ValidateSparseTrain(train));
  return MinimizeSparse(HingeObjective(train, l2, 1.0),
                        train.num_features(), ModelKind::kLinearSvm,
                        options);
}

double SparseLogisticLoss(const linalg::Vector& h,
                          const data::SparseDataset& data, double l2) {
  return LogisticObjective(data, l2).value(h);
}

double SparseMisclassificationRate(const linalg::Vector& h,
                                   const data::SparseDataset& data) {
  size_t errors = 0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    const double score = data.features().RowDot(i, h);
    const double predicted = score > 0.0 ? 1.0 : -1.0;
    if (predicted != data.Target(i)) ++errors;
  }
  return static_cast<double>(errors) /
         static_cast<double>(data.num_examples());
}

}  // namespace mbp::ml

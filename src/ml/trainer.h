#ifndef MBP_ML_TRAINER_H_
#define MBP_ML_TRAINER_H_

#include <cstdint>

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "ml/loss.h"
#include "ml/model.h"

namespace mbp::ml {

// Convergence / iteration knobs shared by the iterative trainers.
struct TrainOptions {
  // Stop when the gradient's infinity norm drops below this.
  double gradient_tolerance = 1e-8;
  size_t max_iterations = 500;
  // Initial step size for backtracking line search (gradient descent only).
  double initial_step = 1.0;
};

// Summary of a completed optimization run.
struct TrainResult {
  LinearModel model;
  double final_loss = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

// Exact minimizer of the (regularized) square loss via the normal equations
// (X^T X / n + 2*l2*I) h = X^T y / n, solved with a Cholesky factorization.
// Returns FailedPrecondition when the system is singular and l2 == 0.
StatusOr<TrainResult> TrainLinearRegression(const data::Dataset& train,
                                            double l2 = 0.0);

// Full-batch gradient descent with backtracking (Armijo) line search on any
// differentiable loss. Robust default for the SVM's smoothed hinge.
StatusOr<TrainResult> TrainGradientDescent(const Loss& loss,
                                           const data::Dataset& train,
                                           ModelKind kind,
                                           const TrainOptions& options = {});

// Newton's method with Cholesky solves and Armijo damping; the fast path
// for logistic regression (d x d Hessians, d <= a few hundred). Falls back
// to a gradient step when the Hessian solve fails.
StatusOr<TrainResult> TrainNewton(const Loss& loss,
                                  const data::Dataset& train, ModelKind kind,
                                  const TrainOptions& options = {});

// Trains the optimal model instance h*_λ(D) for the given model family,
// dispatching to the most appropriate algorithm:
//   linear regression -> closed form; logistic -> Newton; SVM -> GD.
// `l2` is the coefficient of the ||h||^2 penalty in λ (Table 2).
StatusOr<TrainResult> TrainOptimalModel(ModelKind kind,
                                        const data::Dataset& train,
                                        double l2 = 0.0,
                                        const TrainOptions& options = {});

// The training loss λ that corresponds to each model family (Table 2).
LossKind TrainingLossKind(ModelKind kind);

}  // namespace mbp::ml

#endif  // MBP_ML_TRAINER_H_

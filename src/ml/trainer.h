#ifndef MBP_ML_TRAINER_H_
#define MBP_ML_TRAINER_H_

#include <cstdint>

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "ml/loss.h"
#include "ml/model.h"
#include "ml/sufficient_stats.h"

namespace mbp::ml {

// Convergence / iteration knobs shared by the iterative trainers.
struct TrainOptions {
  // Stop when the gradient's infinity norm drops below this.
  double gradient_tolerance = 1e-8;
  size_t max_iterations = 500;
  // Initial step size for backtracking line search (gradient descent only).
  double initial_step = 1.0;
};

// Summary of a completed optimization run.
struct TrainResult {
  LinearModel model;
  double final_loss = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

// Exact minimizer of the (regularized) square loss via the normal equations
// (X^T X / n + 2*l2*I) h = X^T y / n, solved with a Cholesky factorization.
// Returns FailedPrecondition when the system is singular and l2 == 0.
//
// The Gram matrix, X^T y, and the Cholesky factor are memoized in `cache`
// (keyed by the dataset's stats_key and l2), so retraining on the same
// dataset — every l2 candidate, every pricing curve point — skips the
// O(n d^2) statistics pass and, on an exact (dataset, l2) repeat, the
// O(d^3) factorization too. Pass nullptr to train from scratch; results
// are bit-identical either way (the cache returns exactly what a cold
// build computes).
StatusOr<TrainResult> TrainLinearRegression(
    const data::Dataset& train, double l2 = 0.0,
    SufficientStatsCache* cache = &SufficientStatsCache::Shared());

// TrainLinearRegression's solve + loss evaluation from precomputed
// sufficient statistics (e.g. a k-fold downdate), without a Dataset in
// hand. final_loss is the training square loss computed from the stats in
// O(d^2) (equal to SquareLoss::Evaluate up to rounding).
StatusOr<TrainResult> TrainLinearRegressionFromStats(
    const SufficientStats& stats, double l2 = 0.0,
    SufficientStatsCache* cache = &SufficientStatsCache::Shared());

// Full-batch gradient descent with backtracking (Armijo) line search on any
// differentiable loss. Robust default for the SVM's smoothed hinge.
StatusOr<TrainResult> TrainGradientDescent(const Loss& loss,
                                           const data::Dataset& train,
                                           ModelKind kind,
                                           const TrainOptions& options = {});

// Newton's method with Cholesky solves and Armijo damping; the fast path
// for logistic regression (d x d Hessians, d <= a few hundred). Falls back
// to a gradient step when the Hessian solve fails.
StatusOr<TrainResult> TrainNewton(const Loss& loss,
                                  const data::Dataset& train, ModelKind kind,
                                  const TrainOptions& options = {});

// Trains the optimal model instance h*_λ(D) for the given model family,
// dispatching to the most appropriate algorithm:
//   linear regression -> closed form; logistic -> Newton; SVM -> GD.
// `l2` is the coefficient of the ||h||^2 penalty in λ (Table 2).
StatusOr<TrainResult> TrainOptimalModel(ModelKind kind,
                                        const data::Dataset& train,
                                        double l2 = 0.0,
                                        const TrainOptions& options = {});

// The training loss λ that corresponds to each model family (Table 2).
LossKind TrainingLossKind(ModelKind kind);

}  // namespace mbp::ml

#endif  // MBP_ML_TRAINER_H_

#ifndef MBP_ML_METRICS_H_
#define MBP_ML_METRICS_H_

#include "common/statusor.h"
#include "data/dataset.h"
#include "ml/model.h"

namespace mbp::ml {

// Standard hold-out evaluation scores (Section 2, "ML over Relational
// Data"). All are averages over `data`.

// Mean squared error of the model's raw scores against the targets.
double MeanSquaredError(const LinearModel& model, const data::Dataset& data);

// Root mean squared error.
double RootMeanSquaredError(const LinearModel& model,
                            const data::Dataset& data);

// Fraction of examples where sign(score) != label. Labels must be {-1,+1}.
double MisclassificationRate(const LinearModel& model,
                             const data::Dataset& data);

// 1 - MisclassificationRate.
double Accuracy(const LinearModel& model, const data::Dataset& data);

// Coefficient of determination R^2 of the scores against the targets.
double RSquared(const LinearModel& model, const data::Dataset& data);

// Mean absolute error of the raw scores against the targets.
double MeanAbsoluteError(const LinearModel& model,
                         const data::Dataset& data);

// Area under the ROC curve of the model's raw scores (the Mann-Whitney
// rank statistic, with tied scores contributing 1/2). Requires a
// classification dataset containing both classes; InvalidArgument
// otherwise.
StatusOr<double> AreaUnderRoc(const LinearModel& model,
                              const data::Dataset& data);

}  // namespace mbp::ml

#endif  // MBP_ML_METRICS_H_

#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"

namespace mbp::ml {

double MeanSquaredError(const LinearModel& model, const data::Dataset& data) {
  MBP_CHECK_EQ(model.num_features(), data.num_features());
  const size_t n = data.num_examples();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double diff =
        model.Score(data.ExampleFeatures(i)) - data.Target(i);
    total += diff * diff;
  }
  return total / static_cast<double>(n);
}

double RootMeanSquaredError(const LinearModel& model,
                            const data::Dataset& data) {
  return std::sqrt(MeanSquaredError(model, data));
}

double MisclassificationRate(const LinearModel& model,
                             const data::Dataset& data) {
  MBP_CHECK_EQ(model.num_features(), data.num_features());
  const size_t n = data.num_examples();
  size_t errors = 0;
  for (size_t i = 0; i < n; ++i) {
    if (model.PredictLabel(data.ExampleFeatures(i)) != data.Target(i)) {
      ++errors;
    }
  }
  return static_cast<double>(errors) / static_cast<double>(n);
}

double Accuracy(const LinearModel& model, const data::Dataset& data) {
  return 1.0 - MisclassificationRate(model, data);
}

double MeanAbsoluteError(const LinearModel& model,
                         const data::Dataset& data) {
  MBP_CHECK_EQ(model.num_features(), data.num_features());
  const size_t n = data.num_examples();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total +=
        std::fabs(model.Score(data.ExampleFeatures(i)) - data.Target(i));
  }
  return total / static_cast<double>(n);
}

StatusOr<double> AreaUnderRoc(const LinearModel& model,
                              const data::Dataset& data) {
  if (data.task() != data::TaskType::kBinaryClassification) {
    return InvalidArgumentError("AUC requires a classification dataset");
  }
  MBP_CHECK_EQ(model.num_features(), data.num_features());
  const size_t n = data.num_examples();
  // (score, is_positive), sorted by score ascending.
  std::vector<std::pair<double, bool>> scored(n);
  size_t positives = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool positive = data.Target(i) == 1.0;
    scored[i] = {model.Score(data.ExampleFeatures(i)), positive};
    if (positive) ++positives;
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) {
    return InvalidArgumentError("AUC requires both classes present");
  }
  std::sort(scored.begin(), scored.end());
  // Rank-sum with average ranks over tied score groups.
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scored[j].first == scored[i].first) ++j;
    // Ranks are 1-based; ties share the average rank of the group.
    const double average_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (scored[k].second) positive_rank_sum += average_rank;
    }
    i = j;
  }
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) *
              static_cast<double>(negatives));
}

double RSquared(const LinearModel& model, const data::Dataset& data) {
  const size_t n = data.num_examples();
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += data.Target(i);
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double y = data.Target(i);
    const double pred = model.Score(data.ExampleFeatures(i));
    ss_res += (y - pred) * (y - pred);
    ss_tot += (y - mean) * (y - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace mbp::ml

#ifndef MBP_ML_SGD_H_
#define MBP_ML_SGD_H_

#include <cstdint>

#include "common/statusor.h"
#include "data/dataset.h"
#include "ml/loss.h"
#include "ml/trainer.h"

namespace mbp::ml {

// Mini-batch stochastic gradient descent — the trainer for paper-scale
// datasets (millions of rows) where full-batch Newton/GD passes are too
// expensive per step. Uses a 1/(1 + decay * epoch) step schedule and
// reshuffles every epoch with an explicit seed for reproducibility.
struct SgdOptions {
  size_t batch_size = 64;
  size_t max_epochs = 30;
  double initial_step = 0.1;
  // Step at epoch e is initial_step / (1 + step_decay * e).
  double step_decay = 0.1;
  // Stop early when the full-dataset gradient infinity-norm drops below
  // this at an epoch boundary (0 disables the check and its extra pass).
  double gradient_tolerance = 1e-4;
  uint64_t seed = 1;
};

// Minimizes `loss` over `train` with mini-batch SGD. Requires a
// differentiable loss and batch_size >= 1. TrainResult::converged reports
// whether the gradient tolerance was met before max_epochs.
StatusOr<TrainResult> TrainSgd(const Loss& loss, const data::Dataset& train,
                               ModelKind kind, const SgdOptions& options = {});

}  // namespace mbp::ml

#endif  // MBP_ML_SGD_H_

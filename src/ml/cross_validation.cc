#include "ml/cross_validation.h"

#include <cmath>
#include <numeric>
#include <optional>

#include "data/split.h"
#include "ml/sufficient_stats.h"

namespace mbp::ml {
namespace {

// Fold assignment: a permutation chopped into `folds` contiguous ranges.
struct FoldPlan {
  std::vector<size_t> order;
  size_t folds;

  // [begin, end) positions of fold f within `order`.
  std::pair<size_t, size_t> Range(size_t f) const {
    const size_t n = order.size();
    const size_t base = n / folds;
    const size_t extra = n % folds;
    // First `extra` folds get one extra example.
    const size_t begin = f * base + std::min(f, extra);
    const size_t size = base + (f < extra ? 1 : 0);
    return {begin, begin + size};
  }
};

// Per-fold training inputs, built once per plan and reused for every l2
// candidate. Linear regression folds carry downdated sufficient statistics
// (full-dataset stats minus the held-out rows, an O(|fold| d^2) rank-k
// downdate) instead of a materialized (k-1)/k-size training copy; iterative
// models keep the train Subset.
struct FoldContext {
  std::optional<data::Dataset> test;
  std::optional<data::Dataset> train;          // iterative trainers only
  std::optional<SufficientStats> train_stats;  // linear regression only
};

StatusOr<std::vector<FoldContext>> BuildFoldContexts(
    ModelKind model, const data::Dataset& dataset, const FoldPlan& plan,
    const ParallelConfig& parallel) {
  const bool use_stats = model == ModelKind::kLinearRegression &&
                         dataset.task() == data::TaskType::kRegression;
  std::shared_ptr<const SufficientStats> full_stats;
  if (use_stats) {
    full_stats =
        SufficientStatsCache::Shared().GetOrBuild(dataset, parallel);
  }
  std::vector<FoldContext> contexts(plan.folds);
  // One fold per task; each task writes only its own context slot.
  MBP_RETURN_IF_ERROR(ParallelFor(
      parallel, 0, plan.folds, 1, [&](size_t fold_begin, size_t fold_end) {
        for (size_t f = fold_begin; f < fold_end; ++f) {
          const auto [begin, end] = plan.Range(f);
          // The fold's test examples are exactly order[begin, end); its
          // train examples are the complementary prefix and suffix.
          const std::vector<size_t> test_idx(plan.order.begin() + begin,
                                             plan.order.begin() + end);
          contexts[f].test = dataset.Subset(test_idx);
          if (use_stats) {
            contexts[f].train_stats = full_stats->Downdate(dataset, test_idx);
          } else {
            std::vector<size_t> train_idx(plan.order.begin(),
                                          plan.order.begin() + begin);
            train_idx.insert(train_idx.end(), plan.order.begin() + end,
                             plan.order.end());
            contexts[f].train = dataset.Subset(train_idx);
          }
        }
        return Status::OK();
      }));
  return contexts;
}

StatusOr<CrossValidationResult> RunFolds(
    ModelKind model, double l2, const Loss& eval_loss,
    const std::vector<FoldContext>& contexts,
    const ParallelConfig& parallel) {
  CrossValidationResult result;
  result.fold_errors.assign(contexts.size(), 0.0);
  // One fold per task: training is deterministic and each fold writes only
  // its own slot, so the result is identical at any thread count.
  MBP_RETURN_IF_ERROR(ParallelFor(
      parallel, 0, contexts.size(), 1,
      [&](size_t fold_begin, size_t fold_end) {
        for (size_t f = fold_begin; f < fold_end; ++f) {
          const FoldContext& ctx = contexts[f];
          StatusOr<TrainResult> trained =
              ctx.train_stats.has_value()
                  ? TrainLinearRegressionFromStats(*ctx.train_stats, l2,
                                                   nullptr)
                  : TrainOptimalModel(model, *ctx.train, l2);
          if (!trained.ok()) return trained.status();
          result.fold_errors[f] =
              eval_loss.Evaluate(trained.value().model.coefficients(),
                                 *ctx.test);
        }
        return Status::OK();
      }));
  const double n = static_cast<double>(result.fold_errors.size());
  result.mean_error =
      std::accumulate(result.fold_errors.begin(), result.fold_errors.end(),
                      0.0) /
      n;
  double variance = 0.0;
  for (double error : result.fold_errors) {
    variance += (error - result.mean_error) * (error - result.mean_error);
  }
  result.stddev_error = std::sqrt(variance / n);
  return result;
}

Status ValidateFolds(const data::Dataset& dataset, size_t folds) {
  if (folds < 2) return InvalidArgumentError("need at least 2 folds");
  if (dataset.num_examples() < folds) {
    return InvalidArgumentError("need at least one example per fold");
  }
  return Status::OK();
}

}  // namespace

StatusOr<CrossValidationResult> KFoldCrossValidate(
    ModelKind model, const data::Dataset& dataset, double l2,
    const Loss& eval_loss, size_t folds, random::Rng& rng,
    const ParallelConfig& parallel) {
  MBP_RETURN_IF_ERROR(ValidateFolds(dataset, folds));
  const FoldPlan plan{
      data::RandomPermutation(dataset.num_examples(), rng), folds};
  MBP_ASSIGN_OR_RETURN(std::vector<FoldContext> contexts,
                       BuildFoldContexts(model, dataset, plan, parallel));
  return RunFolds(model, l2, eval_loss, contexts, parallel);
}

StatusOr<double> SelectL2ByCrossValidation(
    ModelKind model, const data::Dataset& dataset,
    const std::vector<double>& candidates, const Loss& eval_loss,
    size_t folds, random::Rng& rng, const ParallelConfig& parallel) {
  if (candidates.empty()) {
    return InvalidArgumentError("need at least one l2 candidate");
  }
  MBP_RETURN_IF_ERROR(ValidateFolds(dataset, folds));
  // One shared fold plan so candidates see identical splits — and one set
  // of fold contexts (test subsets + downdated training statistics), so the
  // per-fold O(n d^2) work is paid once, not once per candidate.
  const FoldPlan plan{
      data::RandomPermutation(dataset.num_examples(), rng), folds};
  MBP_ASSIGN_OR_RETURN(std::vector<FoldContext> contexts,
                       BuildFoldContexts(model, dataset, plan, parallel));
  double best_l2 = candidates.front();
  double best_error = 0.0;
  bool first = true;
  for (double l2 : candidates) {
    if (l2 < 0.0) return InvalidArgumentError("l2 must be non-negative");
    MBP_ASSIGN_OR_RETURN(CrossValidationResult result,
                         RunFolds(model, l2, eval_loss, contexts, parallel));
    if (first || result.mean_error < best_error) {
      best_error = result.mean_error;
      best_l2 = l2;
      first = false;
    }
  }
  return best_l2;
}

}  // namespace mbp::ml

#include "ml/cross_validation.h"

#include <cmath>
#include <numeric>

#include "data/split.h"

namespace mbp::ml {
namespace {

// Fold assignment: a permutation chopped into `folds` contiguous ranges.
struct FoldPlan {
  std::vector<size_t> order;
  size_t folds;

  // [begin, end) positions of fold f within `order`.
  std::pair<size_t, size_t> Range(size_t f) const {
    const size_t n = order.size();
    const size_t base = n / folds;
    const size_t extra = n % folds;
    // First `extra` folds get one extra example.
    const size_t begin = f * base + std::min(f, extra);
    const size_t size = base + (f < extra ? 1 : 0);
    return {begin, begin + size};
  }
};

StatusOr<CrossValidationResult> RunFolds(ModelKind model,
                                         const data::Dataset& dataset,
                                         double l2, const Loss& eval_loss,
                                         const FoldPlan& plan,
                                         const ParallelConfig& parallel) {
  CrossValidationResult result;
  result.fold_errors.assign(plan.folds, 0.0);
  // One fold per task: training is deterministic and each fold writes only
  // its own slot, so the result is identical at any thread count.
  MBP_RETURN_IF_ERROR(ParallelFor(
      parallel, 0, plan.folds, 1, [&](size_t fold_begin, size_t fold_end) {
        for (size_t f = fold_begin; f < fold_end; ++f) {
          const auto [begin, end] = plan.Range(f);
          // The fold's test examples are exactly order[begin, end); its
          // train examples are the complementary prefix and suffix.
          std::vector<size_t> test_idx(plan.order.begin() + begin,
                                       plan.order.begin() + end);
          std::vector<size_t> train_idx(plan.order.begin(),
                                        plan.order.begin() + begin);
          train_idx.insert(train_idx.end(), plan.order.begin() + end,
                           plan.order.end());
          const data::Dataset train = dataset.Subset(train_idx);
          const data::Dataset test = dataset.Subset(test_idx);
          MBP_ASSIGN_OR_RETURN(TrainResult trained,
                               TrainOptimalModel(model, train, l2));
          result.fold_errors[f] =
              eval_loss.Evaluate(trained.model.coefficients(), test);
        }
        return Status::OK();
      }));
  const double n = static_cast<double>(result.fold_errors.size());
  result.mean_error =
      std::accumulate(result.fold_errors.begin(), result.fold_errors.end(),
                      0.0) /
      n;
  double variance = 0.0;
  for (double error : result.fold_errors) {
    variance += (error - result.mean_error) * (error - result.mean_error);
  }
  result.stddev_error = std::sqrt(variance / n);
  return result;
}

Status ValidateFolds(const data::Dataset& dataset, size_t folds) {
  if (folds < 2) return InvalidArgumentError("need at least 2 folds");
  if (dataset.num_examples() < folds) {
    return InvalidArgumentError("need at least one example per fold");
  }
  return Status::OK();
}

}  // namespace

StatusOr<CrossValidationResult> KFoldCrossValidate(
    ModelKind model, const data::Dataset& dataset, double l2,
    const Loss& eval_loss, size_t folds, random::Rng& rng,
    const ParallelConfig& parallel) {
  MBP_RETURN_IF_ERROR(ValidateFolds(dataset, folds));
  const FoldPlan plan{
      data::RandomPermutation(dataset.num_examples(), rng), folds};
  return RunFolds(model, dataset, l2, eval_loss, plan, parallel);
}

StatusOr<double> SelectL2ByCrossValidation(
    ModelKind model, const data::Dataset& dataset,
    const std::vector<double>& candidates, const Loss& eval_loss,
    size_t folds, random::Rng& rng, const ParallelConfig& parallel) {
  if (candidates.empty()) {
    return InvalidArgumentError("need at least one l2 candidate");
  }
  MBP_RETURN_IF_ERROR(ValidateFolds(dataset, folds));
  // One shared fold plan so candidates see identical splits.
  const FoldPlan plan{
      data::RandomPermutation(dataset.num_examples(), rng), folds};
  double best_l2 = candidates.front();
  double best_error = 0.0;
  bool first = true;
  for (double l2 : candidates) {
    if (l2 < 0.0) return InvalidArgumentError("l2 must be non-negative");
    MBP_ASSIGN_OR_RETURN(CrossValidationResult result,
                         RunFolds(model, dataset, l2, eval_loss, plan,
                                  parallel));
    if (first || result.mean_error < best_error) {
      best_error = result.mean_error;
      best_l2 = l2;
      first = false;
    }
  }
  return best_l2;
}

}  // namespace mbp::ml

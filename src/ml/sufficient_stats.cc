#include "ml/sufficient_stats.h"

#include <bit>
#include <utility>

#include "linalg/vector_ops.h"

namespace mbp::ml {

SufficientStats SufficientStats::Build(const data::Dataset& dataset,
                                       const ParallelConfig& parallel) {
  SufficientStats stats;
  stats.gram = linalg::GramMatrix(dataset.features(), parallel);
  stats.xty = linalg::MatTVec(dataset.features(), dataset.targets(), parallel);
  stats.yty = linalg::Dot(dataset.targets(), dataset.targets());
  stats.n = dataset.num_examples();
  stats.dataset_key = dataset.stats_key();
  return stats;
}

SufficientStats SufficientStats::Downdate(
    const data::Dataset& full, const std::vector<size_t>& removed) const {
  const size_t d = gram.rows();
  MBP_CHECK_EQ(d, full.num_features());
  MBP_CHECK_EQ(n, full.num_examples());

  // Accumulate the removed block's statistics first, then subtract once:
  // each Gram entry pays a single cancellation instead of |removed| of them.
  linalg::Matrix block_gram(d, d);
  linalg::Vector block_xty(d);
  double block_yty = 0.0;
  for (const size_t r : removed) {
    MBP_CHECK_LT(r, full.num_examples());
    const double* x = full.ExampleFeatures(r);
    const double y = full.Target(r);
    for (size_t i = 0; i < d; ++i) {
      double* row = block_gram.RowData(i);
      const double xi = x[i];
      for (size_t j = 0; j <= i; ++j) row[j] += xi * x[j];
      block_xty[i] += y * xi;
    }
    block_yty += y * y;
  }

  SufficientStats out;
  out.gram = linalg::Matrix(d, d);
  out.xty = linalg::Vector(d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double v = gram(i, j) - block_gram(i, j);
      out.gram(i, j) = v;
      out.gram(j, i) = v;
    }
    out.xty[i] = xty[i] - block_xty[i];
  }
  out.yty = yty - block_yty;
  out.n = n - removed.size();
  out.dataset_key = 0;  // no live dataset carries these stats
  return out;
}

namespace {

// The regularized normal-equation matrix gram / n + 2 l2 I, exactly as
// TrainLinearRegression forms it (same per-entry divide, same diagonal add).
linalg::Matrix NormalMatrix(const SufficientStats& stats, double l2) {
  const double n = static_cast<double>(stats.n);
  linalg::Matrix normal = stats.gram;
  for (size_t i = 0; i < normal.rows(); ++i) {
    for (size_t j = 0; j < normal.cols(); ++j) normal(i, j) /= n;
    normal(i, i) += 2.0 * l2;
  }
  return normal;
}

linalg::Vector NormalRhs(const SufficientStats& stats) {
  linalg::Vector rhs = stats.xty;
  linalg::Scale(1.0 / static_cast<double>(stats.n), rhs.data(), rhs.size());
  return rhs;
}

}  // namespace

StatusOr<linalg::Vector> SolveNormalEquations(const SufficientStats& stats,
                                              double l2,
                                              SufficientStatsCache* cache) {
  std::shared_ptr<const linalg::Cholesky> factor;
  if (cache != nullptr) {
    auto cached = cache->FactorFor(stats, l2);
    if (!cached.ok()) {
      return FailedPreconditionError(
          "normal equations are singular; add L2 regularization (" +
          cached.status().ToString() + ")");
    }
    factor = std::move(cached).value();
  } else {
    auto factored = linalg::Cholesky::Factorize(NormalMatrix(stats, l2));
    if (!factored.ok()) {
      return FailedPreconditionError(
          "normal equations are singular; add L2 regularization (" +
          factored.status().ToString() + ")");
    }
    factor = std::make_shared<const linalg::Cholesky>(
        std::move(factored).value());
  }
  return factor->Solve(NormalRhs(stats));
}

double SquareLossFromStats(const SufficientStats& stats,
                           const linalg::Vector& h, double l2) {
  const size_t d = stats.gram.rows();
  MBP_CHECK_EQ(h.size(), d);
  double hGh = 0.0;
  for (size_t i = 0; i < d; ++i) {
    hGh += h[i] * linalg::Dot(stats.gram.RowData(i), h.data(), d);
  }
  const double residual_sq =
      stats.yty - 2.0 * linalg::Dot(h, stats.xty) + hGh;
  return residual_sq / (2.0 * static_cast<double>(stats.n)) +
         l2 * linalg::Dot(h, h);
}

SufficientStatsCache::SufficientStatsCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const SufficientStats> SufficientStatsCache::GetOrBuild(
    const data::Dataset& dataset, const ParallelConfig& parallel) {
  const uint64_t key = dataset.stats_key();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(key);
    if (it != stats_.end()) {
      ++counters_.stats_hits;
      return it->second;
    }
    ++counters_.stats_misses;
  }
  // Build outside the lock; a racing builder computes the identical value.
  auto built =
      std::make_shared<const SufficientStats>(SufficientStats::Build(
          dataset, parallel));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = stats_.emplace(key, built);
  if (inserted) {
    stats_order_.push_back(key);
    EvictIfNeededLocked();
  }
  return it->second;  // first insert wins
}

StatusOr<std::shared_ptr<const linalg::Cholesky>>
SufficientStatsCache::FactorFor(const SufficientStats& stats, double l2) {
  const bool cacheable = stats.dataset_key != 0;
  const std::pair<uint64_t, uint64_t> key{stats.dataset_key,
                                          std::bit_cast<uint64_t>(l2)};
  if (cacheable) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factors_.find(key);
    if (it != factors_.end()) {
      ++counters_.factor_hits;
      return it->second;
    }
    ++counters_.factor_misses;
  }
  auto factored = linalg::Cholesky::Factorize(NormalMatrix(stats, l2));
  if (!factored.ok()) return factored.status();
  auto factor = std::make_shared<const linalg::Cholesky>(
      std::move(factored).value());
  if (cacheable) {
    std::lock_guard<std::mutex> lock(mutex_);
    // Only memoize factors for stats we still hold (eviction drops both).
    if (stats_.count(stats.dataset_key) > 0) {
      auto [it, inserted] = factors_.emplace(key, factor);
      return it->second;
    }
  }
  return factor;
}

SufficientStatsCache::Counters SufficientStatsCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void SufficientStatsCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.clear();
  stats_order_.clear();
  factors_.clear();
  counters_ = Counters{};
}

SufficientStatsCache& SufficientStatsCache::Shared() {
  static SufficientStatsCache* cache = new SufficientStatsCache();
  return *cache;
}

void SufficientStatsCache::EvictIfNeededLocked() {
  while (stats_.size() > capacity_) {
    const uint64_t victim = stats_order_.front();
    stats_order_.pop_front();
    stats_.erase(victim);
    auto it = factors_.lower_bound({victim, 0});
    while (it != factors_.end() && it->first.first == victim) {
      it = factors_.erase(it);
    }
  }
}

}  // namespace mbp::ml

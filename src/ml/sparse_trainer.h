#ifndef MBP_ML_SPARSE_TRAINER_H_
#define MBP_ML_SPARSE_TRAINER_H_

// Trainers over sparse feature matrices (Example 3's text markets). The
// coefficient vector stays dense — it is the object the marketplace sells
// and perturbs — but all data passes are sparse: each gradient costs
// O(nnz) instead of O(n * d).

#include "common/statusor.h"
#include "data/sparse_dataset.h"
#include "ml/trainer.h"

namespace mbp::ml {

// Full-batch gradient descent with Armijo backtracking on the sparse
// logistic objective (1/n) sum log(1 + exp(-y_i h.x_i)) + l2 ||h||^2.
StatusOr<TrainResult> TrainLogisticSparse(const data::SparseDataset& train,
                                          double l2,
                                          const TrainOptions& options = {});

// Same driver for the smoothed-hinge SVM objective.
StatusOr<TrainResult> TrainSvmSparse(const data::SparseDataset& train,
                                     double l2,
                                     const TrainOptions& options = {});

// Average logistic loss of h on sparse data (with l2 penalty).
double SparseLogisticLoss(const linalg::Vector& h,
                          const data::SparseDataset& data, double l2);

// Misclassification rate of sign(h.x) on sparse data.
double SparseMisclassificationRate(const linalg::Vector& h,
                                   const data::SparseDataset& data);

}  // namespace mbp::ml

#endif  // MBP_ML_SPARSE_TRAINER_H_

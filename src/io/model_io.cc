#include "io/model_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace mbp::io {
namespace {

constexpr char kModelHeader[] = "mbp-model v1";
constexpr char kPricingHeader[] = "mbp-pricing v1";

StatusOr<ml::ModelKind> ParseModelKind(const std::string& name) {
  if (name == "linear_regression") return ml::ModelKind::kLinearRegression;
  if (name == "logistic_regression") {
    return ml::ModelKind::kLogisticRegression;
  }
  if (name == "linear_svm") return ml::ModelKind::kLinearSvm;
  return InvalidArgumentError("unknown model kind: " + name);
}

StatusOr<double> ParseDouble(const std::string& token) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed number: '" + token + "'");
  }
  return value;
}

// Reads one line; strips a trailing '\r'. False at EOF.
bool GetLine(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

}  // namespace

Status WriteModel(const ml::LinearModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return InternalError("cannot open for writing: " + path);
  }
  out.precision(17);
  out << kModelHeader << "\n";
  out << "kind " << ml::ModelKindToString(model.kind()) << "\n";
  out << "dim " << model.num_features() << "\n";
  for (size_t i = 0; i < model.num_features(); ++i) {
    out << model.coefficients()[i] << "\n";
  }
  if (!out.good()) return InternalError("I/O error writing: " + path);
  return Status::OK();
}

StatusOr<ml::LinearModel> ReadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open: " + path);
  std::string line;
  if (!GetLine(in, line) || line != kModelHeader) {
    return InvalidArgumentError("missing or wrong header (want '" +
                                std::string(kModelHeader) + "')");
  }
  if (!GetLine(in, line) || line.rfind("kind ", 0) != 0) {
    return InvalidArgumentError("missing 'kind' line");
  }
  MBP_ASSIGN_OR_RETURN(ml::ModelKind kind, ParseModelKind(line.substr(5)));
  if (!GetLine(in, line) || line.rfind("dim ", 0) != 0) {
    return InvalidArgumentError("missing 'dim' line");
  }
  MBP_ASSIGN_OR_RETURN(double dim_value, ParseDouble(line.substr(4)));
  if (dim_value < 1 || dim_value != static_cast<size_t>(dim_value)) {
    return InvalidArgumentError("dim must be a positive integer");
  }
  const auto dim = static_cast<size_t>(dim_value);
  linalg::Vector coefficients(dim);
  for (size_t i = 0; i < dim; ++i) {
    if (!GetLine(in, line)) {
      return InvalidArgumentError("truncated file: expected " +
                                  std::to_string(dim) + " coefficients");
    }
    MBP_ASSIGN_OR_RETURN(coefficients[i], ParseDouble(line));
  }
  return ml::LinearModel(kind, std::move(coefficients));
}

Status WritePricing(const core::PiecewiseLinearPricing& pricing,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return InternalError("cannot open for writing: " + path);
  }
  out.precision(17);
  out << kPricingHeader << "\n";
  out << "points " << pricing.points().size() << "\n";
  for (const core::PricePoint& point : pricing.points()) {
    out << point.x << " " << point.price << "\n";
  }
  if (!out.good()) return InternalError("I/O error writing: " + path);
  return Status::OK();
}

StatusOr<core::PiecewiseLinearPricing> ReadPricing(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open: " + path);
  std::string line;
  if (!GetLine(in, line) || line != kPricingHeader) {
    return InvalidArgumentError("missing or wrong header (want '" +
                                std::string(kPricingHeader) + "')");
  }
  if (!GetLine(in, line) || line.rfind("points ", 0) != 0) {
    return InvalidArgumentError("missing 'points' line");
  }
  MBP_ASSIGN_OR_RETURN(double count_value, ParseDouble(line.substr(7)));
  if (count_value < 1 || count_value != static_cast<size_t>(count_value)) {
    return InvalidArgumentError("points must be a positive integer");
  }
  const auto count = static_cast<size_t>(count_value);
  std::vector<core::PricePoint> points(count);
  for (size_t i = 0; i < count; ++i) {
    if (!GetLine(in, line)) {
      return InvalidArgumentError("truncated file: expected " +
                                  std::to_string(count) + " points");
    }
    std::istringstream row(line);
    std::string x_token, price_token, extra;
    if (!(row >> x_token >> price_token) || (row >> extra)) {
      return InvalidArgumentError("malformed point line: '" + line + "'");
    }
    MBP_ASSIGN_OR_RETURN(points[i].x, ParseDouble(x_token));
    MBP_ASSIGN_OR_RETURN(points[i].price, ParseDouble(price_token));
  }
  return core::PiecewiseLinearPricing::Create(std::move(points));
}

}  // namespace mbp::io

#ifndef MBP_IO_MODEL_IO_H_
#define MBP_IO_MODEL_IO_H_

// Persistence for the artifacts a marketplace needs to keep or hand over:
// trained/purchased model instances and posted pricing curves. The format
// is a small line-oriented text format with full double round-tripping
// (17 significant digits), versioned via a header line so future formats
// can evolve.

#include <string>

#include "common/statusor.h"
#include "core/pricing_function.h"
#include "ml/model.h"

namespace mbp::io {

// Writes `model` to `path`. Format:
//   mbp-model v1
//   kind <linear_regression|logistic_regression|linear_svm>
//   dim <d>
//   <coefficient 0>
//   ...
// Returns Internal on I/O failure.
Status WriteModel(const ml::LinearModel& model, const std::string& path);

// Reads a model written by WriteModel. NotFound if the file is missing;
// InvalidArgument on a malformed or version-mismatched file (message says
// what was wrong).
StatusOr<ml::LinearModel> ReadModel(const std::string& path);

// Writes a pricing curve's knots to `path`. Format:
//   mbp-pricing v1
//   points <n>
//   <x> <price>
//   ...
Status WritePricing(const core::PiecewiseLinearPricing& pricing,
                    const std::string& path);

// Reads a pricing curve written by WritePricing. Validation matches
// PiecewiseLinearPricing::Create (strictly increasing x > 0, prices >= 0).
StatusOr<core::PiecewiseLinearPricing> ReadPricing(const std::string& path);

}  // namespace mbp::io

#endif  // MBP_IO_MODEL_IO_H_

#ifndef MBP_NET_TRANSPORT_H_
#define MBP_NET_TRANSPORT_H_

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/metrics.h"
#include "common/status.h"

// The transport seam under PriceServer's shard loop (DESIGN.md §5h).
//
// A shard loop is a pure pass machine: wait for I/O, decode, batch,
// encode, flush, reset. Everything kernel-facing in that cycle — how
// readiness is learned, how bytes arrive, how flushed frames leave —
// lives behind ShardTransport, so the same loop runs over epoll
// (readiness + one sized recv per event), io_uring (completions,
// multishot accept/recv into provided buffers, one submit_and_wait per
// pass), or a shared-memory ring (no sockets at all; futex doorbells).
//
// Contract highlights:
//  - One transport per shard thread. Every method except Wake() is
//    called only from that thread; Wake() may be called from any thread
//    and must interrupt a blocked Wait().
//  - Wait() appends events. Payload bytes delivered via kData live until
//    the end of the current pass (they are either staged in `scratch` or
//    in transport-owned buffers recycled no earlier than EndPass()).
//  - kAccept delivers a fresh TransportConn the server must either
//    Adopt() (start I/O) or Refuse() (destroy unserved) before the pass
//    ends. For every other event, `conn->user` is whatever the server
//    stored there at adoption time.
//  - Writev() has writev semantics: returns bytes accepted (the
//    transport may copy and complete them asynchronously, but once
//    accepted they WILL be delivered in order or the connection will
//    error), or -1 with errno == EAGAIN when the peer/queue can take
//    nothing now. Accepted-byte counts are what the server's
//    fallback-queue bookkeeping runs on, exactly as with raw writev.
//  - UpdateInterest() arms level-triggered intent: want_read gates kData
//    production (the read-pause backpressure rung), want_write asks for
//    kWritable once the peer can take more bytes.
//  - OnClose() detaches a connection from event production (the server
//    marks it dead and stops using it); Destroy() — always after
//    OnClose(), at the end-of-pass sweep — releases the fd/slot itself.
//    The split preserves the fd-reuse invariant: the descriptor number
//    stays allocated until the dead map entry is gone, so a same-pass
//    accept can never collide with a dying connection.
//  - EndPass() runs once per pass after all flushes: io_uring recycles
//    provided buffers and queues re-arms there (submitted by the next
//    Wait's single io_uring_enter); epoll and shm treat it as a no-op.

namespace mbp::net {

enum class TransportKind : uint8_t { kEpoll = 0, kUring = 1, kShm = 2 };

const char* TransportKindName(TransportKind kind);
bool ParseTransportKind(std::string_view name, TransportKind* out);

// True when the running kernel supports everything the io_uring backend
// needs (multishot accept/recv, provided-buffer rings, EXT_ARG timed
// waits), established once by a functional probe and cached. The
// MBP_FORCE_NO_URING=1 environment variable forces false — the hook the
// fallback tests and chaos harness use to exercise the epoll downgrade
// on kernels that do have io_uring.
bool UringAvailable();

// Opaque per-connection transport handle. The transport allocates one
// per connection (delivered by kAccept) and owns its lifetime through
// Refuse()/Destroy(); the server stores its Connection* in `user`.
struct TransportConn {
  void* user = nullptr;
};

struct TransportEvent {
  enum class Kind : uint8_t {
    kAccept,    // new connection: Adopt() or Refuse() `conn`
    kData,      // `size` bytes at `data`, valid until pass end
    kEof,       // orderly peer close
    kError,     // transport-level failure; close the connection
    kWritable,  // a previously-full peer can take bytes again
  };
  Kind kind;
  TransportConn* conn = nullptr;
  const uint8_t* data = nullptr;
  size_t size = 0;
};

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  virtual TransportKind kind() const = 0;

  // One readiness/completion wait, at most `timeout_ms` blocked. Appends
  // any number of events (possibly zero: timeout, EINTR, wake).
  virtual void Wait(std::vector<TransportEvent>* events, Arena* scratch,
                    int timeout_ms) = 0;

  // Accept resolution. Adopt starts I/O (returns false and destroys the
  // handle if registration fails); Refuse destroys the handle unserved.
  virtual bool Adopt(TransportConn* conn) = 0;
  virtual void Refuse(TransportConn* conn) = 0;

  virtual ssize_t Writev(TransportConn* conn, const iovec* iov,
                         int iov_count) = 0;

  // Bytes Writev() accepted but not yet handed to the kernel/peer.
  // Asynchronous backends (io_uring) report their internal send buffer
  // here so the graceful-drain loop keeps pumping until delivery;
  // synchronous backends are always 0.
  virtual size_t Unflushed(TransportConn* conn) const {
    (void)conn;
    return 0;
  }

  virtual void UpdateInterest(TransportConn* conn, bool want_read,
                              bool want_write) = 0;

  virtual void OnClose(TransportConn* conn) = 0;
  virtual void Destroy(TransportConn* conn) = 0;

  // Entering drain: stop producing kAccept events (and release any
  // accept machinery), leaving established connections serviceable.
  virtual void StopAccepting() = 0;

  // Thread-safe: interrupt a blocked Wait().
  virtual void Wake() = 0;

  // Per-pass epilogue; see file comment.
  virtual void EndPass() = 0;
};

// Factories. On failure they return nullptr and set *status. `counters`
// must outlive the transport (the server's metrics block).
std::unique_ptr<ShardTransport> MakeEpollShardTransport(
    int listen_fd, TransportCounters* counters, Status* status);
std::unique_ptr<ShardTransport> MakeUringShardTransport(
    int listen_fd, TransportCounters* counters, Status* status);

}  // namespace mbp::net

#endif  // MBP_NET_TRANSPORT_H_

// io_uring backend for the ShardTransport seam (DESIGN.md §5h).
//
// Implemented against the raw kernel ABI (<linux/io_uring.h> + three
// syscalls) — no liburing dependency. The pass lifecycle is built so a
// whole decode→batch→encode pass costs ONE kernel crossing in steady
// state:
//
//   Wait():    publish every SQE queued since the last pass and block in
//              a single io_uring_enter(GETEVENTS | EXT_ARG, min=1,
//              timeout), then drain the CQ into TransportEvents.
//   pass body: Writev() copies flush bytes into the connection's send
//              staging buffer and queues (at most one inflight) SEND
//              SQE; closes queue ASYNC_CANCELs — all ring writes, no
//              syscalls.
//   EndPass(): recycle consumed provided buffers (a tail bump in the
//              shared buf ring, or queued OP_PROVIDE_BUFFERS SQEs on
//              kernels whose buf-ring registration is inert — no
//              syscall either way) and queue multishot-recv / accept /
//              wake re-arms for the next enter.
//
// Readiness never exists here: multishot ACCEPT delivers new fds as
// CQEs, multishot RECV with IOSQE_BUFFER_SELECT delivers payload bytes
// already copied into provided buffers (picked by buffer id from
// cqe->flags), and sends complete asynchronously against a staging
// buffer so the server's arena reset never races the kernel.
//
// Chaos points (net.uring.* catalog, same BEFORE-the-syscall discipline
// as net/fault_syscalls.h):
//   net.uring.enter.eintr   the pass's enter "fails" with EINTR: nothing
//                           is submitted, Wait returns empty
//   net.uring.recv.short    a recv completion is delivered as a 1-byte
//                           kData followed by the remainder — the
//                           cross-pass carry path on demand
//   net.uring.send.short    a SEND SQE is clamped to 1 byte, forcing the
//                           partial-send resubmission path
//
// Fallback: UringAvailable() runs a one-shot functional probe (setup,
// EXT_ARG feature, provided-buffer-ring registration, an actual
// multishot recv over a socketpair). Servers asked for kUring downgrade
// to epoll when it fails, counting transport_fallbacks.

#include <linux/io_uring.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/fault_injection.h"
#include "net/protocol.h"
#include "net/transport.h"

// Everything the backend needs landed by Linux 6.0; compile to an
// always-unavailable stub on older userspace headers so the build (and
// the epoll fallback) keeps working anywhere. IORING_REGISTER_PBUF_RING
// is an enum (not testable with #ifdef); IORING_RECV_MULTISHOT is a
// macro from a newer release, so its presence implies the enum's.
#if defined(IORING_RECV_MULTISHOT) && defined(IORING_ACCEPT_MULTISHOT) && \
    defined(IORING_FEAT_EXT_ARG) && defined(IORING_ASYNC_CANCEL_FD)
#define MBP_HAVE_URING 1
#else
#define MBP_HAVE_URING 0
#endif

namespace mbp::net {

#if MBP_HAVE_URING

namespace {

int SysUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, arg, argsz));
}

int SysUringRegister(int fd, unsigned opcode, const void* arg,
                     unsigned nr_args) {
  return static_cast<int>(
      syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

Status UringErrnoError(const std::string& what, int err) {
  return InternalError(what + ": " + std::strerror(err));
}

// user_data encoding: a UringConn* (8-aligned) in the high bits, an op
// tag in the low three.
constexpr uint64_t kTagRecv = 0;
constexpr uint64_t kTagSend = 1;
constexpr uint64_t kTagAccept = 2;
constexpr uint64_t kTagWake = 3;
constexpr uint64_t kTagIgnore = 4;  // cancels/buffer refills; noise
constexpr uint64_t kTagMask = 7;

// How provided buffers are handed back to the kernel. Both keep the
// steady-state pass at one syscall; the probe picks whichever the
// running kernel actually honours (some sandbox kernels accept the
// PBUF_RING registration yet never see its entries, so the choice is
// made by observing a real buffer-selected recv, not by registration
// return codes).
//
//   kBufRing  IORING_REGISTER_PBUF_RING: recycling is a shared-memory
//             tail bump, zero SQEs.
//   kLegacy   IORING_OP_PROVIDE_BUFFERS: recycling queues one SQE per
//             buffer, submitted with the next pass's enter.
enum class UringBufMode { kBufRing, kLegacy };

UringBufMode g_uring_buf_mode = UringBufMode::kBufRing;

struct UringConn : TransportConn {
  int fd = -1;
  bool recv_armed = false;   // a multishot RECV op is live in the kernel
  bool send_inflight = false;
  bool want_read = true;
  bool want_write = false;
  bool closed = false;       // OnClose seen: no more events for it
  bool doomed = false;       // Destroy seen: free once ops drain
  bool rearm_queued = false;   // already on the EndPass re-arm list
  bool resend_queued = false;  // already on the EndPass send-retry list
  bool zombie_listed = false;
  // Send staging: bytes [sent, size) of `send_buf` are pending; at most
  // one SEND SQE covers a prefix of that range at any time.
  std::unique_ptr<uint8_t[]> send_buf;
  size_t send_size = 0;
  size_t send_sent = 0;
};

// The raw ring: SQ/CQ mappings, SQE queueing, provided-buffer ring.
// Shared by the shard transport and the availability probe.
class UringCore {
 public:
  UringCore() = default;
  ~UringCore() {
    if (buf_ring_ != nullptr && buf_ring_ != MAP_FAILED) {
      munmap(buf_ring_, buf_ring_bytes_);
    }
    std::free(buf_data_);
    if (sq_ptr_ != nullptr) munmap(sq_ptr_, sq_bytes_);
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) munmap(cq_ptr_, cq_bytes_);
    if (sqes_ != nullptr) {
      munmap(sqes_, sq_entries_ * sizeof(io_uring_sqe));
    }
    if (ring_fd_ >= 0) close(ring_fd_);
  }

  Status Init(unsigned sq_entries, unsigned cq_entries, uint16_t buf_group,
              unsigned buf_count, unsigned buf_size, UringBufMode buf_mode) {
    buf_mode_ = buf_mode;
    io_uring_params params{};
    params.flags = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
    params.cq_entries = cq_entries;
    ring_fd_ = SysUringSetup(sq_entries, &params);
    if (ring_fd_ < 0) return UringErrnoError("io_uring_setup", errno);
    if ((params.features & IORING_FEAT_EXT_ARG) == 0) {
      return InternalError("io_uring lacks IORING_FEAT_EXT_ARG");
    }
    sq_entries_ = params.sq_entries;
    // Map the SQ ring (and, with FEAT_SINGLE_MMAP, the CQ ring too).
    sq_bytes_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    if (params.features & IORING_FEAT_SINGLE_MMAP) {
      sq_bytes_ = cq_bytes_ = std::max(sq_bytes_, cq_bytes_);
    }
    sq_ptr_ = mmap(nullptr, sq_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      return UringErrnoError("mmap(sq ring)", errno);
    }
    if (params.features & IORING_FEAT_SINGLE_MMAP) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = mmap(nullptr, cq_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        return UringErrnoError("mmap(cq ring)", errno);
      }
    }
    sqes_ = static_cast<io_uring_sqe*>(
        mmap(nullptr, params.sq_entries * sizeof(io_uring_sqe),
             PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, ring_fd_,
             IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return UringErrnoError("mmap(sqes)", errno);
    }
    auto* sq_base = static_cast<uint8_t*>(sq_ptr_);
    sq_khead_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.head);
    sq_ktail_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(sq_base + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.array);
    auto* cq_base = static_cast<uint8_t*>(cq_ptr_);
    cq_khead_ = reinterpret_cast<uint32_t*>(cq_base + params.cq_off.head);
    cq_ktail_ = reinterpret_cast<uint32_t*>(cq_base + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(cq_base + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
    sq_local_tail_ = *sq_ktail_;

    // The provided-buffer pool the multishot recvs select from: one
    // contiguous payload block, handed to the kernel either through a
    // registered buffer ring or an initial OP_PROVIDE_BUFFERS batch.
    buf_group_ = buf_group;
    buf_count_ = buf_count;
    buf_size_ = buf_size;
    buf_data_ = static_cast<uint8_t*>(
        std::malloc(static_cast<size_t>(buf_count) * buf_size));
    if (buf_data_ == nullptr) return InternalError("buf data alloc failed");
    if (buf_mode_ == UringBufMode::kBufRing) {
      buf_ring_bytes_ = buf_count * sizeof(io_uring_buf);
      buf_ring_ = static_cast<io_uring_buf_ring*>(
          mmap(nullptr, buf_ring_bytes_, PROT_READ | PROT_WRITE,
               MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
      if (buf_ring_ == MAP_FAILED) {
        buf_ring_ = nullptr;
        return UringErrnoError("mmap(buf ring)", errno);
      }
      std::memset(buf_ring_, 0, buf_ring_bytes_);
      io_uring_buf_reg reg{};
      reg.ring_addr = reinterpret_cast<uint64_t>(buf_ring_);
      reg.ring_entries = buf_count;
      reg.bgid = buf_group;
      if (SysUringRegister(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) <
          0) {
        return UringErrnoError("io_uring_register(PBUF_RING)", errno);
      }
      buf_tail_ = 0;
      for (uint16_t bid = 0; bid < buf_count; ++bid) Recycle(bid);
      PublishBuffers();
      return Status::OK();
    }
    // Legacy pool: one OP_PROVIDE_BUFFERS covers all `buf_count`
    // contiguous buffers (fd = count, off = starting bid). Submitted and
    // reaped synchronously so the first Wait starts from an empty CQ.
    io_uring_sqe* sqe = GetSqe(nullptr);
    sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
    sqe->addr = reinterpret_cast<uint64_t>(buf_data_);
    sqe->len = buf_size;
    sqe->fd = static_cast<int>(buf_count);
    sqe->off = 0;
    sqe->buf_group = buf_group;
    sqe->user_data = kTagIgnore;
    Submit(nullptr);
    int n;
    do {
      n = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return UringErrnoError("io_uring_enter(provide)", errno);
    int provide_res = 0;
    DrainCq([&](const io_uring_cqe& cqe) { provide_res = cqe.res; });
    if (provide_res < 0) {
      return UringErrnoError("IORING_OP_PROVIDE_BUFFERS", -provide_res);
    }
    return Status::OK();
  }

  // Next free SQE, zeroed. Flushes with a bare submit if the SQ is full
  // (the only case where a pass costs a second syscall).
  io_uring_sqe* GetSqe(TransportCounters* counters) {
    const uint32_t head = __atomic_load_n(sq_khead_, __ATOMIC_ACQUIRE);
    if (sq_local_tail_ - head == sq_entries_) {
      Submit(counters);
    }
    io_uring_sqe* sqe = &sqes_[sq_local_tail_ & sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[sq_local_tail_ & sq_mask_] = sq_local_tail_ & sq_mask_;
    ++sq_local_tail_;
    return sqe;
  }

  // Publish queued SQEs and submit without waiting.
  int Submit(TransportCounters* counters) {
    const unsigned to_submit = Publish();
    if (to_submit == 0) return 0;
    if (counters != nullptr) {
      counters->transport_syscalls.Increment();
      counters->uring_sqe_submitted.Increment(to_submit);
    }
    int n;
    do {
      n = SysUringEnter(ring_fd_, to_submit, 0, 0, nullptr, 0);
    } while (n < 0 && errno == EINTR);
    return n;
  }

  // The pass's one syscall: publish queued SQEs, wait for >= 1 CQE or
  // the timeout. Returns false on (possibly injected) EINTR.
  bool SubmitAndWait(int timeout_ms, TransportCounters* counters) {
    if (MBP_FAULT_POINT("net.uring.enter.eintr")) return false;
    const unsigned to_submit = Publish();
    __kernel_timespec ts{};
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000LL;
    io_uring_getevents_arg arg{};
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    if (counters != nullptr) {
      counters->transport_syscalls.Increment();
      if (to_submit > 0) counters->uring_sqe_submitted.Increment(to_submit);
    }
    const int n = SysUringEnter(ring_fd_, to_submit, 1,
                                IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                                &arg, sizeof(arg));
    return n >= 0 || errno == ETIME;
  }

  // Drains every pending CQE through `fn`.
  template <typename Fn>
  void DrainCq(Fn&& fn) {
    uint32_t head = *cq_khead_;
    const uint32_t tail = __atomic_load_n(cq_ktail_, __ATOMIC_ACQUIRE);
    while (head != tail) {
      fn(cqes_[head & cq_mask_]);
      ++head;
    }
    __atomic_store_n(cq_khead_, head, __ATOMIC_RELEASE);
  }

  // Hand a consumed provided buffer back. Call PublishBuffers() once
  // per batch (EndPass) to make them visible. In legacy mode the refill
  // is an SQE instead of a ring-entry write; it rides the next pass's
  // enter, so either way recycling adds no syscall.
  void Recycle(uint16_t bid) {
    if (buf_mode_ == UringBufMode::kLegacy) {
      io_uring_sqe* sqe = GetSqe(nullptr);
      sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
      sqe->addr = reinterpret_cast<uint64_t>(BufferData(bid));
      sqe->len = buf_size_;
      sqe->fd = 1;
      sqe->off = bid;
      sqe->buf_group = buf_group_;
      sqe->user_data = kTagIgnore;
      return;
    }
    io_uring_buf* entry = &buf_ring_->bufs[buf_tail_ & (buf_count_ - 1)];
    entry->addr = reinterpret_cast<uint64_t>(BufferData(bid));
    entry->len = buf_size_;
    entry->bid = bid;
    ++buf_tail_;
  }

  void PublishBuffers() {
    if (buf_mode_ == UringBufMode::kLegacy) return;
    __atomic_store_n(&buf_ring_->tail, static_cast<uint16_t>(buf_tail_),
                     __ATOMIC_RELEASE);
  }

  uint8_t* BufferData(uint16_t bid) const {
    return buf_data_ + static_cast<size_t>(bid) * buf_size_;
  }

  uint16_t buf_group() const { return buf_group_; }
  unsigned buf_size() const { return buf_size_; }
  int ring_fd() const { return ring_fd_; }

 private:
  unsigned Publish() {
    __atomic_store_n(sq_ktail_, sq_local_tail_, __ATOMIC_RELEASE);
    return sq_local_tail_ - __atomic_load_n(sq_khead_, __ATOMIC_ACQUIRE);
  }

  int ring_fd_ = -1;
  void* sq_ptr_ = nullptr;
  void* cq_ptr_ = nullptr;
  size_t sq_bytes_ = 0;
  size_t cq_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  unsigned sq_entries_ = 0;
  uint32_t* sq_khead_ = nullptr;
  uint32_t* sq_ktail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  uint32_t sq_local_tail_ = 0;
  uint32_t* cq_khead_ = nullptr;
  uint32_t* cq_ktail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  io_uring_buf_ring* buf_ring_ = nullptr;
  size_t buf_ring_bytes_ = 0;
  uint8_t* buf_data_ = nullptr;
  uint16_t buf_group_ = 0;
  unsigned buf_count_ = 0;
  unsigned buf_size_ = 0;
  uint32_t buf_tail_ = 0;
  UringBufMode buf_mode_ = UringBufMode::kBufRing;
};

// Ring geometry per shard. 64 provided buffers of 32 KiB bound one
// pass's inbound payload at 2 MiB per shard; the CQ is sized generously
// because multishot ops can fan one SQE into many CQEs.
constexpr unsigned kSqEntries = 256;
constexpr unsigned kCqEntries = 4096;
constexpr unsigned kBufCount = 64;
constexpr unsigned kBufSize = 32 * 1024;
constexpr uint16_t kBufGroup = 7;
// Per-connection send staging cap: flush bytes beyond it stay in the
// server's fallback queue, exactly like a full socket buffer on epoll.
constexpr size_t kSendBufBytes = 128 * 1024;

class UringShardTransport final : public ShardTransport {
 public:
  UringShardTransport(int listen_fd, TransportCounters* counters)
      : listen_fd_(listen_fd), counters_(counters) {}

  ~UringShardTransport() override {
    // Closing the ring fd (UringCore's destructor) cancels every
    // pending op kernel-side; all conns were Destroy()ed by the server,
    // so only zombies (ops not yet drained) still hold fds.
    for (UringConn* conn : zombies_) {
      if (conn->fd >= 0) close(conn->fd);
      delete conn;
    }
    if (wake_fd_ >= 0) close(wake_fd_);
  }

  Status Init() {
    // Runs (and caches) the functional probe, which also settles which
    // buffer mode this kernel honours.
    if (!UringAvailable()) {
      return InternalError("io_uring functional probe failed on this host");
    }
    wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return UringErrnoError("eventfd", errno);
    MBP_RETURN_IF_ERROR(core_.Init(kSqEntries, kCqEntries, kBufGroup,
                                   kBufCount, kBufSize, g_uring_buf_mode));
    ArmWake();
    ArmAccept();
    return Status::OK();
  }

  TransportKind kind() const override { return TransportKind::kUring; }

  void Wait(std::vector<TransportEvent>* events, Arena* scratch,
            int timeout_ms) override {
    (void)scratch;  // payload lives in provided buffers until EndPass
    if (!core_.SubmitAndWait(timeout_ms, counters_)) return;
    core_.DrainCq([&](const io_uring_cqe& cqe) { OnCqe(cqe, events); });
  }

  bool Adopt(TransportConn* tconn) override {
    auto* conn = static_cast<UringConn*>(tconn);
    const int one = 1;
    (void)setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ArmRecv(conn);
    return true;
  }

  void Refuse(TransportConn* tconn) override {
    auto* conn = static_cast<UringConn*>(tconn);
    // No ops were ever armed for an unadopted fd: close directly.
    if (conn->fd >= 0) close(conn->fd);
    delete conn;
  }

  ssize_t Writev(TransportConn* tconn, const iovec* iov,
                 int iov_count) override {
    auto* conn = static_cast<UringConn*>(tconn);
    if (conn->send_buf == nullptr) {
      conn->send_buf = std::make_unique<uint8_t[]>(kSendBufBytes);
    }
    // Compact when nothing references the buffer (no inflight SEND).
    if (!conn->send_inflight && conn->send_sent > 0) {
      std::memmove(conn->send_buf.get(),
                   conn->send_buf.get() + conn->send_sent,
                   conn->send_size - conn->send_sent);
      conn->send_size -= conn->send_sent;
      conn->send_sent = 0;
    }
    size_t space = kSendBufBytes - conn->send_size;
    if (space == 0) {
      errno = EAGAIN;
      return -1;
    }
    size_t accepted = 0;
    for (int i = 0; i < iov_count && space > 0; ++i) {
      const size_t n = std::min(space, iov[i].iov_len);
      std::memcpy(conn->send_buf.get() + conn->send_size, iov[i].iov_base,
                  n);
      conn->send_size += n;
      space -= n;
      accepted += n;
    }
    if (!conn->send_inflight) SubmitSend(conn);
    return static_cast<ssize_t>(accepted);
  }

  size_t Unflushed(TransportConn* tconn) const override {
    auto* conn = static_cast<const UringConn*>(tconn);
    return conn->send_size - conn->send_sent;
  }

  void UpdateInterest(TransportConn* tconn, bool want_read,
                      bool want_write) override {
    auto* conn = static_cast<UringConn*>(tconn);
    conn->want_write = want_write;
    if (want_read == conn->want_read) return;
    conn->want_read = want_read;
    if (!want_read && conn->recv_armed) {
      // Read pause: cancel the multishot recv by its user_data. Already-
      // completed buffers still deliver (bounded by the buffer pool);
      // fresh socket bytes stop flowing until re-armed.
      io_uring_sqe* sqe = core_.GetSqe(counters_);
      sqe->opcode = IORING_OP_ASYNC_CANCEL;
      sqe->addr = reinterpret_cast<uint64_t>(conn) | kTagRecv;
      sqe->user_data = kTagIgnore;
    } else if (want_read) {
      QueueRearm(conn);  // re-armed at EndPass once the cancel drains
    }
  }

  void OnClose(TransportConn* tconn) override {
    auto* conn = static_cast<UringConn*>(tconn);
    conn->closed = true;
    // Cancel everything pending on the fd; completions drain as
    // -ECANCELED CQEs which clear the op flags.
    io_uring_sqe* sqe = core_.GetSqe(counters_);
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->cancel_flags = IORING_ASYNC_CANCEL_FD | IORING_ASYNC_CANCEL_ALL;
    sqe->fd = conn->fd;
    sqe->user_data = kTagIgnore;
  }

  void Destroy(TransportConn* tconn) override {
    auto* conn = static_cast<UringConn*>(tconn);
    conn->doomed = true;
    MaybeFinalize(conn);
  }

  void StopAccepting() override {
    accepting_ = false;
    if (accept_armed_) {
      io_uring_sqe* sqe = core_.GetSqe(counters_);
      sqe->opcode = IORING_OP_ASYNC_CANCEL;
      sqe->addr = kTagAccept;
      sqe->user_data = kTagIgnore;
    }
  }

  void Wake() override {
    const uint64_t one = 1;
    (void)!write(wake_fd_, &one, sizeof(one));
  }

  void EndPass() override {
    // 1. Hand every buffer consumed by this pass's recv completions
    //    back to the kernel: pure shared-memory tail bump.
    if (!consumed_bids_.empty()) {
      for (const uint16_t bid : consumed_bids_) core_.Recycle(bid);
      consumed_bids_.clear();
      core_.PublishBuffers();
    }
    // 2. Queue re-arms; the next Wait's enter submits them all.
    if (accepting_ && !accept_armed_) ArmAccept();
    if (!wake_armed_) ArmWake();
    for (UringConn* conn : rearm_) {
      conn->rearm_queued = false;
      if (!conn->closed && !conn->doomed && conn->want_read &&
          !conn->recv_armed) {
        ArmRecv(conn);
      }
    }
    rearm_.clear();
    // 3. Retry sends an injected stall deferred. Swap first: SubmitSend
    //    can re-defer into resend_ when the stall is still armed.
    std::vector<UringConn*> retry;
    retry.swap(resend_);
    for (UringConn* conn : retry) {
      conn->resend_queued = false;
      if (!conn->closed && !conn->doomed && !conn->send_inflight) {
        SubmitSend(conn);
      }
    }
  }

 private:
  void ArmAccept() {
    io_uring_sqe* sqe = core_.GetSqe(counters_);
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = listen_fd_;
    sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->accept_flags = SOCK_CLOEXEC;
    sqe->user_data = kTagAccept;
    accept_armed_ = true;
  }

  void ArmWake() {
    io_uring_sqe* sqe = core_.GetSqe(counters_);
    sqe->opcode = IORING_OP_READ;
    sqe->fd = wake_fd_;
    sqe->addr = reinterpret_cast<uint64_t>(&wake_buf_);
    sqe->len = sizeof(wake_buf_);
    sqe->user_data = kTagWake;
    wake_armed_ = true;
  }

  void ArmRecv(UringConn* conn) {
    io_uring_sqe* sqe = core_.GetSqe(counters_);
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = conn->fd;
    sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = core_.buf_group();
    sqe->user_data = reinterpret_cast<uint64_t>(conn) | kTagRecv;
    conn->recv_armed = true;
  }

  void SubmitSend(UringConn* conn) {
    size_t len = conn->send_size - conn->send_sent;
    if (len == 0) return;
    // The shared send-stall point (chaos parity with the epoll backend's
    // FaultSend): the SEND SQE is simply not submitted this pass; EndPass
    // keeps retrying, so a transient fire only delays the flush while a
    // probability-1 schedule wedges the connection for the bounded-drain
    // paths to kill.
    if (MBP_FAULT_POINT("net.send.eagain")) {
      QueueResend(conn);
      return;
    }
    if (len > 1 && MBP_FAULT_POINT("net.uring.send.short")) len = 1;
    io_uring_sqe* sqe = core_.GetSqe(counters_);
    sqe->opcode = IORING_OP_SEND;
    sqe->fd = conn->fd;
    sqe->addr =
        reinterpret_cast<uint64_t>(conn->send_buf.get() + conn->send_sent);
    sqe->len = static_cast<uint32_t>(len);
    sqe->msg_flags = MSG_NOSIGNAL;
    sqe->user_data = reinterpret_cast<uint64_t>(conn) | kTagSend;
    conn->send_inflight = true;
  }

  void QueueRearm(UringConn* conn) {
    if (conn->rearm_queued) return;
    conn->rearm_queued = true;
    rearm_.push_back(conn);
  }

  void QueueResend(UringConn* conn) {
    if (conn->resend_queued) return;
    conn->resend_queued = true;
    resend_.push_back(conn);
  }

  void MaybeFinalize(UringConn* conn) {
    if (!conn->doomed || conn->recv_armed || conn->send_inflight) {
      if (conn->doomed && !conn->zombie_listed) {
        conn->zombie_listed = true;
        zombies_.push_back(conn);
      }
      return;
    }
    if (conn->zombie_listed) {
      zombies_.erase(std::find(zombies_.begin(), zombies_.end(), conn));
    }
    if (conn->fd >= 0) close(conn->fd);
    delete conn;
  }

  void OnCqe(const io_uring_cqe& cqe, std::vector<TransportEvent>* events) {
    const uint64_t tag = cqe.user_data & kTagMask;
    switch (tag) {
      case kTagAccept: {
        if (!(cqe.flags & IORING_CQE_F_MORE)) accept_armed_ = false;
        if (cqe.res < 0) return;  // -ECANCELED at drain, transient errors
        if (!accepting_) {
          close(cqe.res);
          return;
        }
        auto* conn = new UringConn();
        conn->fd = cqe.res;
        events->push_back(
            TransportEvent{TransportEvent::Kind::kAccept, conn, nullptr, 0});
        return;
      }
      case kTagWake: {
        wake_armed_ = false;  // re-armed at EndPass
        return;
      }
      case kTagIgnore:
        return;
      case kTagSend: {
        auto* conn = reinterpret_cast<UringConn*>(cqe.user_data & ~kTagMask);
        conn->send_inflight = false;
        if (cqe.res < 0) {
          if (cqe.res != -ECANCELED && !conn->closed && !conn->doomed) {
            events->push_back(TransportEvent{TransportEvent::Kind::kError,
                                             conn, nullptr, 0});
          }
          MaybeFinalize(conn);
          return;
        }
        conn->send_sent += static_cast<size_t>(cqe.res);
        if (conn->send_sent < conn->send_size) {
          if (!conn->closed && !conn->doomed) SubmitSend(conn);
        } else {
          conn->send_sent = conn->send_size = 0;
          if (conn->want_write && !conn->closed && !conn->doomed) {
            events->push_back(TransportEvent{TransportEvent::Kind::kWritable,
                                             conn, nullptr, 0});
          }
        }
        MaybeFinalize(conn);
        return;
      }
      case kTagRecv: {
        auto* conn = reinterpret_cast<UringConn*>(cqe.user_data & ~kTagMask);
        if (!(cqe.flags & IORING_CQE_F_MORE)) {
          conn->recv_armed = false;
          if (!conn->closed && !conn->doomed) QueueRearm(conn);
        }
        if (cqe.res < 0) {
          // -ENOBUFS: pool exhausted mid-pass; EndPass recycles and the
          // re-arm queued above restarts the stream. -ECANCELED: pause
          // or close. Anything else is a connection error.
          if (cqe.res != -ENOBUFS && cqe.res != -ECANCELED &&
              !conn->closed && !conn->doomed) {
            events->push_back(TransportEvent{TransportEvent::Kind::kError,
                                             conn, nullptr, 0});
          }
          MaybeFinalize(conn);
          return;
        }
        if (cqe.res == 0) {
          if (!conn->closed && !conn->doomed) {
            events->push_back(
                TransportEvent{TransportEvent::Kind::kEof, conn, nullptr, 0});
          }
          MaybeFinalize(conn);
          return;
        }
        if (!(cqe.flags & IORING_CQE_F_BUFFER)) return;  // cannot happen
        const uint16_t bid =
            static_cast<uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
        consumed_bids_.push_back(bid);  // recycled at EndPass
        if (conn->closed || conn->doomed) return;
        const uint8_t* data = core_.BufferData(bid);
        size_t size = static_cast<size_t>(cqe.res);
        if (size > 1 && MBP_FAULT_POINT("net.uring.recv.short")) {
          // Split delivery: a 1-byte fragment then the remainder, which
          // drives the decoder's cross-event carry path on demand.
          events->push_back(
              TransportEvent{TransportEvent::Kind::kData, conn, data, 1});
          data += 1;
          size -= 1;
        }
        events->push_back(
            TransportEvent{TransportEvent::Kind::kData, conn, data, size});
        return;
      }
      default:
        return;
    }
  }

  int listen_fd_ = -1;
  TransportCounters* counters_;
  UringCore core_;
  int wake_fd_ = -1;
  uint64_t wake_buf_ = 0;
  bool accepting_ = true;
  bool accept_armed_ = false;
  bool wake_armed_ = false;
  std::vector<uint16_t> consumed_bids_;
  std::vector<UringConn*> rearm_;
  std::vector<UringConn*> resend_;
  std::vector<UringConn*> zombies_;
};

// Functional probe for one buffer mode: everything the backend relies
// on must actually work, not just be defined in headers or accepted by
// io_uring_register — multishot recv delivering a byte into a selected
// buffer over a socketpair, EXT_ARG timed waits.
bool ProbeWithMode(UringBufMode mode) {
  const bool dbg = std::getenv("MBP_URING_DEBUG") != nullptr;
  UringCore core;
  const Status init = core.Init(8, 16, 9, 4, 4096, mode);
  if (!init.ok()) {
    if (dbg) std::fprintf(stderr, "probe init: %s\n", init.ToString().c_str());
    return false;
  }
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) < 0) {
    return false;
  }
  bool ok = false;
  io_uring_sqe* sqe = core.GetSqe(nullptr);
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = sv[0];
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = core.buf_group();
  sqe->user_data = 1;
  const char byte = 'x';
  if (write(sv[1], &byte, 1) == 1 && core.SubmitAndWait(1000, nullptr)) {
    core.DrainCq([&](const io_uring_cqe& cqe) {
      if (dbg) {
        std::fprintf(stderr, "probe cqe ud=%llu res=%d flags=%#x\n",
                     static_cast<unsigned long long>(cqe.user_data), cqe.res,
                     cqe.flags);
      }
      if (cqe.user_data == 1 && cqe.res == 1 &&
          (cqe.flags & IORING_CQE_F_BUFFER)) {
        ok = true;
      }
    });
  } else if (dbg) {
    std::fprintf(stderr, "probe write/enter failed errno=%d\n", errno);
  }
  close(sv[0]);
  close(sv[1]);
  return ok;
}

// One-shot probe run behind UringAvailable(): prefer the registered
// buffer ring, fall back to the legacy provide-buffers pool, give up
// (-> epoll) when neither observably works.
bool RunUringProbe() {
  const char* force = std::getenv("MBP_FORCE_NO_URING");
  if (force != nullptr && force[0] == '1') return false;
  if (ProbeWithMode(UringBufMode::kBufRing)) {
    g_uring_buf_mode = UringBufMode::kBufRing;
    return true;
  }
  if (ProbeWithMode(UringBufMode::kLegacy)) {
    g_uring_buf_mode = UringBufMode::kLegacy;
    return true;
  }
  return false;
}

}  // namespace

bool UringAvailable() {
  static const bool available = RunUringProbe();
  return available;
}

std::unique_ptr<ShardTransport> MakeUringShardTransport(
    int listen_fd, TransportCounters* counters, Status* status) {
  auto transport =
      std::make_unique<UringShardTransport>(listen_fd, counters);
  const Status init = transport->Init();
  if (!init.ok()) {
    *status = init;
    return nullptr;
  }
  *status = Status::OK();
  return transport;
}

#else  // !MBP_HAVE_URING

bool UringAvailable() { return false; }

std::unique_ptr<ShardTransport> MakeUringShardTransport(
    int listen_fd, TransportCounters* counters, Status* status) {
  (void)listen_fd;
  (void)counters;
  *status = UnimplementedError(
      "io_uring backend compiled out (userspace headers predate 6.0)");
  return nullptr;
}

#endif  // MBP_HAVE_URING

}  // namespace mbp::net

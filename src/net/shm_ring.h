#ifndef MBP_NET_SHM_RING_H_
#define MBP_NET_SHM_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/statusor.h"
#include "net/transport.h"

// Shared-memory ring transport for co-located clients (DESIGN.md §5h).
//
// One file-backed segment per server, mmap'd MAP_SHARED by the server
// and every client. The segment is a header plus a fixed array of
// connection slots; each slot carries one SPSC byte ring per direction
// (client→server "c2s", server→client "s2c") that streams the exact
// same checksummed frames the TCP transports carry — the protocol
// layer cannot tell the transports apart, which is what keeps the
// bit-identity audit meaningful across all three.
//
// Layout (64-byte aligned throughout; all offsets derivable from the
// header, so any same-version mapping can navigate it):
//
//   SegHeader
//   slot[0]: SlotHeader | c2s data (ring_bytes) | s2c data (ring_bytes)
//   slot[1]: ...
//
// Ring protocol (single producer, single consumer, byte-granular):
//   head/tail are free-running u64 byte positions (index = pos & mask).
//   Producer: copy (two memcpys at wrap), tail.store(release), bump
//   data_seq, FUTEX_WAKE it iff consumer_waiting — waking an awake peer
//   is skipped, so the spin path costs zero syscalls. Consumer: mirror
//   with head / space_seq / producer_waiting for the writers blocked on
//   a full ring.
//
// Doorbell protocol (client → server): the server's shm shards sleep on
// ONE global futex word (doorbell_seq) after an empty scan of their
// slots. Clients bump it (and wake iff server_waiting) after anything
// the server might be parked on: a connect HELLO, c2s bytes, a close,
// or consuming s2c bytes (write-space for a want-write connection).
// Every sleep on either side is bounded (<= ~100ms), so a lost wake —
// including the injected net.shm.wake.drop chaos point — costs latency,
// never liveness.
//
// Connect handshake: a client claims a FREE slot with a CAS to CLAIMED,
// stamps its token, then publishes HELLO. The server answers ACTIVE
// (adopted) or resets the slot (refused, after a short grace so the
// client can observe it). The token disambiguates slot recycling: a
// client that ever sees a different token knows the slot is no longer
// its connection. A client that exits without Close() leaks its slot
// until the segment dies — co-located clients are trusted to that
// extent (no robust-futex recovery here).
//
// Chaos points (net/fault_syscalls.h catalog style; injected BEFORE the
// real operation so framing is never corrupted — short transfers move
// real bytes):
//   net.shm.read.short    ring read clamped to 1 byte
//   net.shm.write.short   ring write clamped to 1 byte
//   net.shm.futex.eintr   a futex wait returns immediately (spurious)
//   net.shm.wake.drop     a futex wake is skipped (lost wake)

namespace mbp::net {

namespace shm_internal {

// "MBPSHM1\0" read little-endian.
inline constexpr uint64_t kShmMagic = 0x00314D4853504D42ULL;
inline constexpr uint32_t kShmVersion = 1;

// Slot lifecycle states.
inline constexpr uint32_t kSlotFree = 0;
inline constexpr uint32_t kSlotClaimed = 1;  // client won the CAS, pre-HELLO
inline constexpr uint32_t kSlotHello = 2;    // client asks to be served
inline constexpr uint32_t kSlotActive = 3;   // server adopted
inline constexpr uint32_t kSlotRefused = 4;  // server refused; grace-held
inline constexpr uint32_t kSlotClientClosed = 5;
inline constexpr uint32_t kSlotServerClosed = 6;  // shed / killed / drained

// One direction's ring bookkeeping. Hot words are cacheline-separated:
// head and tail are each written by exactly one side.
struct RingHeader {
  std::atomic<uint64_t> head;  // bytes consumed (consumer-owned)
  char pad0[56];
  std::atomic<uint64_t> tail;  // bytes published (producer-owned)
  char pad1[56];
  std::atomic<uint32_t> data_seq;          // producer bumps after publish
  std::atomic<uint32_t> consumer_waiting;  // consumer parked on data_seq
  std::atomic<uint32_t> space_seq;         // consumer bumps after consume
  std::atomic<uint32_t> producer_waiting;  // producer parked on space_seq
  char pad2[48];
};
static_assert(sizeof(RingHeader) == 192, "three cache lines");

struct SlotHeader {
  std::atomic<uint32_t> state;
  std::atomic<uint32_t> pad_state;
  std::atomic<uint64_t> token;  // claimant identity, stamped pre-HELLO
  char pad0[48];
  RingHeader c2s;
  RingHeader s2c;
};
static_assert(sizeof(SlotHeader) == 64 + 2 * 192, "aligned slot header");

struct SegHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t num_slots;
  uint64_t ring_bytes;   // per direction, power of two
  uint64_t slot_stride;  // sizeof(SlotHeader) + 2 * ring_bytes
  std::atomic<uint32_t> open;            // 1 while the server serves
  std::atomic<uint32_t> doorbell_seq;    // client->server futex word
  std::atomic<uint32_t> server_waiting;  // shm shards parked on doorbell
  uint32_t pad;
  char pad2[64];
};

// Bounded futex wait on a 32-bit word in shared memory. Returns after a
// wake, a value mismatch, EINTR (or the injected net.shm.futex.eintr),
// or timeout_ms — callers always rescan, so every return is safe.
void ShmFutexWait(std::atomic<uint32_t>* word, uint32_t expected,
                  int timeout_ms, Counter* syscalls);
// FUTEX_WAKE on `word` (all waiters). Honors net.shm.wake.drop; returns
// whether a wake syscall was actually issued.
bool ShmFutexWake(std::atomic<uint32_t>* word, Counter* syscalls);

// One mapped ring endpoint. Copies honor the net.shm.{read,write}.short
// chaos points; sequence bumps and conditional wakes are built in so
// both sides speak the identical protocol.
struct RingView {
  RingHeader* hdr = nullptr;
  uint8_t* data = nullptr;
  uint64_t mask = 0;  // capacity - 1

  uint64_t ReadAvailable() const {
    return hdr->tail.load(std::memory_order_acquire) -
           hdr->head.load(std::memory_order_relaxed);
  }
  uint64_t WriteSpace() const {
    return (mask + 1) - (hdr->tail.load(std::memory_order_relaxed) -
                         hdr->head.load(std::memory_order_acquire));
  }
  // Producer side: copies up to `n` bytes in, publishes, wakes a parked
  // consumer. Returns bytes accepted (0 when full).
  size_t Write(const uint8_t* src, size_t n, Counter* syscalls,
               Counter* wakes);
  // Consumer side: copies up to `max` bytes out, publishes the freed
  // space, wakes a parked producer. Returns bytes read (0 when empty).
  size_t Read(uint8_t* dst, size_t max, Counter* syscalls, Counter* wakes);
};

}  // namespace shm_internal

struct ShmSegmentOptions {
  std::string path;
  // Connection slots (max concurrent shm clients).
  size_t slots = 32;
  // Per-direction ring capacity in bytes; rounded up to a power of two,
  // floored at 64 KiB so any protocol frame streams through.
  size_t ring_bytes = 1 << 20;
};

// The mmap'd segment. The server Create()s it (owning the file: it is
// truncated into existence and unlinked at destruction); clients Open()
// an existing one. All navigation accessors are const and cheap.
class ShmSegment {
 public:
  static StatusOr<std::unique_ptr<ShmSegment>> Create(
      const ShmSegmentOptions& options);
  static StatusOr<std::unique_ptr<ShmSegment>> Open(const std::string& path);

  ~ShmSegment();

  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  const std::string& path() const { return path_; }
  size_t num_slots() const;
  uint64_t ring_bytes() const;
  bool is_open() const;

  shm_internal::SegHeader* header() const;
  shm_internal::SlotHeader* slot(size_t index) const;
  // Ring endpoints for slot `index`; direction named from the client's
  // perspective (c2s = client writes, server reads).
  shm_internal::RingView c2s(size_t index) const;
  shm_internal::RingView s2c(size_t index) const;

  // Client -> server doorbell: bump, wake iff a shard is parked.
  void RingDoorbell(Counter* syscalls, Counter* wakes) const;

  // Server shutdown: mark closed and wake every parked peer (clients
  // blocked on response futexes, shards on the doorbell) so they
  // observe it promptly. Idempotent.
  void BeginShutdown();

 private:
  ShmSegment() = default;

  std::string path_;
  bool owner_ = false;  // Create()d: unlink on destruction
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
};

// Shard transport serving the segment's slots. Shard `shard_index` of
// `num_shards` owns slots where slot % num_shards == shard_index; a
// slot's whole lifetime stays on one shard thread. `segment` and
// `counters` must outlive the transport.
std::unique_ptr<ShardTransport> MakeShmShardTransport(
    ShmSegment* segment, size_t shard_index, size_t num_shards,
    TransportCounters* counters, Status* status);

}  // namespace mbp::net

#endif  // MBP_NET_SHM_RING_H_

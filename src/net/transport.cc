#include "net/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/fault_syscalls.h"
#include "net/protocol.h"

namespace mbp::net {

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kEpoll:
      return "epoll";
    case TransportKind::kUring:
      return "uring";
    case TransportKind::kShm:
      return "shm";
  }
  return "unknown";
}

bool ParseTransportKind(std::string_view name, TransportKind* out) {
  if (name == "epoll") {
    *out = TransportKind::kEpoll;
  } else if (name == "uring" || name == "io_uring") {
    *out = TransportKind::kUring;
  } else if (name == "shm") {
    *out = TransportKind::kShm;
  } else {
    return false;
  }
  return true;
}

namespace {

// Floor/ceiling on the single sized recv each readiness event issues:
// at least one page-multiple chunk even when FIONREAD reports nothing
// (spurious wakeup), at most one max frame's worth so a firehose peer
// cannot make one connection monopolize the pass or balloon the arena.
constexpr size_t kMinReadBytes = 64 * 1024;
constexpr size_t kMaxReadBytes = kMaxFrameBytes;

struct EpollConn : TransportConn {
  int fd = -1;
  uint32_t armed = EPOLLIN;  // events currently registered with epoll
};

// The extracted epoll backend: readiness from one epoll instance per
// shard, the listening socket shared across shards with EPOLLEXCLUSIVE,
// one FIONREAD-sized recv per readiness event, one scatter-gather
// sendmsg per flush. This is the pre-seam PriceServer data path moved
// verbatim behind the ShardTransport interface; its syscall sequence is
// unchanged.
class EpollShardTransport final : public ShardTransport {
 public:
  EpollShardTransport(int listen_fd, TransportCounters* counters)
      : listen_fd_(listen_fd), counters_(counters) {}

  ~EpollShardTransport() override {
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
  }

  Status Init() {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return InternalError(std::string("epoll_create1: ") +
                           std::strerror(errno));
    }
    wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) {
      return InternalError(std::string("eventfd: ") + std::strerror(errno));
    }
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.ptr = &wake_tag_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake) < 0) {
      return InternalError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
    }
    // EPOLLEXCLUSIVE: each shard registers the one listening socket and
    // the kernel wakes a single shard per pending accept, spreading
    // connections without a dedicated acceptor thread.
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.ptr = &listen_tag_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
      return InternalError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
    }
    return Status::OK();
  }

  TransportKind kind() const override { return TransportKind::kEpoll; }

  void Wait(std::vector<TransportEvent>* events, Arena* scratch,
            int timeout_ms) override {
    constexpr int kMaxEvents = 64;
    epoll_event ready[kMaxEvents];
    counters_->transport_syscalls.Increment();
    const int n =
        internal::FaultEpollWait(epoll_fd_, ready, kMaxEvents, timeout_ms);
    if (n < 0) return;  // EINTR: the caller's loop just comes back around
    for (int i = 0; i < n; ++i) {
      void* tag = ready[i].data.ptr;
      if (tag == &listen_tag_) {
        AcceptReady(events);
        continue;
      }
      if (tag == &wake_tag_) {
        uint64_t drained = 0;
        counters_->transport_syscalls.Increment();
        (void)!read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      auto* conn = static_cast<EpollConn*>(tag);
      if (ready[i].events & (EPOLLERR | EPOLLHUP)) {
        events->push_back(
            TransportEvent{TransportEvent::Kind::kError, conn, nullptr, 0});
        continue;
      }
      if (ready[i].events & EPOLLIN) ReadReady(conn, events, scratch);
      if (ready[i].events & EPOLLOUT) {
        events->push_back(
            TransportEvent{TransportEvent::Kind::kWritable, conn, nullptr, 0});
      }
    }
  }

  bool Adopt(TransportConn* tconn) override {
    auto* conn = static_cast<EpollConn*>(tconn);
    const int one = 1;
    (void)setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn;
    counters_->transport_syscalls.Increment();
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
      close(conn->fd);
      delete conn;
      return false;
    }
    conn->armed = EPOLLIN;
    return true;
  }

  void Refuse(TransportConn* tconn) override {
    auto* conn = static_cast<EpollConn*>(tconn);
    close(conn->fd);
    delete conn;
  }

  ssize_t Writev(TransportConn* tconn, const iovec* iov,
                 int iov_count) override {
    counters_->transport_syscalls.Increment();
    return internal::FaultWritev(static_cast<EpollConn*>(tconn)->fd, iov,
                                 iov_count);
  }

  void UpdateInterest(TransportConn* tconn, bool want_read,
                      bool want_write) override {
    auto* conn = static_cast<EpollConn*>(tconn);
    const uint32_t want =
        (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    if (want == conn->armed) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.ptr = conn;
    counters_->transport_syscalls.Increment();
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->armed = want;
    }
  }

  void OnClose(TransportConn* tconn) override {
    counters_->transport_syscalls.Increment();
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL,
                    static_cast<EpollConn*>(tconn)->fd, nullptr);
  }

  // The fd is closed here, NOT in OnClose: a dead connection stays in
  // the shard's table until the end-of-pass sweep, and closing the fd
  // early would free its number for accept4 to hand out again within
  // the same pass — the new connection would then collide with the
  // dying one's kernel-side state.
  void Destroy(TransportConn* tconn) override {
    auto* conn = static_cast<EpollConn*>(tconn);
    if (conn->fd >= 0) close(conn->fd);
    delete conn;
  }

  void StopAccepting() override {
    if (accepting_) {
      (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      accepting_ = false;
    }
  }

  void Wake() override {
    const uint64_t one = 1;
    (void)!write(wake_fd_, &one, sizeof(one));
  }

  void EndPass() override {}

 private:
  void AcceptReady(std::vector<TransportEvent>* events) {
    while (true) {
      counters_->transport_syscalls.Increment();
      const int fd = internal::FaultAccept4(listen_fd_, nullptr, nullptr,
                                            SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN (no more pending) or a transient accept error
      }
      auto* conn = new EpollConn();
      conn->fd = fd;
      events->push_back(
          TransportEvent{TransportEvent::Kind::kAccept, conn, nullptr, 0});
    }
  }

  void ReadReady(EpollConn* conn, std::vector<TransportEvent>* events,
                 Arena* scratch) {
    // One sized recv per readiness event: FIONREAD tells us how much the
    // kernel has buffered, and a single recv drains it into pass-scoped
    // arena memory (clamped to [kMinReadBytes, kMaxReadBytes]; a clamped
    // remainder re-fires the level-triggered epoll next pass). This path
    // never issues a recv it expects to fail with EAGAIN.
    int queued = 0;
    counters_->transport_syscalls.Increment();
    if (ioctl(conn->fd, FIONREAD, &queued) < 0 || queued < 0) queued = 0;
    const size_t want = std::clamp(static_cast<size_t>(queued), kMinReadBytes,
                                   kMaxReadBytes);
    uint8_t* buf = scratch->AllocateArray<uint8_t>(want);
    ssize_t n;
    do {
      counters_->transport_syscalls.Increment();
      n = internal::FaultRecv(conn->fd, buf, want);
    } while (n < 0 && errno == EINTR);
    if (n == 0) {  // orderly peer close
      events->push_back(
          TransportEvent{TransportEvent::Kind::kEof, conn, nullptr, 0});
      return;
    }
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        events->push_back(
            TransportEvent{TransportEvent::Kind::kError, conn, nullptr, 0});
      }
      return;
    }
    events->push_back(TransportEvent{TransportEvent::Kind::kData, conn, buf,
                                     static_cast<size_t>(n)});
  }

  int listen_fd_ = -1;
  TransportCounters* counters_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool accepting_ = true;
  // Address-identity tags for the two non-connection registrations.
  char listen_tag_ = 0;
  char wake_tag_ = 0;
};

}  // namespace

std::unique_ptr<ShardTransport> MakeEpollShardTransport(
    int listen_fd, TransportCounters* counters, Status* status) {
  auto transport =
      std::make_unique<EpollShardTransport>(listen_fd, counters);
  const Status init = transport->Init();
  if (!init.ok()) {
    *status = init;
    return nullptr;
  }
  *status = Status::OK();
  return transport;
}

}  // namespace mbp::net

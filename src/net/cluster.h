#ifndef MBP_NET_CLUSTER_H_
#define MBP_NET_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "net/client.h"

namespace mbp::net {

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

// Parses "host:port[,host:port...]" (host may be omitted: ":7001" means
// 127.0.0.1). Rejects empty lists, bad ports, duplicate endpoints.
StatusOr<std::vector<Endpoint>> ParseEndpoints(std::string_view csv);
std::string EndpointLabel(const Endpoint& endpoint);  // "host:port"

// Ketama-style consistent-hash ring over N nodes (DESIGN.md §5g): each
// node is hashed onto the ring at `vnodes` pseudo-random points (FNV-1a-64
// of "label#i"), and a key routes to the first node point clockwise from
// the key's hash. Properties the fleet leans on:
//  - deterministic: any process that agrees on (labels, vnodes) computes
//    the identical ring, so shard servers can decide catalog ownership
//    with the same ring the clients route by — labels are STABLE NODE
//    NAMES ("shard-0"), not addresses, so the ring survives restarts and
//    ephemeral ports;
//  - balanced: vnodes spread each node's arc into many small slices;
//  - minimal disruption: adding/removing a node moves only the keys on
//    the slices it owned (~1/N of the keyspace).
//
// Route(key, attempt) returns the attempt-th DISTINCT node clockwise from
// the key — attempt 0 is the owner, attempt k the k-th failover target /
// replica holder, identical on every process. Immutable after
// construction, safe to share across threads.
class HashRing {
 public:
  explicit HashRing(const std::vector<std::string>& node_labels,
                    size_t vnodes = 64);

  size_t num_nodes() const { return num_nodes_; }

  // Node index owning `key` (attempt 0) or the attempt-th distinct
  // successor. attempt must be < num_nodes().
  size_t Route(std::string_view key, size_t attempt = 0) const;

  // True when `node` is among the first `replicas` distinct owners of
  // `key` — the ownership predicate a replicated shard uses to pick its
  // share of the catalog.
  bool Owns(std::string_view key, size_t node, size_t replicas) const;

 private:
  struct Point {
    uint64_t hash;
    uint32_t node;
  };
  std::vector<Point> ring_;  // sorted by hash
  size_t num_nodes_;
};

struct ClusterClientOptions {
  // Per-endpoint PriceClient options (retry ladder included: a failover
  // attempt only starts after the endpoint's own retry policy gave up).
  ClientOptions client;
  // Ring geometry — must match the fleet's shard processes exactly.
  size_t vnodes = 64;
  // Stable ring labels, one per endpoint, in endpoint order. Empty =>
  // "host:port" labels (fine for a fixed-address fleet; a fleet on
  // ephemeral ports passes "shard-<i>" labels on both sides).
  std::vector<std::string> node_labels;
  // Distinct endpoints tried per request: the owner plus failover
  // successors. 0 = all endpoints.
  size_t max_endpoint_attempts = 0;
  // After a transport-level failure an endpoint cools down for this long;
  // routing skips cooling endpoints when a non-cooling candidate remains.
  int cooldown_ms = 250;
  // Routing key used when a request's curve id is empty (the server-side
  // default curve lives on one specific shard).
  std::string default_curve_id;
};

// What the failover machinery did. Plain counters: ClusterPriceClient is
// single-threaded by contract, like PriceClient.
struct ClusterTelemetry {
  uint64_t failovers = 0;        // requests answered by a non-owner
  uint64_t endpoint_errors = 0;  // attempts that failed an endpoint over
  uint64_t cooldown_skips = 0;   // candidates skipped while cooling
};

// Consistent-hash routing front end over N PriceServers: curve-id-keyed
// ring routing, lazy per-endpoint PriceClient connections, and
// per-endpoint failover — a request that fails an endpoint at the
// transport level (or exhausts its retry ladder with kUnavailable /
// kDeadlineExceeded / kInternal) moves to the next distinct ring
// successor. Application answers (NotFound, InvalidArgument, ...) return
// immediately: failover is for faults, not for error semantics.
//
// Bit-identity contract: when every shard serves the same compiled curve
// for a given id (full replication, or ring ownership with replicas
// covering every failover target), answers are bit-identical to a local
// engine regardless of which endpoint served them — the fleet chaos test
// asserts exactly this while one shard is fault-stormed.
//
// Not thread-safe — one ClusterPriceClient per thread.
class ClusterPriceClient {
 public:
  static StatusOr<std::unique_ptr<ClusterPriceClient>> Create(
      std::vector<Endpoint> endpoints, ClusterClientOptions options = {});

  StatusOr<double> PriceAt(const std::string& curve_id, double x);
  StatusOr<std::vector<double>> PriceBatch(const std::string& curve_id,
                                           const std::vector<double>& xs);
  StatusOr<double> BudgetToX(const std::string& curve_id, double budget);
  StatusOr<SnapshotInfoPayload> SnapshotInfo(const std::string& curve_id);
  // STATS is endpoint-addressed, not curve-routed.
  StatusOr<StatsPayload> Stats(size_t endpoint);

  // Fulfillment verbs, curve-routed like the query verbs. Buy pins the
  // transaction id BEFORE the failover ladder (generating one when
  // txn_id == 0), so every endpoint attempt presents the same id and a
  // sale that failed over is still deduped per endpoint ledger. With the
  // fleet's shards sharing an epoch seed, the delivered bytes are
  // bit-identical regardless of which endpoint completed the sale.
  StatusOr<QuotePayload> Quote(const std::string& curve_id, double delta);
  StatusOr<BuyPayload> Buy(const std::string& curve_id, double delta,
                           uint64_t txn_id = 0,
                           const std::string& token = std::string());
  StatusOr<BuyPayload> Replay(const std::string& curve_id, uint64_t txn_id);

  // Fresh fleet-unique transaction id (never 0); same construction as
  // PriceClient::NextTransactionId.
  uint64_t NextTransactionId();

  // The owning endpoint index for `curve_id` (for tests and benchmarks).
  size_t RouteOf(std::string_view curve_id) const;

  size_t num_endpoints() const { return endpoints_.size(); }
  const HashRing& ring() const { return ring_; }
  const ClusterTelemetry& telemetry() const { return telemetry_; }

 private:
  using Clock = std::chrono::steady_clock;

  ClusterPriceClient(std::vector<Endpoint> endpoints,
                     ClusterClientOptions options, HashRing ring);

  // Lazily connected client for `endpoint`; (re)connects as needed.
  StatusOr<PriceClient*> ClientFor(size_t endpoint);
  // Routes + failover ladder around one verb invocation.
  template <typename Result, typename Invoke>
  StatusOr<Result> WithFailover(std::string_view curve_id,
                                const Invoke& invoke);
  bool Cooling(size_t endpoint) const;
  void CoolDown(size_t endpoint);

  std::vector<Endpoint> endpoints_;
  ClusterClientOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<PriceClient>> clients_;
  std::vector<Clock::time_point> cooldown_until_;
  uint64_t txn_base_ = 0;  // NextTransactionId entropy, lazily seeded
  uint64_t txn_seq_ = 0;
  ClusterTelemetry telemetry_;
};

}  // namespace mbp::net

#endif  // MBP_NET_CLUSTER_H_

#ifndef MBP_NET_SERVER_H_
#define MBP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "serving/fulfillment.h"
#include "serving/price_query_engine.h"

namespace mbp::net {

class ShmSegment;

struct ServerOptions {
  // Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral port —
  // the actual port is reported by PriceServer::port(), so tests and CI
  // never collide on a fixed number.
  uint16_t port = 0;

  // Event-loop shards. Each shard owns an epoll instance and a private
  // set of connections; the listening socket is shared across shards with
  // EPOLLEXCLUSIVE so the kernel spreads accepts. Snapshot resolution
  // inside the engine is pinned thread-locally per shard (DESIGN.md §5b),
  // so shards never contend on the registry's atomics between publishes.
  size_t num_shards = 2;

  // Curve served when a request's curve id is empty.
  std::string default_curve_id;

  // Total concurrent connections; accepts beyond the cap are closed
  // immediately.
  size_t max_connections = 1024;

  // Backpressure: once a connection's pending write queue exceeds this,
  // the shard stops READING from it (EPOLLIN off) until the queue drains
  // below half the cap — a slow consumer throttles itself instead of
  // growing an unbounded buffer. If the queue ever exceeds 4x the cap
  // (can only happen via one huge response frame) the connection dies.
  size_t max_write_queue_bytes = 1 << 20;

  // --- Degradation ladder (DESIGN.md §5e) -----------------------------
  // Rung 1 is the existing per-connection read pause (see
  // max_write_queue_bytes above). Rungs 2 and 3 shed work explicitly so
  // overload degrades into fast OVERLOADED/RETRY_LATER answers instead
  // of unbounded queues:

  // Soft accepted-connection high-water mark: while more than this many
  // connections are active, PRICE_AT / BUDGET_TO_X requests are answered
  // kUnavailable (OVERLOADED) without touching the engine — clients back
  // off, established traffic keeps its capacity. SNAPSHOT_INFO and STATS
  // stay served so operators can observe the overload. 0 disables the
  // rung (only the hard max_connections cap applies).
  size_t shed_connections = 0;

  // Per-connection write-queue shed mark: a request arriving while the
  // connection already has more than this many pending response bytes is
  // answered OVERLOADED (the peer is not consuming; doing engine work
  // for it only deepens the queue). 0 means "use max_write_queue_bytes".
  size_t shed_write_queue_bytes = 0;

  // Deadline-aware dropping: a PRICE_AT request whose age (decode to
  // batch flush) exceeds this is answered kDeadlineExceeded instead of
  // returning a stale price the client has already given up on. Only
  // fires when the event loop stalls (overload, injected faults).
  // 0 disables.
  int request_deadline_ms = 0;

  // Micro-batched PRICE_AT evaluation: each event-loop pass gathers every
  // decoded PRICE_AT query (across requests AND connections, grouped per
  // curve) into one PriceQueryEngine::PriceBatch call. Batches of at
  // least `min_pool_batch` queries fan out over the shared ThreadPool;
  // smaller ones run inline on the shard thread.
  size_t min_pool_batch = 4096;
  // Threads for the pooled batches (0 = hardware concurrency).
  size_t batch_threads = 0;

  // How long Shutdown() keeps flushing pending responses before closing
  // connections that cannot drain.
  int drain_timeout_ms = 5000;

  // --- Transport selection (DESIGN.md §5h) ----------------------------
  // Backend for the TCP shard loops. kUring needs kernel io_uring
  // support (multishot accept/recv, provided-buffer rings); when the
  // probe fails at Start() the server falls back to epoll and counts it
  // in transport_fallbacks. kShm here is invalid — the shared-memory
  // transport is not a TCP backend; it is enabled by shm_path below and
  // serves shm:// clients alongside whichever TCP backend runs.
  TransportKind transport = TransportKind::kEpoll;

  // When non-empty, additionally serve co-located clients through a
  // file-backed shared-memory segment created at this path (clients
  // connect with a "shm://<path>" endpoint). The TCP listener stays up
  // regardless; shm connections are served by dedicated shard threads.
  std::string shm_path;
  // Connection slots in the segment (max concurrent shm clients).
  size_t shm_slots = 32;
  // Per-direction ring capacity in bytes; rounded up to a power of two.
  size_t shm_ring_bytes = 1 << 20;
  // Dedicated shard threads serving the shm slots.
  size_t shm_shards = 1;

  // --- Fulfillment (DESIGN.md §5i) ------------------------------------
  // Engine behind the QUOTE/BUY/REPLAY verbs. nullptr disables them (the
  // verbs answer kFailedPrecondition). Must outlive the server. Shared by
  // every shard — the engine is thread-safe by contract.
  serving::FulfillmentEngine* fulfillment = nullptr;
};

// TCP (epoll or io_uring) + optional shared-memory front end over the
// lock-free PriceQueryEngine: the subsystem that serves the whole stack
// end to end across a transport (DESIGN.md §5d, §5h). Frames are the
// binary protocol of net/protocol.h; any
// number of requests may be pipelined per connection (correlate responses
// by request_id — PRICE_AT answers are micro-batched and may land after
// responses to later non-PRICE_AT requests).
//
// Concurrency: each connection belongs to exactly one shard thread, so
// per-connection state is single-threaded by construction. Shards share
// only the engine (safe by its own contract), the registry (RCU reads),
// and the relaxed-atomic metrics. Publish/Withdraw on the registry remain
// safe at any time — remote clients keep querying across a republish and
// every response is served from one complete (old or new) snapshot.
//
// Shutdown() is the graceful drain path: stop accepting, serve the
// requests already received in full, flush pending responses (bounded by
// drain_timeout_ms), then close. It is idempotent and also runs from the
// destructor.
class PriceServer {
 public:
  // Binds, listens, and starts the shard threads. `engine` (and the
  // registry behind it) must outlive the server.
  static StatusOr<std::unique_ptr<PriceServer>> Start(
      const serving::PriceQueryEngine* engine, ServerOptions options = {});

  ~PriceServer();

  PriceServer(const PriceServer&) = delete;
  PriceServer& operator=(const PriceServer&) = delete;

  // The actually bound port (resolves options.port == 0).
  uint16_t port() const { return port_; }

  void Shutdown();

  // Point-in-time operational counters + request latency histogram; the
  // same payload the STATS verb serves remotely.
  StatsPayload stats() const;

 private:
  struct Connection;
  struct Shard;
  struct Metrics {
    Counter connections_accepted;
    Counter connections_closed;
    Counter requests_ok;
    Counter requests_error;
    Counter protocol_errors;
    Counter queries;
    Counter batches;
    // Degradation-ladder observability (served via STATS):
    Counter connections_refused;  // closed at accept: hard cap / alloc fault
    Counter requests_shed;        // answered OVERLOADED/RETRY_LATER
    Counter deadline_drops;       // answered kDeadlineExceeded when stale
    Counter connections_killed;   // hard-killed: 4x overflow, stalled drain
    // Per-verb request mix, indexed by the raw verb byte (slot 0 unused);
    // incremented for every decoded request, shed or served.
    std::array<Counter, kNumVerbSlots> requests_by_verb;
    LatencyHistogram request_latency;
    LatencyHistogram write_queue_bytes;  // depth sampled at each enqueue
    MaxGauge write_queue_peak_bytes;
    // Shared by every shard transport of this server (net/transport.h).
    TransportCounters transport;
  };

  PriceServer(const serving::PriceQueryEngine* engine, ServerOptions options);

  Status Listen();
  void ShardLoop(Shard* shard);
  // kAccept resolution: cap / stopping / alloc-fault checks, then either
  // Adopt (and register a Connection) or Refuse.
  void HandleAccept(Shard* shard, TransportConn* tconn);
  // Bytes delivered by a kData event: merge with the carried partial
  // tail, decode every complete frame, carry the remainder.
  void OnData(Shard* shard, Connection* conn, const uint8_t* data,
              size_t size);
  void HandleRequest(Shard* shard, Connection* conn,
                     const RequestView& request);
  // QUOTE / BUY / REPLAY dispatch into the FulfillmentEngine, answered
  // inline (off the zero-allocation batch path — a sale trains/samples a
  // model; latency is tracked separately in fulfillment_latency).
  void HandleFulfillment(Shard* shard, Connection* conn,
                         const RequestView& request);
  // Frames a delivered Sale as a BUY/REPLAY response in the connection
  // arena (EncodeBuyResponseInto — no Response object).
  void EnqueueSale(Shard* shard, Connection* conn, Verb verb,
                   uint64_t request_id, const serving::Sale& sale);
  void FlushPriceBatches(Shard* shard);
  // Response framing, all three landing in the connection's arena:
  // EnqueueResponse is the general path (any Response), EnqueueValues the
  // allocation-free fast path for successful PRICE_AT / BUDGET_TO_X, and
  // CommitFrame the shared bookkeeping (iovec entry, touched list,
  // queue-depth metrics, 4x overflow kill).
  void EnqueueResponse(Shard* shard, Connection* conn,
                       const Response& response);
  void EnqueueValues(Shard* shard, Connection* conn, Verb verb,
                     uint64_t request_id, const double* values, size_t count);
  void CommitFrame(Shard* shard, Connection* conn, uint8_t* frame,
                   size_t frame_size);
  void FlushWrites(Shard* shard, Connection* conn);
  // End-of-pass epilogue for a connection that gained responses: flush,
  // migrate whatever the socket would not take into the fallback queue,
  // reset the arena (see DESIGN.md §5f).
  void FinishPass(Shard* shard, Connection* conn);
  // Read-pause hysteresis + transport interest arming (the level-
  // triggered EPOLLIN/EPOLLOUT dance, generalized).
  void UpdateInterest(Shard* shard, Connection* conn);
  void CloseConnection(Shard* shard, Connection* conn);
  // CloseConnection + the connections_killed counter: for connections
  // terminated by the server against a live peer (write-queue overflow,
  // drain timeout), as opposed to peer-initiated closes.
  void KillConnection(Shard* shard, Connection* conn);
  // True when the ladder says to answer `request` on `conn` with
  // OVERLOADED instead of doing engine work.
  bool ShouldShed(const Connection* conn, Verb verb) const;
  void DrainShard(Shard* shard);
  StatusOr<const serving::CatalogRegistry::CurveSlot*> ResolveCurve(
      std::string_view curve_id) const;

  const serving::PriceQueryEngine* engine_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<size_t> active_connections_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  // Live only when options_.shm_path is set; the server owns the
  // segment file and unlinks it at Shutdown().
  std::unique_ptr<ShmSegment> shm_;
  Metrics metrics_;
};

}  // namespace mbp::net

#endif  // MBP_NET_SERVER_H_

#include "net/shm_ring.h"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <vector>

#include "common/fault_injection.h"
#include "net/protocol.h"

namespace mbp::net {
namespace shm_internal {

namespace {

uint32_t* FutexWord(std::atomic<uint32_t>* word) {
  static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t),
                "futex words must be bare 32-bit cells");
  return reinterpret_cast<uint32_t*>(word);
}

}  // namespace

void ShmFutexWait(std::atomic<uint32_t>* word, uint32_t expected,
                  int timeout_ms, Counter* syscalls) {
  if (MBP_FAULT_POINT("net.shm.futex.eintr")) return;  // spurious wakeup
  if (timeout_ms <= 0) return;
  timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  if (syscalls != nullptr) syscalls->Increment();
  // Deliberately NOT FUTEX_PRIVATE: the word lives in a MAP_SHARED file
  // mapping and the waker may be another process.
  (void)syscall(SYS_futex, FutexWord(word), FUTEX_WAIT, expected, &ts,
                nullptr, 0);
}

bool ShmFutexWake(std::atomic<uint32_t>* word, Counter* syscalls) {
  if (MBP_FAULT_POINT("net.shm.wake.drop")) return false;  // lost wake
  if (syscalls != nullptr) syscalls->Increment();
  (void)syscall(SYS_futex, FutexWord(word), FUTEX_WAKE, INT_MAX, nullptr,
                nullptr, 0);
  return true;
}

size_t RingView::Write(const uint8_t* src, size_t n, Counter* syscalls,
                       Counter* wakes) {
  RingHeader* h = hdr;
  const uint64_t cap = mask + 1;
  const uint64_t tail = h->tail.load(std::memory_order_relaxed);
  const uint64_t space =
      cap - (tail - h->head.load(std::memory_order_acquire));
  if (space == 0) return 0;
  if (n > space) n = static_cast<size_t>(space);
  if (n > 1 && MBP_FAULT_POINT("net.shm.write.short")) n = 1;
  const uint64_t idx = tail & mask;
  const size_t first = static_cast<size_t>(std::min<uint64_t>(n, cap - idx));
  std::memcpy(data + idx, src, first);
  std::memcpy(data, src + first, n - first);
  h->tail.store(tail + n, std::memory_order_release);
  // Publish-then-check mirrors the consumer's declare-then-recheck: one
  // of the two sides always observes the other, so a parked consumer
  // cannot be missed. Sleeps are bounded anyway (lost-wake tolerance).
  h->data_seq.fetch_add(1, std::memory_order_seq_cst);
  if (h->consumer_waiting.load(std::memory_order_seq_cst) != 0) {
    if (ShmFutexWake(&h->data_seq, syscalls) && wakes != nullptr) {
      wakes->Increment();
    }
  }
  return n;
}

size_t RingView::Read(uint8_t* dst, size_t max, Counter* syscalls,
                      Counter* wakes) {
  RingHeader* h = hdr;
  const uint64_t cap = mask + 1;
  const uint64_t head = h->head.load(std::memory_order_relaxed);
  const uint64_t avail = h->tail.load(std::memory_order_acquire) - head;
  if (avail == 0) return 0;
  size_t n = static_cast<size_t>(std::min<uint64_t>(max, avail));
  if (n > 1 && MBP_FAULT_POINT("net.shm.read.short")) n = 1;
  const uint64_t idx = head & mask;
  const size_t first = static_cast<size_t>(std::min<uint64_t>(n, cap - idx));
  std::memcpy(dst, data + idx, first);
  std::memcpy(dst + first, data, n - first);
  h->head.store(head + n, std::memory_order_release);
  h->space_seq.fetch_add(1, std::memory_order_seq_cst);
  if (h->producer_waiting.load(std::memory_order_seq_cst) != 0) {
    if (ShmFutexWake(&h->space_seq, syscalls) && wakes != nullptr) {
      wakes->Increment();
    }
  }
  return n;
}

}  // namespace shm_internal

using shm_internal::RingHeader;
using shm_internal::RingView;
using shm_internal::SegHeader;
using shm_internal::SlotHeader;

namespace {

Status ShmErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

size_t SegmentBytes(size_t slots, uint64_t ring_bytes) {
  const uint64_t stride = sizeof(SlotHeader) + 2 * ring_bytes;
  return sizeof(SegHeader) + slots * stride;
}

}  // namespace

StatusOr<std::unique_ptr<ShmSegment>> ShmSegment::Create(
    const ShmSegmentOptions& options) {
  if (options.path.empty()) {
    return InvalidArgumentError("shm segment path is empty");
  }
  if (options.slots == 0 || options.slots > 4096) {
    return InvalidArgumentError("shm slots must be in [1, 4096]");
  }
  const uint64_t ring_bytes =
      RoundUpPow2(std::max<uint64_t>(options.ring_bytes, 64 * 1024));
  const size_t total = SegmentBytes(options.slots, ring_bytes);
  const int fd = open(options.path.c_str(), O_RDWR | O_CREAT | O_TRUNC |
                      O_CLOEXEC, 0600);
  if (fd < 0) return ShmErrnoError("open(" + options.path + ")");
  if (ftruncate(fd, static_cast<off_t>(total)) < 0) {
    const Status status = ShmErrnoError("ftruncate(" + options.path + ")");
    close(fd);
    return status;
  }
  void* map = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) return ShmErrnoError("mmap(" + options.path + ")");
  // ftruncate gave zero pages, so every atomic starts at 0; fill in the
  // geometry, then flip `open` last — clients treat open==1 as "ready".
  auto* header = static_cast<SegHeader*>(map);
  header->magic = shm_internal::kShmMagic;
  header->version = shm_internal::kShmVersion;
  header->num_slots = static_cast<uint32_t>(options.slots);
  header->ring_bytes = ring_bytes;
  header->slot_stride = sizeof(SlotHeader) + 2 * ring_bytes;
  header->open.store(1, std::memory_order_release);
  auto segment = std::unique_ptr<ShmSegment>(new ShmSegment());
  segment->path_ = options.path;
  segment->owner_ = true;
  segment->map_ = map;
  segment->map_bytes_ = total;
  return segment;
}

StatusOr<std::unique_ptr<ShmSegment>> ShmSegment::Open(
    const std::string& path) {
  const int fd = open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return ShmErrnoError("open(" + path + ")");
  struct stat st{};
  if (fstat(fd, &st) < 0 ||
      st.st_size < static_cast<off_t>(sizeof(SegHeader))) {
    close(fd);
    return UnavailableError("shm segment " + path + " is not initialized");
  }
  void* map = mmap(nullptr, static_cast<size_t>(st.st_size),
                   PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (map == MAP_FAILED) return ShmErrnoError("mmap(" + path + ")");
  auto* header = static_cast<SegHeader*>(map);
  if (header->magic != shm_internal::kShmMagic ||
      header->version != shm_internal::kShmVersion ||
      header->open.load(std::memory_order_acquire) == 0) {
    const size_t bytes = static_cast<size_t>(st.st_size);
    munmap(map, bytes);
    return UnavailableError("shm segment " + path +
                            " is not an open MBPSHM1 segment");
  }
  const size_t expect = SegmentBytes(header->num_slots, header->ring_bytes);
  if (static_cast<size_t>(st.st_size) < expect) {
    munmap(map, static_cast<size_t>(st.st_size));
    return UnavailableError("shm segment " + path + " is truncated");
  }
  auto segment = std::unique_ptr<ShmSegment>(new ShmSegment());
  segment->path_ = path;
  segment->owner_ = false;
  segment->map_ = map;
  segment->map_bytes_ = static_cast<size_t>(st.st_size);
  return segment;
}

ShmSegment::~ShmSegment() {
  if (map_ != nullptr) munmap(map_, map_bytes_);
  if (owner_) (void)unlink(path_.c_str());
}

SegHeader* ShmSegment::header() const {
  return static_cast<SegHeader*>(map_);
}

size_t ShmSegment::num_slots() const { return header()->num_slots; }

uint64_t ShmSegment::ring_bytes() const { return header()->ring_bytes; }

bool ShmSegment::is_open() const {
  return header()->open.load(std::memory_order_acquire) != 0;
}

SlotHeader* ShmSegment::slot(size_t index) const {
  auto* base = static_cast<uint8_t*>(map_) + sizeof(SegHeader) +
               index * header()->slot_stride;
  return reinterpret_cast<SlotHeader*>(base);
}

RingView ShmSegment::c2s(size_t index) const {
  SlotHeader* s = slot(index);
  RingView view;
  view.hdr = &s->c2s;
  view.data = reinterpret_cast<uint8_t*>(s + 1);
  view.mask = header()->ring_bytes - 1;
  return view;
}

RingView ShmSegment::s2c(size_t index) const {
  SlotHeader* s = slot(index);
  RingView view;
  view.hdr = &s->s2c;
  view.data = reinterpret_cast<uint8_t*>(s + 1) + header()->ring_bytes;
  view.mask = header()->ring_bytes - 1;
  return view;
}

void ShmSegment::RingDoorbell(Counter* syscalls, Counter* wakes) const {
  SegHeader* h = header();
  h->doorbell_seq.fetch_add(1, std::memory_order_seq_cst);
  if (h->server_waiting.load(std::memory_order_seq_cst) != 0) {
    if (shm_internal::ShmFutexWake(&h->doorbell_seq, syscalls) &&
        wakes != nullptr) {
      wakes->Increment();
    }
  }
}

void ShmSegment::BeginShutdown() {
  SegHeader* h = header();
  h->open.store(0, std::memory_order_release);
  // Wake every parked client (response futexes, space futexes) so it
  // observes the closed segment instead of sleeping out its timeout.
  for (size_t i = 0; i < num_slots(); ++i) {
    SlotHeader* s = slot(i);
    s->s2c.data_seq.fetch_add(1, std::memory_order_seq_cst);
    shm_internal::ShmFutexWake(&s->s2c.data_seq, nullptr);
    s->c2s.space_seq.fetch_add(1, std::memory_order_seq_cst);
    shm_internal::ShmFutexWake(&s->c2s.space_seq, nullptr);
  }
  RingDoorbell(nullptr, nullptr);
}

namespace {

using Clock = std::chrono::steady_clock;

// Refused and server-closed slots are held out of service briefly
// before being reset to FREE, giving the (trusted, co-located) client
// time to observe the terminal state; see the file comment in
// shm_ring.h for why immediate recycling would race a client mid-copy.
constexpr auto kSlotReclaimGrace = std::chrono::milliseconds(250);

// Scan-side clamp per connection per pass, mirroring the TCP backends'
// kMaxReadBytes: one firehose client cannot monopolize a pass.
constexpr size_t kShmMaxReadBytes = kMaxFrameBytes;

struct ShmConn : TransportConn {
  uint32_t slot = 0;
  bool adopted = false;
  bool closed = false;  // OnClose seen; no more events
  bool eof_emitted = false;
  bool want_read = true;
  bool want_write = false;
};

class ShmShardTransport final : public ShardTransport {
 public:
  ShmShardTransport(ShmSegment* segment, size_t shard_index,
                    size_t num_shards, TransportCounters* counters)
      : segment_(segment),
        shard_index_(shard_index),
        num_shards_(num_shards),
        counters_(counters),
        conns_(segment->num_slots(), nullptr) {}

  ~ShmShardTransport() override {
    for (ShmConn* conn : conns_) delete conn;
  }

  TransportKind kind() const override { return TransportKind::kShm; }

  void Wait(std::vector<TransportEvent>* events, Arena* scratch,
            int timeout_ms) override {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    ReclaimExpired();
    const size_t before = events->size();
    Scan(events, scratch);
    if (events->size() > before) return;
    // Spin phase: a fresh request from a co-located client is typically
    // microseconds away; a few rescans win before any futex is worth it.
    for (int spin = 0; spin < 64; ++spin) {
      for (int i = 0; i < 32; ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
      Scan(events, scratch);
      if (events->size() > before) return;
    }
    if (Clock::now() >= deadline) return;
    SegHeader* header = segment_->header();
    const uint32_t seen =
        header->doorbell_seq.load(std::memory_order_seq_cst);
    header->server_waiting.fetch_add(1, std::memory_order_seq_cst);
    // Declare-then-recheck: a doorbell rung between the scan above and
    // the wait below either flips doorbell_seq (the wait returns
    // immediately) or sees server_waiting and wakes us.
    Scan(events, scratch);
    if (events->size() == before) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      const int wait_ms = static_cast<int>(
          std::clamp<int64_t>(remaining.count(), 0, 100));
      shm_internal::ShmFutexWait(&header->doorbell_seq, seen, wait_ms,
                                 &counters_->transport_syscalls);
    }
    header->server_waiting.fetch_sub(1, std::memory_order_seq_cst);
    if (events->size() == before) Scan(events, scratch);
  }

  bool Adopt(TransportConn* tconn) override {
    auto* conn = static_cast<ShmConn*>(tconn);
    conn->adopted = true;
    segment_->slot(conn->slot)->state.store(shm_internal::kSlotActive,
                                            std::memory_order_release);
    return true;
  }

  void Refuse(TransportConn* tconn) override {
    auto* conn = static_cast<ShmConn*>(tconn);
    segment_->slot(conn->slot)->state.store(shm_internal::kSlotRefused,
                                            std::memory_order_release);
    reclaim_.push_back({conn->slot, Clock::now() + kSlotReclaimGrace});
    conns_[conn->slot] = nullptr;
    delete conn;
  }

  ssize_t Writev(TransportConn* tconn, const iovec* iov,
                 int iov_count) override {
    auto* conn = static_cast<ShmConn*>(tconn);
    RingView ring = segment_->s2c(conn->slot);
    size_t accepted = 0;
    for (int i = 0; i < iov_count; ++i) {
      const auto* base = static_cast<const uint8_t*>(iov[i].iov_base);
      size_t off = 0;
      while (off < iov[i].iov_len) {
        const size_t n =
            ring.Write(base + off, iov[i].iov_len - off,
                       &counters_->transport_syscalls,
                       &counters_->shm_doorbell_wakes);
        if (n == 0) {  // ring full
          if (accepted > 0) return static_cast<ssize_t>(accepted);
          errno = EAGAIN;
          return -1;
        }
        off += n;
        accepted += n;
      }
    }
    return static_cast<ssize_t>(accepted);
  }

  void UpdateInterest(TransportConn* tconn, bool want_read,
                      bool want_write) override {
    auto* conn = static_cast<ShmConn*>(tconn);
    conn->want_read = want_read;
    conn->want_write = want_write;
  }

  void OnClose(TransportConn* tconn) override {
    auto* conn = static_cast<ShmConn*>(tconn);
    conn->closed = true;
    SlotHeader* slot = segment_->slot(conn->slot);
    uint32_t state = slot->state.load(std::memory_order_acquire);
    if (state == shm_internal::kSlotActive) {
      slot->state.store(shm_internal::kSlotServerClosed,
                        std::memory_order_release);
      // A client parked waiting for a response must observe the close.
      slot->s2c.data_seq.fetch_add(1, std::memory_order_seq_cst);
      shm_internal::ShmFutexWake(&slot->s2c.data_seq,
                                 &counters_->transport_syscalls);
      slot->c2s.space_seq.fetch_add(1, std::memory_order_seq_cst);
      shm_internal::ShmFutexWake(&slot->c2s.space_seq,
                                 &counters_->transport_syscalls);
    }
  }

  void Destroy(TransportConn* tconn) override {
    auto* conn = static_cast<ShmConn*>(tconn);
    SlotHeader* slot = segment_->slot(conn->slot);
    if (slot->state.load(std::memory_order_acquire) ==
        shm_internal::kSlotClientClosed) {
      // The client promised no further slot access: recycle now.
      ResetSlot(conn->slot);
    } else {
      reclaim_.push_back({conn->slot, Clock::now() + kSlotReclaimGrace});
    }
    conns_[conn->slot] = nullptr;
    delete conn;
  }

  void StopAccepting() override { accepting_ = false; }

  void Wake() override {
    segment_->RingDoorbell(&counters_->transport_syscalls, nullptr);
  }

  void EndPass() override {}

 private:
  struct PendingReclaim {
    uint32_t slot;
    Clock::time_point when;
  };

  bool Owned(size_t slot_index) const {
    return slot_index % num_shards_ == shard_index_;
  }

  void ResetSlot(uint32_t slot_index) {
    SlotHeader* slot = segment_->slot(slot_index);
    slot->c2s.head.store(0, std::memory_order_relaxed);
    slot->c2s.tail.store(0, std::memory_order_relaxed);
    slot->c2s.data_seq.store(0, std::memory_order_relaxed);
    slot->c2s.consumer_waiting.store(0, std::memory_order_relaxed);
    slot->c2s.space_seq.store(0, std::memory_order_relaxed);
    slot->c2s.producer_waiting.store(0, std::memory_order_relaxed);
    slot->s2c.head.store(0, std::memory_order_relaxed);
    slot->s2c.tail.store(0, std::memory_order_relaxed);
    slot->s2c.data_seq.store(0, std::memory_order_relaxed);
    slot->s2c.consumer_waiting.store(0, std::memory_order_relaxed);
    slot->s2c.space_seq.store(0, std::memory_order_relaxed);
    slot->s2c.producer_waiting.store(0, std::memory_order_relaxed);
    slot->token.store(0, std::memory_order_relaxed);
    slot->state.store(shm_internal::kSlotFree, std::memory_order_release);
  }

  void ReclaimExpired() {
    const auto now = Clock::now();
    for (size_t i = 0; i < reclaim_.size();) {
      if (reclaim_[i].when <= now) {
        // Reset only if the slot still sits in a terminal state: the
        // orphan-ClientClosed fast path in Scan() may have recycled it
        // already and a new client may have claimed it since.
        SlotHeader* slot = segment_->slot(reclaim_[i].slot);
        const uint32_t state = slot->state.load(std::memory_order_acquire);
        if (state == shm_internal::kSlotRefused ||
            state == shm_internal::kSlotClientClosed ||
            state == shm_internal::kSlotServerClosed) {
          ResetSlot(reclaim_[i].slot);
        }
        reclaim_[i] = reclaim_.back();
        reclaim_.pop_back();
      } else {
        ++i;
      }
    }
  }

  void Scan(std::vector<TransportEvent>* events, Arena* scratch) {
    const size_t slots = segment_->num_slots();
    for (size_t i = 0; i < slots; ++i) {
      if (!Owned(i)) continue;
      SlotHeader* slot = segment_->slot(i);
      const uint32_t state = slot->state.load(std::memory_order_acquire);
      ShmConn* conn = conns_[i];
      if (conn == nullptr) {
        if (state == shm_internal::kSlotHello && accepting_) {
          conn = new ShmConn();
          conn->slot = static_cast<uint32_t>(i);
          conns_[i] = conn;
          events->push_back(TransportEvent{TransportEvent::Kind::kAccept,
                                           conn, nullptr, 0});
        } else if (state == shm_internal::kSlotClientClosed) {
          // Claimant gave up (connect timeout) before adoption.
          ResetSlot(static_cast<uint32_t>(i));
        }
        continue;
      }
      if (!conn->adopted || conn->closed) continue;
      if (state == shm_internal::kSlotClientClosed) {
        if (!conn->eof_emitted) {
          conn->eof_emitted = true;
          events->push_back(
              TransportEvent{TransportEvent::Kind::kEof, conn, nullptr, 0});
        }
        continue;
      }
      if (conn->want_read) {
        RingView ring = segment_->c2s(i);
        const uint64_t avail = ring.ReadAvailable();
        if (avail > 0) {
          const size_t want =
              static_cast<size_t>(std::min<uint64_t>(avail, kShmMaxReadBytes));
          uint8_t* buf = scratch->AllocateArray<uint8_t>(want);
          const size_t got =
              ring.Read(buf, want, &counters_->transport_syscalls,
                        &counters_->shm_doorbell_wakes);
          if (got > 0) {
            events->push_back(TransportEvent{TransportEvent::Kind::kData,
                                             conn, buf, got});
          }
        }
      }
      if (conn->want_write && segment_->s2c(i).WriteSpace() > 0) {
        events->push_back(TransportEvent{TransportEvent::Kind::kWritable,
                                         conn, nullptr, 0});
      }
    }
  }

  ShmSegment* segment_;
  size_t shard_index_;
  size_t num_shards_;
  TransportCounters* counters_;
  bool accepting_ = true;
  std::vector<ShmConn*> conns_;  // slot index -> live conn (or null)
  std::vector<PendingReclaim> reclaim_;
};

}  // namespace

std::unique_ptr<ShardTransport> MakeShmShardTransport(
    ShmSegment* segment, size_t shard_index, size_t num_shards,
    TransportCounters* counters, Status* status) {
  *status = Status::OK();
  return std::make_unique<ShmShardTransport>(segment, shard_index,
                                             num_shards, counters);
}

}  // namespace mbp::net

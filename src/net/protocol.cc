#include "net/protocol.h"

#include <bit>
#include <cstring>

namespace mbp::net {
namespace {

constexpr size_t kMaxCurveIdBytes = 255;
constexpr size_t kMaxTokenBytes = 255;
constexpr uint8_t kMaxStatusCodeByte =
    static_cast<uint8_t>(StatusCode::kUnavailable);
// Wire bytes of a SaleRecordPayload: txn_id, curve_ref, delta, price,
// seed_commitment.
constexpr size_t kSaleRecordWireBytes = 8 + 4 + 8 + 8 + 8;

uint32_t Fnv1a32(const uint8_t* data, size_t size) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

bool VerbCarriesVector(Verb verb) {
  return verb == Verb::kPriceAt || verb == Verb::kBudgetToX;
}

// ------------------------------------------------------------- encoding
//
// Every frame's exact size is computed up front (Encoded*Size), the
// output buffer is sized once, and the bytes are written in place — no
// incremental growth, and the same writer serves both the std::string
// convenience overloads and the arena path (caller-owned raw buffers).

// Raw cursor over a caller-sized buffer. Bounds are the caller's
// responsibility (the encoder writes exactly Encoded*Size bytes).
class Writer {
 public:
  explicit Writer(uint8_t* out) : base_(out), p_(out) {}

  void Bytes(const void* data, size_t n) {
    if (n == 0) return;
    std::memcpy(p_, data, n);
    p_ += n;
  }

  void U8(uint8_t v) { Bytes(&v, 1); }
  void U16(uint16_t v) { Bytes(&v, 2); }
  void U32(uint32_t v) { Bytes(&v, 4); }
  void U64(uint64_t v) { Bytes(&v, 8); }
  void F64(double v) { Bytes(&v, 8); }

  void Doubles(const double* values, size_t count) {
    U32(static_cast<uint32_t>(count));
    Bytes(values, count * sizeof(double));
  }

  void Histogram(const LatencyHistogramSnapshot& snap) {
    U64(snap.count);
    F64(snap.sum_micros);
    U32(static_cast<uint32_t>(kLatencyBuckets));
    for (const uint64_t bucket : snap.buckets) U64(bucket);
  }

  size_t written() const { return static_cast<size_t>(p_ - base_); }

 private:
  uint8_t* base_;
  uint8_t* p_;
};

constexpr size_t kHistogramWireBytes =
    8 + 8 + 4 + 8 * kLatencyBuckets;  // count, sum, bucket count, buckets

// Writes the 20-byte header with the final frame_len already in place
// (the whole point of exact sizing); the checksum field is zeroed here
// and patched by SealFrame once the payload bytes exist.
void WriteHeader(Writer* w, Verb verb, StatusCode code, uint64_t request_id,
                 size_t frame_size) {
  w->U32(static_cast<uint32_t>(frame_size - 8));
  w->U32(0);  // checksum, patched by SealFrame
  w->U8(kProtocolVersion);
  w->U8(static_cast<uint8_t>(verb));
  w->U8(static_cast<uint8_t>(code));
  w->U8(0);  // reserved
  w->U64(request_id);
}

// Computes the checksum over the finished frame, in place.
void SealFrame(uint8_t* frame, size_t frame_size) {
  const uint32_t checksum = Fnv1a32(frame + 8, frame_size - 8);
  std::memcpy(frame + 4, &checksum, 4);
}

size_t RequestCurveIdLen(const Request& request) {
  return std::min(request.curve_id.size(), kMaxCurveIdBytes);
}

size_t RequestTokenLen(const Request& request) {
  return std::min(request.token.size(), kMaxTokenBytes);
}

size_t ResponseErrorLen(const Response& response) {
  return std::min<size_t>(response.error_message.size(), 65535);
}

// ------------------------------------------------------------- decoding

// Cursor over one complete, checksum-verified frame's payload. Any
// overrun means the length prefix and the payload structure disagree —
// corruption the checksum cannot rule out, reported as InvalidArgument.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status Bytes(void* out, size_t n) {
    if (size_ - offset_ < n) {
      return InvalidArgumentError("net frame payload overruns its length");
    }
    if (n > 0) std::memcpy(out, data_ + offset_, n);
    offset_ += n;
    return Status::OK();
  }

  Status U8(uint8_t* v) { return Bytes(v, 1); }
  Status U16(uint16_t* v) { return Bytes(v, 2); }
  Status U32(uint32_t* v) { return Bytes(v, 4); }
  Status U64(uint64_t* v) { return Bytes(v, 8); }
  Status F64(double* v) { return Bytes(v, 8); }

  Status String(size_t n, std::string* out) {
    out->resize(n);
    return Bytes(out->data(), n);
  }

  // Bounds-checked view into the payload without copying (the arena
  // decode path points string_views at the wire buffer directly).
  Status View(size_t n, const uint8_t** out) {
    if (size_ - offset_ < n) {
      return InvalidArgumentError("net frame payload overruns its length");
    }
    *out = data_ + offset_;
    offset_ += n;
    return Status::OK();
  }

  Status Doubles(std::vector<double>* out) {
    uint32_t count = 0;
    MBP_RETURN_IF_ERROR(U32(&count));
    if (count > kMaxVectorElements) {
      return InvalidArgumentError("net frame vector count exceeds cap");
    }
    out->resize(count);
    return Bytes(out->data(), count * sizeof(double));
  }

  Status Histogram(LatencyHistogramSnapshot* out) {
    MBP_RETURN_IF_ERROR(U64(&out->count));
    MBP_RETURN_IF_ERROR(F64(&out->sum_micros));
    uint32_t num_buckets = 0;
    MBP_RETURN_IF_ERROR(U32(&num_buckets));
    if (num_buckets != kLatencyBuckets) {
      return InvalidArgumentError(
          "net stats histogram bucket count mismatch");
    }
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      MBP_RETURN_IF_ERROR(U64(&out->buckets[i]));
    }
    return Status::OK();
  }

  Status ExpectEnd() const {
    if (offset_ != size_) {
      return InvalidArgumentError("net frame has trailing payload bytes");
    }
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

struct Header {
  Verb verb = Verb::kPriceAt;
  StatusCode code = StatusCode::kOk;
  uint64_t request_id = 0;
  size_t payload_offset = 0;  // from frame start
  size_t frame_size = 0;      // whole frame, header included
};

// Parses and validates the shared header. Consumed-size semantics match
// DecodeRequest/DecodeResponse: 0 bytes means incomplete.
StatusOr<size_t> DecodeHeader(const uint8_t* data, size_t size,
                              Header* out) {
  if (size < 8) return size_t{0};
  uint32_t frame_len = 0;
  uint32_t checksum = 0;
  std::memcpy(&frame_len, data, 4);
  std::memcpy(&checksum, data + 4, 4);
  // Length sanity first: a corrupt length prefix must not stall the
  // connection forever waiting for bytes that will never come.
  if (frame_len < kHeaderBytes - 8 || frame_len > kMaxFrameBytes - 8) {
    return InvalidArgumentError("net frame length prefix out of range");
  }
  const size_t frame_size = size_t{frame_len} + 8;
  if (size < frame_size) return size_t{0};
  if (Fnv1a32(data + 8, frame_len) != checksum) {
    return InvalidArgumentError("net frame checksum mismatch");
  }
  if (data[8] != kProtocolVersion) {
    return InvalidArgumentError("unsupported net protocol version");
  }
  const uint8_t verb = data[9];
  if (verb < static_cast<uint8_t>(Verb::kPriceAt) ||
      verb > static_cast<uint8_t>(Verb::kReplay)) {
    return InvalidArgumentError("unknown net protocol verb");
  }
  if (data[10] > kMaxStatusCodeByte) {
    return InvalidArgumentError("net frame carries unknown status code");
  }
  if (data[11] != 0) {
    return InvalidArgumentError("net frame reserved byte is not zero");
  }
  out->verb = static_cast<Verb>(verb);
  out->code = static_cast<StatusCode>(data[10]);
  std::memcpy(&out->request_id, data + 12, 8);
  out->payload_offset = kHeaderBytes;
  out->frame_size = frame_size;
  return frame_size;
}

}  // namespace

std::string_view VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPriceAt: return "PRICE_AT";
    case Verb::kBudgetToX: return "BUDGET_TO_X";
    case Verb::kSnapshotInfo: return "SNAPSHOT_INFO";
    case Verb::kStats: return "STATS";
    case Verb::kQuote: return "QUOTE";
    case Verb::kBuy: return "BUY";
    case Verb::kReplay: return "REPLAY";
  }
  return "?";
}

Response ErrorResponse(const Request& request, const Status& status) {
  Response response;
  response.verb = request.verb;
  response.request_id = request.request_id;
  response.code = status.ok() ? StatusCode::kInternal : status.code();
  response.error_message = status.message();
  return response;
}

size_t EncodedRequestSize(const Request& request) {
  size_t size = kHeaderBytes + 1 + RequestCurveIdLen(request);
  if (VerbCarriesVector(request.verb)) {
    size += 4 + request.args.size() * sizeof(double);
  }
  switch (request.verb) {
    case Verb::kQuote:
      size += 8;  // delta
      break;
    case Verb::kBuy:
      size += 8 + 8 + 1 + RequestTokenLen(request);  // delta, txn, token
      break;
    case Verb::kReplay:
      size += 8;  // txn_id
      break;
    default:
      break;
  }
  return size;
}

size_t EncodedResponseSize(const Response& response) {
  if (response.code != StatusCode::kOk) {
    return kHeaderBytes + 2 + ResponseErrorLen(response);
  }
  switch (response.verb) {
    case Verb::kPriceAt:
    case Verb::kBudgetToX:
      return kHeaderBytes + 4 + response.values.size() * sizeof(double);
    case Verb::kSnapshotInfo:
      return kHeaderBytes + 3 * 8 + 2 * 8;
    case Verb::kStats: {
      const StatsPayload& s = response.stats;
      // 19 v3 u64s, 7 per-verb counters, 7 fulfillment u64s, revenue f64,
      // 6 v5 durability u64s, 3 histograms, fault list.
      size_t size =
          kHeaderBytes + 39 * 8 + 8 + 3 * kHistogramWireBytes + 1;
      const size_t num_faults = std::min<size_t>(s.faults.size(), 255);
      for (size_t i = 0; i < num_faults; ++i) {
        size += 1 + std::min<size_t>(s.faults[i].point.size(), 255) + 8;
      }
      return size;
    }
    case Verb::kQuote:
      return kHeaderBytes + 8 + 8 + 8 + 1 +
             std::min(response.quote.token.size(), kMaxTokenBytes);
    case Verb::kBuy:
    case Verb::kReplay:
      return EncodedBuyResponseSize(response.buy.weights.size());
  }
  return kHeaderBytes;
}

size_t EncodeRequestInto(const Request& request, uint8_t* out) {
  const size_t frame_size = EncodedRequestSize(request);
  Writer w(out);
  WriteHeader(&w, request.verb, StatusCode::kOk, request.request_id,
              frame_size);
  const size_t id_len = RequestCurveIdLen(request);
  w.U8(static_cast<uint8_t>(id_len));
  w.Bytes(request.curve_id.data(), id_len);
  if (VerbCarriesVector(request.verb)) {
    w.Doubles(request.args.data(), request.args.size());
  }
  switch (request.verb) {
    case Verb::kQuote:
      w.F64(request.delta);
      break;
    case Verb::kBuy: {
      w.F64(request.delta);
      w.U64(request.txn_id);
      const size_t token_len = RequestTokenLen(request);
      w.U8(static_cast<uint8_t>(token_len));
      w.Bytes(request.token.data(), token_len);
      break;
    }
    case Verb::kReplay:
      w.U64(request.txn_id);
      break;
    default:
      break;
  }
  SealFrame(out, frame_size);
  return frame_size;
}

size_t EncodeResponseInto(const Response& response, uint8_t* out) {
  const size_t frame_size = EncodedResponseSize(response);
  Writer w(out);
  WriteHeader(&w, response.verb, response.code, response.request_id,
              frame_size);
  if (response.code != StatusCode::kOk) {
    const size_t msg_len = ResponseErrorLen(response);
    w.U16(static_cast<uint16_t>(msg_len));
    w.Bytes(response.error_message.data(), msg_len);
  } else {
    switch (response.verb) {
      case Verb::kPriceAt:
      case Verb::kBudgetToX:
        w.Doubles(response.values.data(), response.values.size());
        break;
      case Verb::kSnapshotInfo:
        w.U64(response.info.version);
        w.U64(response.info.stamp);
        w.U64(response.info.num_knots);
        w.F64(response.info.x_max);
        w.F64(response.info.max_price);
        break;
      case Verb::kStats: {
        const StatsPayload& s = response.stats;
        w.U64(s.connections_accepted);
        w.U64(s.connections_active);
        w.U64(s.requests_ok);
        w.U64(s.requests_error);
        w.U64(s.protocol_errors);
        w.U64(s.queries);
        w.U64(s.batches);
        w.U64(s.connections_refused);
        w.U64(s.requests_shed);
        w.U64(s.deadline_drops);
        w.U64(s.connections_killed);
        w.U64(s.faults_injected);
        w.U64(s.write_queue_peak_bytes);
        w.U64(s.catalog_listings);
        w.U64(s.catalog_bytes);
        w.U64(s.transport_fallbacks);
        w.U64(s.transport_syscalls);
        w.U64(s.uring_sqe_submitted);
        w.U64(s.shm_doorbell_wakes);
        // v4: per-verb counters (verb bytes 1..kNumVerbSlots-1; slot 0 is
        // unused so the wire never carries it), then fulfillment stats.
        for (size_t v = 1; v < kNumVerbSlots; ++v) {
          w.U64(s.requests_by_verb[v]);
        }
        w.U64(s.buys_ok);
        w.U64(s.model_cache_entries);
        w.U64(s.model_cache_bytes);
        w.U64(s.model_cache_hits);
        w.U64(s.model_cache_misses);
        w.U64(s.model_cache_evictions);
        w.U64(s.transactions_recorded);
        w.F64(s.revenue);
        // v5: durability block.
        w.U64(s.wal_appends);
        w.U64(s.wal_fsyncs);
        w.U64(s.wal_bytes);
        w.U64(s.recovery_records);
        w.U64(s.recovery_torn_tail);
        w.U64(s.recovery_ms);
        w.Histogram(s.latency);
        w.Histogram(s.write_queue_bytes);
        w.Histogram(s.fulfillment_latency);
        const size_t num_faults = std::min<size_t>(s.faults.size(), 255);
        w.U8(static_cast<uint8_t>(num_faults));
        for (size_t i = 0; i < num_faults; ++i) {
          const FaultCount& f = s.faults[i];
          const size_t name_len = std::min<size_t>(f.point.size(), 255);
          w.U8(static_cast<uint8_t>(name_len));
          w.Bytes(f.point.data(), name_len);
          w.U64(f.fires);
        }
        break;
      }
      case Verb::kQuote: {
        const QuotePayload& q = response.quote;
        w.F64(q.price);
        w.F64(q.delta);
        w.U64(q.expires_at_micros);
        const size_t token_len = std::min(q.token.size(), kMaxTokenBytes);
        w.U8(static_cast<uint8_t>(token_len));
        w.Bytes(q.token.data(), token_len);
        break;
      }
      case Verb::kBuy:
      case Verb::kReplay: {
        const SaleRecordPayload& r = response.buy.record;
        w.U64(r.txn_id);
        w.U32(r.curve_ref);
        w.F64(r.delta);
        w.F64(r.price);
        w.U64(r.seed_commitment);
        w.Doubles(response.buy.weights.data(),
                  response.buy.weights.size());
        break;
      }
    }
  }
  SealFrame(out, frame_size);
  return frame_size;
}

size_t EncodedValuesResponseSize(size_t count) {
  return kHeaderBytes + 4 + count * sizeof(double);
}

size_t EncodeValuesResponseInto(Verb verb, uint64_t request_id,
                                const double* values, size_t count,
                                uint8_t* out) {
  const size_t frame_size = EncodedValuesResponseSize(count);
  Writer w(out);
  WriteHeader(&w, verb, StatusCode::kOk, request_id, frame_size);
  w.Doubles(values, count);
  SealFrame(out, frame_size);
  return frame_size;
}

size_t EncodedBuyResponseSize(size_t num_weights) {
  return kHeaderBytes + kSaleRecordWireBytes + 4 +
         num_weights * sizeof(double);
}

size_t EncodeBuyResponseInto(Verb verb, uint64_t request_id,
                             const SaleRecordPayload& record,
                             const double* weights, size_t num_weights,
                             uint8_t* out) {
  const size_t frame_size = EncodedBuyResponseSize(num_weights);
  Writer w(out);
  WriteHeader(&w, verb, StatusCode::kOk, request_id, frame_size);
  w.U64(record.txn_id);
  w.U32(record.curve_ref);
  w.F64(record.delta);
  w.F64(record.price);
  w.U64(record.seed_commitment);
  w.Doubles(weights, num_weights);
  SealFrame(out, frame_size);
  return frame_size;
}

void EncodeRequest(const Request& request, std::string* wire) {
  const size_t offset = wire->size();
  wire->resize(offset + EncodedRequestSize(request));
  EncodeRequestInto(request,
                    reinterpret_cast<uint8_t*>(wire->data()) + offset);
}

void EncodeResponse(const Response& response, std::string* wire) {
  const size_t offset = wire->size();
  wire->resize(offset + EncodedResponseSize(response));
  EncodeResponseInto(response,
                     reinterpret_cast<uint8_t*>(wire->data()) + offset);
}

StatusOr<size_t> DecodeRequest(const uint8_t* data, size_t size,
                               Request* out) {
  Header header;
  MBP_ASSIGN_OR_RETURN(const size_t consumed,
                       DecodeHeader(data, size, &header));
  if (consumed == 0) return size_t{0};
  if (header.code != StatusCode::kOk) {
    return InvalidArgumentError("net request carries a non-OK status byte");
  }
  *out = Request{};
  out->verb = header.verb;
  out->request_id = header.request_id;
  Reader reader(data + header.payload_offset,
                header.frame_size - header.payload_offset);
  uint8_t id_len = 0;
  MBP_RETURN_IF_ERROR(reader.U8(&id_len));
  MBP_RETURN_IF_ERROR(reader.String(id_len, &out->curve_id));
  if (VerbCarriesVector(out->verb)) {
    MBP_RETURN_IF_ERROR(reader.Doubles(&out->args));
    if (out->args.empty()) {
      return InvalidArgumentError("net request carries no query values");
    }
  }
  switch (out->verb) {
    case Verb::kQuote:
      MBP_RETURN_IF_ERROR(reader.F64(&out->delta));
      break;
    case Verb::kBuy: {
      MBP_RETURN_IF_ERROR(reader.F64(&out->delta));
      MBP_RETURN_IF_ERROR(reader.U64(&out->txn_id));
      uint8_t token_len = 0;
      MBP_RETURN_IF_ERROR(reader.U8(&token_len));
      MBP_RETURN_IF_ERROR(reader.String(token_len, &out->token));
      break;
    }
    case Verb::kReplay:
      MBP_RETURN_IF_ERROR(reader.U64(&out->txn_id));
      break;
    default:
      break;
  }
  MBP_RETURN_IF_ERROR(reader.ExpectEnd());
  return consumed;
}

StatusOr<size_t> DecodeRequestView(const uint8_t* data, size_t size,
                                   RequestView* out, Arena* arena) {
  Header header;
  MBP_ASSIGN_OR_RETURN(const size_t consumed,
                       DecodeHeader(data, size, &header));
  if (consumed == 0) return size_t{0};
  if (header.code != StatusCode::kOk) {
    return InvalidArgumentError("net request carries a non-OK status byte");
  }
  *out = RequestView{};
  out->verb = header.verb;
  out->request_id = header.request_id;
  Reader reader(data + header.payload_offset,
                header.frame_size - header.payload_offset);
  uint8_t id_len = 0;
  MBP_RETURN_IF_ERROR(reader.U8(&id_len));
  const uint8_t* id_bytes = nullptr;
  MBP_RETURN_IF_ERROR(reader.View(id_len, &id_bytes));
  out->curve_id = std::string_view(
      reinterpret_cast<const char*>(id_bytes), id_len);
  if (VerbCarriesVector(out->verb)) {
    uint32_t count = 0;
    MBP_RETURN_IF_ERROR(reader.U32(&count));
    if (count > kMaxVectorElements) {
      return InvalidArgumentError("net frame vector count exceeds cap");
    }
    const uint8_t* raw = nullptr;
    MBP_RETURN_IF_ERROR(reader.View(count * sizeof(double), &raw));
    if (count == 0) {
      return InvalidArgumentError("net request carries no query values");
    }
    // The wire offset is only 4-byte aligned, so the doubles are staged
    // through an aligned arena copy rather than read in place.
    double* args = arena->AllocateArray<double>(count);
    std::memcpy(args, raw, count * sizeof(double));
    out->args = args;
    out->num_args = count;
  }
  switch (out->verb) {
    case Verb::kQuote:
      MBP_RETURN_IF_ERROR(reader.F64(&out->delta));
      break;
    case Verb::kBuy: {
      MBP_RETURN_IF_ERROR(reader.F64(&out->delta));
      MBP_RETURN_IF_ERROR(reader.U64(&out->txn_id));
      uint8_t token_len = 0;
      MBP_RETURN_IF_ERROR(reader.U8(&token_len));
      const uint8_t* token_bytes = nullptr;
      MBP_RETURN_IF_ERROR(reader.View(token_len, &token_bytes));
      out->token = std::string_view(
          reinterpret_cast<const char*>(token_bytes), token_len);
      break;
    }
    case Verb::kReplay:
      MBP_RETURN_IF_ERROR(reader.U64(&out->txn_id));
      break;
    default:
      break;
  }
  MBP_RETURN_IF_ERROR(reader.ExpectEnd());
  return consumed;
}

StatusOr<size_t> DecodeResponse(const uint8_t* data, size_t size,
                                Response* out) {
  Header header;
  MBP_ASSIGN_OR_RETURN(const size_t consumed,
                       DecodeHeader(data, size, &header));
  if (consumed == 0) return size_t{0};
  *out = Response{};
  out->verb = header.verb;
  out->request_id = header.request_id;
  out->code = header.code;
  Reader reader(data + header.payload_offset,
                header.frame_size - header.payload_offset);
  if (out->code != StatusCode::kOk) {
    uint16_t msg_len = 0;
    MBP_RETURN_IF_ERROR(reader.U16(&msg_len));
    MBP_RETURN_IF_ERROR(reader.String(msg_len, &out->error_message));
  } else {
    switch (out->verb) {
      case Verb::kPriceAt:
      case Verb::kBudgetToX:
        MBP_RETURN_IF_ERROR(reader.Doubles(&out->values));
        break;
      case Verb::kSnapshotInfo:
        MBP_RETURN_IF_ERROR(reader.U64(&out->info.version));
        MBP_RETURN_IF_ERROR(reader.U64(&out->info.stamp));
        MBP_RETURN_IF_ERROR(reader.U64(&out->info.num_knots));
        MBP_RETURN_IF_ERROR(reader.F64(&out->info.x_max));
        MBP_RETURN_IF_ERROR(reader.F64(&out->info.max_price));
        break;
      case Verb::kStats: {
        StatsPayload& s = out->stats;
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_accepted));
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_active));
        MBP_RETURN_IF_ERROR(reader.U64(&s.requests_ok));
        MBP_RETURN_IF_ERROR(reader.U64(&s.requests_error));
        MBP_RETURN_IF_ERROR(reader.U64(&s.protocol_errors));
        MBP_RETURN_IF_ERROR(reader.U64(&s.queries));
        MBP_RETURN_IF_ERROR(reader.U64(&s.batches));
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_refused));
        MBP_RETURN_IF_ERROR(reader.U64(&s.requests_shed));
        MBP_RETURN_IF_ERROR(reader.U64(&s.deadline_drops));
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_killed));
        MBP_RETURN_IF_ERROR(reader.U64(&s.faults_injected));
        MBP_RETURN_IF_ERROR(reader.U64(&s.write_queue_peak_bytes));
        MBP_RETURN_IF_ERROR(reader.U64(&s.catalog_listings));
        MBP_RETURN_IF_ERROR(reader.U64(&s.catalog_bytes));
        MBP_RETURN_IF_ERROR(reader.U64(&s.transport_fallbacks));
        MBP_RETURN_IF_ERROR(reader.U64(&s.transport_syscalls));
        MBP_RETURN_IF_ERROR(reader.U64(&s.uring_sqe_submitted));
        MBP_RETURN_IF_ERROR(reader.U64(&s.shm_doorbell_wakes));
        for (size_t v = 1; v < kNumVerbSlots; ++v) {
          MBP_RETURN_IF_ERROR(reader.U64(&s.requests_by_verb[v]));
        }
        MBP_RETURN_IF_ERROR(reader.U64(&s.buys_ok));
        MBP_RETURN_IF_ERROR(reader.U64(&s.model_cache_entries));
        MBP_RETURN_IF_ERROR(reader.U64(&s.model_cache_bytes));
        MBP_RETURN_IF_ERROR(reader.U64(&s.model_cache_hits));
        MBP_RETURN_IF_ERROR(reader.U64(&s.model_cache_misses));
        MBP_RETURN_IF_ERROR(reader.U64(&s.model_cache_evictions));
        MBP_RETURN_IF_ERROR(reader.U64(&s.transactions_recorded));
        MBP_RETURN_IF_ERROR(reader.F64(&s.revenue));
        MBP_RETURN_IF_ERROR(reader.U64(&s.wal_appends));
        MBP_RETURN_IF_ERROR(reader.U64(&s.wal_fsyncs));
        MBP_RETURN_IF_ERROR(reader.U64(&s.wal_bytes));
        MBP_RETURN_IF_ERROR(reader.U64(&s.recovery_records));
        MBP_RETURN_IF_ERROR(reader.U64(&s.recovery_torn_tail));
        MBP_RETURN_IF_ERROR(reader.U64(&s.recovery_ms));
        MBP_RETURN_IF_ERROR(reader.Histogram(&s.latency));
        MBP_RETURN_IF_ERROR(reader.Histogram(&s.write_queue_bytes));
        MBP_RETURN_IF_ERROR(reader.Histogram(&s.fulfillment_latency));
        uint8_t num_faults = 0;
        MBP_RETURN_IF_ERROR(reader.U8(&num_faults));
        s.faults.resize(num_faults);
        for (FaultCount& f : s.faults) {
          uint8_t name_len = 0;
          MBP_RETURN_IF_ERROR(reader.U8(&name_len));
          MBP_RETURN_IF_ERROR(reader.String(name_len, &f.point));
          MBP_RETURN_IF_ERROR(reader.U64(&f.fires));
        }
        break;
      }
      case Verb::kQuote: {
        QuotePayload& q = out->quote;
        MBP_RETURN_IF_ERROR(reader.F64(&q.price));
        MBP_RETURN_IF_ERROR(reader.F64(&q.delta));
        MBP_RETURN_IF_ERROR(reader.U64(&q.expires_at_micros));
        uint8_t token_len = 0;
        MBP_RETURN_IF_ERROR(reader.U8(&token_len));
        MBP_RETURN_IF_ERROR(reader.String(token_len, &q.token));
        break;
      }
      case Verb::kBuy:
      case Verb::kReplay: {
        SaleRecordPayload& r = out->buy.record;
        MBP_RETURN_IF_ERROR(reader.U64(&r.txn_id));
        MBP_RETURN_IF_ERROR(reader.U32(&r.curve_ref));
        MBP_RETURN_IF_ERROR(reader.F64(&r.delta));
        MBP_RETURN_IF_ERROR(reader.F64(&r.price));
        MBP_RETURN_IF_ERROR(reader.U64(&r.seed_commitment));
        MBP_RETURN_IF_ERROR(reader.Doubles(&out->buy.weights));
        break;
      }
    }
  }
  MBP_RETURN_IF_ERROR(reader.ExpectEnd());
  return consumed;
}

}  // namespace mbp::net

#include "net/protocol.h"

#include <bit>
#include <cstring>

namespace mbp::net {
namespace {

constexpr size_t kMaxCurveIdBytes = 255;
constexpr uint8_t kMaxStatusCodeByte =
    static_cast<uint8_t>(StatusCode::kUnavailable);

uint32_t Fnv1a32(const uint8_t* data, size_t size) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

// ------------------------------------------------------------- encoding

void AppendBytes(std::string* wire, const void* data, size_t size) {
  if (size == 0) return;
  wire->append(static_cast<const char*>(data), size);
}

void AppendU8(std::string* wire, uint8_t v) { AppendBytes(wire, &v, 1); }
void AppendU16(std::string* wire, uint16_t v) { AppendBytes(wire, &v, 2); }
void AppendU32(std::string* wire, uint32_t v) { AppendBytes(wire, &v, 4); }
void AppendU64(std::string* wire, uint64_t v) { AppendBytes(wire, &v, 8); }
void AppendF64(std::string* wire, double v) { AppendBytes(wire, &v, 8); }

void AppendDoubles(std::string* wire, const std::vector<double>& values) {
  AppendU32(wire, static_cast<uint32_t>(values.size()));
  AppendBytes(wire, values.data(), values.size() * sizeof(double));
}

void AppendHistogram(std::string* wire,
                     const LatencyHistogramSnapshot& snap) {
  AppendU64(wire, snap.count);
  AppendF64(wire, snap.sum_micros);
  AppendU32(wire, static_cast<uint32_t>(kLatencyBuckets));
  for (const uint64_t bucket : snap.buckets) AppendU64(wire, bucket);
}

// Appends the shared header with placeholder length/checksum and returns
// the frame's start offset; SealFrame patches both once the payload is in.
size_t BeginFrame(std::string* wire, Verb verb, StatusCode code,
                  uint64_t request_id) {
  const size_t frame_start = wire->size();
  AppendU32(wire, 0);  // frame_len, patched by SealFrame
  AppendU32(wire, 0);  // checksum, patched by SealFrame
  AppendU8(wire, kProtocolVersion);
  AppendU8(wire, static_cast<uint8_t>(verb));
  AppendU8(wire, static_cast<uint8_t>(code));
  AppendU8(wire, 0);  // reserved
  AppendU64(wire, request_id);
  return frame_start;
}

void SealFrame(std::string* wire, size_t frame_start) {
  uint8_t* frame =
      reinterpret_cast<uint8_t*>(wire->data()) + frame_start;
  const size_t checksummed = wire->size() - frame_start - 8;
  const uint32_t frame_len = static_cast<uint32_t>(checksummed);
  std::memcpy(frame, &frame_len, 4);
  const uint32_t checksum = Fnv1a32(frame + 8, checksummed);
  std::memcpy(frame + 4, &checksum, 4);
}

// ------------------------------------------------------------- decoding

// Cursor over one complete, checksum-verified frame's payload. Any
// overrun means the length prefix and the payload structure disagree —
// corruption the checksum cannot rule out, reported as InvalidArgument.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status Bytes(void* out, size_t n) {
    if (size_ - offset_ < n) {
      return InvalidArgumentError("net frame payload overruns its length");
    }
    if (n > 0) std::memcpy(out, data_ + offset_, n);
    offset_ += n;
    return Status::OK();
  }

  Status U8(uint8_t* v) { return Bytes(v, 1); }
  Status U16(uint16_t* v) { return Bytes(v, 2); }
  Status U32(uint32_t* v) { return Bytes(v, 4); }
  Status U64(uint64_t* v) { return Bytes(v, 8); }
  Status F64(double* v) { return Bytes(v, 8); }

  Status String(size_t n, std::string* out) {
    out->resize(n);
    return Bytes(out->data(), n);
  }

  Status Doubles(std::vector<double>* out) {
    uint32_t count = 0;
    MBP_RETURN_IF_ERROR(U32(&count));
    if (count > kMaxVectorElements) {
      return InvalidArgumentError("net frame vector count exceeds cap");
    }
    out->resize(count);
    return Bytes(out->data(), count * sizeof(double));
  }

  Status Histogram(LatencyHistogramSnapshot* out) {
    MBP_RETURN_IF_ERROR(U64(&out->count));
    MBP_RETURN_IF_ERROR(F64(&out->sum_micros));
    uint32_t num_buckets = 0;
    MBP_RETURN_IF_ERROR(U32(&num_buckets));
    if (num_buckets != kLatencyBuckets) {
      return InvalidArgumentError(
          "net stats histogram bucket count mismatch");
    }
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      MBP_RETURN_IF_ERROR(U64(&out->buckets[i]));
    }
    return Status::OK();
  }

  Status ExpectEnd() const {
    if (offset_ != size_) {
      return InvalidArgumentError("net frame has trailing payload bytes");
    }
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

struct Header {
  Verb verb = Verb::kPriceAt;
  StatusCode code = StatusCode::kOk;
  uint64_t request_id = 0;
  size_t payload_offset = 0;  // from frame start
  size_t frame_size = 0;      // whole frame, header included
};

// Parses and validates the shared header. Consumed-size semantics match
// DecodeRequest/DecodeResponse: 0 bytes means incomplete.
StatusOr<size_t> DecodeHeader(const uint8_t* data, size_t size,
                              Header* out) {
  if (size < 8) return size_t{0};
  uint32_t frame_len = 0;
  uint32_t checksum = 0;
  std::memcpy(&frame_len, data, 4);
  std::memcpy(&checksum, data + 4, 4);
  // Length sanity first: a corrupt length prefix must not stall the
  // connection forever waiting for bytes that will never come.
  if (frame_len < kHeaderBytes - 8 || frame_len > kMaxFrameBytes - 8) {
    return InvalidArgumentError("net frame length prefix out of range");
  }
  const size_t frame_size = size_t{frame_len} + 8;
  if (size < frame_size) return size_t{0};
  if (Fnv1a32(data + 8, frame_len) != checksum) {
    return InvalidArgumentError("net frame checksum mismatch");
  }
  if (data[8] != kProtocolVersion) {
    return InvalidArgumentError("unsupported net protocol version");
  }
  const uint8_t verb = data[9];
  if (verb < static_cast<uint8_t>(Verb::kPriceAt) ||
      verb > static_cast<uint8_t>(Verb::kStats)) {
    return InvalidArgumentError("unknown net protocol verb");
  }
  if (data[10] > kMaxStatusCodeByte) {
    return InvalidArgumentError("net frame carries unknown status code");
  }
  if (data[11] != 0) {
    return InvalidArgumentError("net frame reserved byte is not zero");
  }
  out->verb = static_cast<Verb>(verb);
  out->code = static_cast<StatusCode>(data[10]);
  std::memcpy(&out->request_id, data + 12, 8);
  out->payload_offset = kHeaderBytes;
  out->frame_size = frame_size;
  return frame_size;
}

bool VerbCarriesVector(Verb verb) {
  return verb == Verb::kPriceAt || verb == Verb::kBudgetToX;
}

}  // namespace

std::string_view VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPriceAt: return "PRICE_AT";
    case Verb::kBudgetToX: return "BUDGET_TO_X";
    case Verb::kSnapshotInfo: return "SNAPSHOT_INFO";
    case Verb::kStats: return "STATS";
  }
  return "?";
}

Response ErrorResponse(const Request& request, const Status& status) {
  Response response;
  response.verb = request.verb;
  response.request_id = request.request_id;
  response.code = status.ok() ? StatusCode::kInternal : status.code();
  response.error_message = status.message();
  return response;
}

void EncodeRequest(const Request& request, std::string* wire) {
  const size_t frame_start =
      BeginFrame(wire, request.verb, StatusCode::kOk, request.request_id);
  const size_t id_len = std::min(request.curve_id.size(), kMaxCurveIdBytes);
  AppendU8(wire, static_cast<uint8_t>(id_len));
  AppendBytes(wire, request.curve_id.data(), id_len);
  if (VerbCarriesVector(request.verb)) AppendDoubles(wire, request.args);
  SealFrame(wire, frame_start);
}

void EncodeResponse(const Response& response, std::string* wire) {
  const size_t frame_start =
      BeginFrame(wire, response.verb, response.code, response.request_id);
  if (response.code != StatusCode::kOk) {
    const size_t msg_len =
        std::min<size_t>(response.error_message.size(), 65535);
    AppendU16(wire, static_cast<uint16_t>(msg_len));
    AppendBytes(wire, response.error_message.data(), msg_len);
  } else {
    switch (response.verb) {
      case Verb::kPriceAt:
      case Verb::kBudgetToX:
        AppendDoubles(wire, response.values);
        break;
      case Verb::kSnapshotInfo:
        AppendU64(wire, response.info.version);
        AppendU64(wire, response.info.stamp);
        AppendU64(wire, response.info.num_knots);
        AppendF64(wire, response.info.x_max);
        AppendF64(wire, response.info.max_price);
        break;
      case Verb::kStats: {
        const StatsPayload& s = response.stats;
        AppendU64(wire, s.connections_accepted);
        AppendU64(wire, s.connections_active);
        AppendU64(wire, s.requests_ok);
        AppendU64(wire, s.requests_error);
        AppendU64(wire, s.protocol_errors);
        AppendU64(wire, s.queries);
        AppendU64(wire, s.batches);
        AppendU64(wire, s.connections_refused);
        AppendU64(wire, s.requests_shed);
        AppendU64(wire, s.deadline_drops);
        AppendU64(wire, s.connections_killed);
        AppendU64(wire, s.faults_injected);
        AppendU64(wire, s.write_queue_peak_bytes);
        AppendHistogram(wire, s.latency);
        AppendHistogram(wire, s.write_queue_bytes);
        const size_t num_faults = std::min<size_t>(s.faults.size(), 255);
        AppendU8(wire, static_cast<uint8_t>(num_faults));
        for (size_t i = 0; i < num_faults; ++i) {
          const FaultCount& f = s.faults[i];
          const size_t name_len = std::min<size_t>(f.point.size(), 255);
          AppendU8(wire, static_cast<uint8_t>(name_len));
          AppendBytes(wire, f.point.data(), name_len);
          AppendU64(wire, f.fires);
        }
        break;
      }
    }
  }
  SealFrame(wire, frame_start);
}

StatusOr<size_t> DecodeRequest(const uint8_t* data, size_t size,
                               Request* out) {
  Header header;
  MBP_ASSIGN_OR_RETURN(const size_t consumed,
                       DecodeHeader(data, size, &header));
  if (consumed == 0) return size_t{0};
  if (header.code != StatusCode::kOk) {
    return InvalidArgumentError("net request carries a non-OK status byte");
  }
  *out = Request{};
  out->verb = header.verb;
  out->request_id = header.request_id;
  Reader reader(data + header.payload_offset,
                header.frame_size - header.payload_offset);
  uint8_t id_len = 0;
  MBP_RETURN_IF_ERROR(reader.U8(&id_len));
  MBP_RETURN_IF_ERROR(reader.String(id_len, &out->curve_id));
  if (VerbCarriesVector(out->verb)) {
    MBP_RETURN_IF_ERROR(reader.Doubles(&out->args));
    if (out->args.empty()) {
      return InvalidArgumentError("net request carries no query values");
    }
  }
  MBP_RETURN_IF_ERROR(reader.ExpectEnd());
  return consumed;
}

StatusOr<size_t> DecodeResponse(const uint8_t* data, size_t size,
                                Response* out) {
  Header header;
  MBP_ASSIGN_OR_RETURN(const size_t consumed,
                       DecodeHeader(data, size, &header));
  if (consumed == 0) return size_t{0};
  *out = Response{};
  out->verb = header.verb;
  out->request_id = header.request_id;
  out->code = header.code;
  Reader reader(data + header.payload_offset,
                header.frame_size - header.payload_offset);
  if (out->code != StatusCode::kOk) {
    uint16_t msg_len = 0;
    MBP_RETURN_IF_ERROR(reader.U16(&msg_len));
    MBP_RETURN_IF_ERROR(reader.String(msg_len, &out->error_message));
  } else {
    switch (out->verb) {
      case Verb::kPriceAt:
      case Verb::kBudgetToX:
        MBP_RETURN_IF_ERROR(reader.Doubles(&out->values));
        break;
      case Verb::kSnapshotInfo:
        MBP_RETURN_IF_ERROR(reader.U64(&out->info.version));
        MBP_RETURN_IF_ERROR(reader.U64(&out->info.stamp));
        MBP_RETURN_IF_ERROR(reader.U64(&out->info.num_knots));
        MBP_RETURN_IF_ERROR(reader.F64(&out->info.x_max));
        MBP_RETURN_IF_ERROR(reader.F64(&out->info.max_price));
        break;
      case Verb::kStats: {
        StatsPayload& s = out->stats;
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_accepted));
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_active));
        MBP_RETURN_IF_ERROR(reader.U64(&s.requests_ok));
        MBP_RETURN_IF_ERROR(reader.U64(&s.requests_error));
        MBP_RETURN_IF_ERROR(reader.U64(&s.protocol_errors));
        MBP_RETURN_IF_ERROR(reader.U64(&s.queries));
        MBP_RETURN_IF_ERROR(reader.U64(&s.batches));
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_refused));
        MBP_RETURN_IF_ERROR(reader.U64(&s.requests_shed));
        MBP_RETURN_IF_ERROR(reader.U64(&s.deadline_drops));
        MBP_RETURN_IF_ERROR(reader.U64(&s.connections_killed));
        MBP_RETURN_IF_ERROR(reader.U64(&s.faults_injected));
        MBP_RETURN_IF_ERROR(reader.U64(&s.write_queue_peak_bytes));
        MBP_RETURN_IF_ERROR(reader.Histogram(&s.latency));
        MBP_RETURN_IF_ERROR(reader.Histogram(&s.write_queue_bytes));
        uint8_t num_faults = 0;
        MBP_RETURN_IF_ERROR(reader.U8(&num_faults));
        s.faults.resize(num_faults);
        for (FaultCount& f : s.faults) {
          uint8_t name_len = 0;
          MBP_RETURN_IF_ERROR(reader.U8(&name_len));
          MBP_RETURN_IF_ERROR(reader.String(name_len, &f.point));
          MBP_RETURN_IF_ERROR(reader.U64(&f.fires));
        }
        break;
      }
    }
  }
  MBP_RETURN_IF_ERROR(reader.ExpectEnd());
  return consumed;
}

}  // namespace mbp::net

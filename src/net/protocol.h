#ifndef MBP_NET_PROTOCOL_H_
#define MBP_NET_PROTOCOL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/metrics.h"
#include "common/statusor.h"

namespace mbp::net {

// Compact length-prefixed binary protocol for the networked price-serving
// front end (DESIGN.md §5d). One frame per request and per response, both
// directions sharing a 20-byte header:
//
//   offset  size  field
//   0       4     frame_len   bytes after the checksum field (>= 12,
//                             <= kMaxFrameBytes - 8); total frame size is
//                             frame_len + 8
//   4       4     checksum    FNV-1a-32 over bytes [8, 8 + frame_len) —
//                             the rest of the header AND the payload, so a
//                             flipped bit anywhere past the length prefix
//                             is caught before a frame is acted on
//   8       1     version     kProtocolVersion
//   9       1     verb        Verb (responses echo the request's verb)
//   10      1     status      StatusCode as a byte; 0 (kOk) on requests
//   11      1     reserved    must be 0
//   12      8     request_id  client-chosen correlation id, echoed back
//   20      ...   payload     verb-specific, see EncodeRequest/Response
//
// All integers and doubles are little-endian (doubles as their IEEE-754
// bit pattern), matching every platform this repo targets. Frames are
// self-delimiting, so any number of them can be pipelined on one TCP
// connection. Responses preserve the order of same-verb requests, but the
// server may batch PRICE_AT answers behind other verbs, so pipelining
// clients must correlate by request_id, not position.
//
// Corruption semantics: decoding returns the number of bytes consumed, 0
// when the buffer does not yet hold a complete frame, and a non-OK Status
// when the stream is unrecoverably corrupt (bad length, checksum, version,
// verb, or payload structure). After an error the framing is lost and the
// connection must be closed — there is no resynchronization.

// v2 appended catalog_listings / catalog_bytes to the STATS payload (the
// multi-tenant catalog's memory-accounting surface, DESIGN.md §5g); v3
// appended the per-transport counters (fallbacks, syscalls, io_uring
// SQEs, shm doorbell wakes — DESIGN.md §5h); v4 added the fulfillment
// verbs QUOTE/BUY/REPLAY with their multi-KB model payloads and appended
// the per-verb request counters + fulfillment block to STATS (DESIGN.md
// §5i); v5 appended the durability block (WAL append/fsync/byte counters
// and what the last recovery found — DESIGN.md §5j). The version byte is
// checked for exact equality on both sides, so mismatched processes
// refuse each other's frames instead of misparsing them.
inline constexpr uint8_t kProtocolVersion = 5;
inline constexpr size_t kHeaderBytes = 20;
// Hard cap on a whole frame (header + payload): bounds every per-
// connection buffer and rejects absurd length prefixes before allocating.
inline constexpr size_t kMaxFrameBytes = 1 << 20;
// Largest args/values vector a frame can carry under kMaxFrameBytes.
inline constexpr size_t kMaxVectorElements =
    (kMaxFrameBytes - kHeaderBytes - 8) / sizeof(double);

enum class Verb : uint8_t {
  kPriceAt = 1,       // args: xs (>= 1)        -> values: prices
  kBudgetToX = 2,     // args: budgets (>= 1)   -> values: largest xs
  kSnapshotInfo = 3,  // no args                -> SnapshotInfoPayload
  kStats = 4,         // no args, no curve id   -> StatsPayload
  // Fulfillment verbs (DESIGN.md §5i): the paper's actual transaction.
  kQuote = 5,   // delta                  -> QuotePayload (signed token)
  kBuy = 6,     // delta, txn_id, token?  -> BuyPayload (noised weights)
  kReplay = 7,  // txn_id                 -> BuyPayload (bit-identical)
};

// One past the largest verb byte; sizes per-verb counter arrays (index by
// the raw verb byte, entry 0 unused).
inline constexpr size_t kNumVerbSlots = 8;

// Human-readable verb name ("PRICE_AT", ...); "?" for invalid bytes.
std::string_view VerbName(Verb verb);

struct Request {
  Verb verb = Verb::kPriceAt;
  uint64_t request_id = 0;
  // Curve to query; empty selects the server's default curve. Ignored by
  // kStats. Capped at 255 bytes on the wire.
  std::string curve_id;
  // xs for kPriceAt, budgets for kBudgetToX; must be empty otherwise.
  std::vector<double> args;
  // Noise control parameter for kQuote / kBuy (δ of the paper, > 0).
  double delta = 0.0;
  // Client-chosen transaction id for kBuy / kReplay. Retrying a BUY with
  // the same txn_id is idempotent: the server re-delivers the recorded
  // sale without charging again.
  uint64_t txn_id = 0;
  // Opaque quote token for kBuy (from a prior QUOTE; empty buys at the
  // current snapshot price). Capped at 255 bytes on the wire.
  std::string token;
};

struct SnapshotInfoPayload {
  uint64_t version = 0;    // PricingSnapshot::version()
  uint64_t stamp = 0;      // CurveSlot publish stamp (republish detector)
  uint64_t num_knots = 0;
  double x_max = 0.0;
  double max_price = 0.0;
};

// Transaction record appended to every BUY / REPLAY response: what the
// ledger stores, and everything needed to deterministically replay the
// sale (the seed commitment binds the server to the per-transaction noise
// stream — DESIGN.md §5i).
struct SaleRecordPayload {
  uint64_t txn_id = 0;
  uint32_t curve_ref = 0;  // server-interned CurveRef of the sold curve
  double delta = 0.0;
  double price = 0.0;
  uint64_t seed_commitment = 0;

  friend bool operator==(const SaleRecordPayload& a,
                         const SaleRecordPayload& b) {
    return a.txn_id == b.txn_id && a.curve_ref == b.curve_ref &&
           a.delta == b.delta && a.price == b.price &&
           a.seed_commitment == b.seed_commitment;
  }
};

// BUY / REPLAY success payload: the sale record plus the delivered noised
// weight vector. Multi-KB frames; still bounded by kMaxFrameBytes.
struct BuyPayload {
  SaleRecordPayload record;
  std::vector<double> weights;
};

// QUOTE success payload: the price the token locks in, echoed δ, the
// token's expiry (server CatalogRegistry::NowMicros() time base), and the
// opaque MAC'd token a subsequent BUY presents.
struct QuotePayload {
  double price = 0.0;
  double delta = 0.0;
  uint64_t expires_at_micros = 0;
  std::string token;  // <= 255 bytes on the wire
};

// Largest weight vector a BUY/REPLAY frame can carry under kMaxFrameBytes.
inline constexpr size_t kMaxModelWeights =
    (kMaxFrameBytes - kHeaderBytes - (8 + 4 + 8 + 8 + 8) - 4) /
    sizeof(double);

// One fault-injection point's fire count, carried in STATS so a chaos
// client can observe what the server-side injector actually did.
struct FaultCount {
  std::string point;  // <= 255 bytes on the wire
  uint64_t fires = 0;

  friend bool operator==(const FaultCount& a, const FaultCount& b) {
    return a.point == b.point && a.fires == b.fires;
  }
};

// Server-side operational counters + request latency histogram, in the
// common/metrics.h snapshot format. The resilience block (shed/killed/
// deadline counters, write-queue depth histogram, fault fires) is the
// observable surface of the degradation ladder (DESIGN.md §5e).
struct StatsPayload {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;
  uint64_t protocol_errors = 0;
  uint64_t queries = 0;        // individual prices/budgets served
  uint64_t batches = 0;        // micro-batched PriceBatch dispatches
  // Degradation ladder counters:
  uint64_t connections_refused = 0;   // closed at accept (hard cap)
  uint64_t requests_shed = 0;         // answered OVERLOADED/RETRY_LATER
  uint64_t deadline_drops = 0;        // dropped past request_deadline_ms
  uint64_t connections_killed = 0;    // hard-killed (overflow / stalled drain)
  uint64_t faults_injected = 0;       // total injector fires, this process
  uint64_t write_queue_peak_bytes = 0;
  // Catalog residency (CatalogRegistry gauges, DESIGN.md §5g): listings
  // with a resident compiled snapshot and their summed MemoryBytes().
  uint64_t catalog_listings = 0;
  uint64_t catalog_bytes = 0;
  // Transport counters (DESIGN.md §5h): which backend the shards run on
  // is invisible at the protocol layer, so these are how operators and
  // the bench observe it. transport_syscalls counts every kernel
  // crossing the transports make (the bench's syscalls-per-request
  // numerator); uring_sqe_submitted and shm_doorbell_wakes are the
  // backend-specific activity gauges; transport_fallbacks counts
  // requested-but-unavailable downgrades (uring -> epoll).
  uint64_t transport_fallbacks = 0;
  uint64_t transport_syscalls = 0;
  uint64_t uring_sqe_submitted = 0;
  uint64_t shm_doorbell_wakes = 0;
  // Per-verb request counts, indexed by the raw verb byte (entry 0
  // unused). Counts every decoded request, shed or served — the verb mix
  // the bench and CLI surface.
  std::array<uint64_t, kNumVerbSlots> requests_by_verb{};
  // Fulfillment block (DESIGN.md §5i): the BUY pipeline's observable
  // surface. Zero everywhere when the server has no FulfillmentEngine.
  uint64_t buys_ok = 0;               // completed sales (first deliveries)
  uint64_t model_cache_entries = 0;   // ModelInstanceCache residents
  uint64_t model_cache_bytes = 0;     // their byte-accounted footprint
  uint64_t model_cache_hits = 0;
  uint64_t model_cache_misses = 0;
  uint64_t model_cache_evictions = 0;
  uint64_t transactions_recorded = 0;  // ledger size (replayable sales)
  double revenue = 0.0;                // summed charged prices
  // Durability block (v5, DESIGN.md §5j): the sale-ledger WAL's lifetime
  // counters plus what the LAST recovery found on disk. All zero when
  // the shard runs without --wal-dir.
  uint64_t wal_appends = 0;        // durable sale records written
  uint64_t wal_fsyncs = 0;         // fdatasync calls (group commit batches)
  uint64_t wal_bytes = 0;          // bytes appended (frames included)
  uint64_t recovery_records = 0;   // segment records replayed at startup
  uint64_t recovery_torn_tail = 0; // torn tails truncated / rot rejected
  uint64_t recovery_ms = 0;        // recovery wall time, rounded up
  LatencyHistogramSnapshot latency;
  // log2-bucket histogram over pending write-queue bytes, sampled at
  // every response enqueue (bucket i = [2^(i-1), 2^i) bytes).
  LatencyHistogramSnapshot write_queue_bytes;
  // Fulfillment latency (decode to noised-weights framing) per BUY.
  LatencyHistogramSnapshot fulfillment_latency;
  // Per-point injector fire counts (empty when nothing armed); capped at
  // 255 entries on the wire.
  std::vector<FaultCount> faults;
};

struct Response {
  Verb verb = Verb::kPriceAt;
  uint64_t request_id = 0;
  // kOk for success; any other code carries error_message and no data.
  StatusCode code = StatusCode::kOk;
  std::string error_message;
  std::vector<double> values;  // kPriceAt / kBudgetToX results
  SnapshotInfoPayload info;    // kSnapshotInfo result
  StatsPayload stats;          // kStats result
  BuyPayload buy;              // kBuy / kReplay result
  QuotePayload quote;          // kQuote result
};

// Builds the response frame skeleton for an error outcome.
Response ErrorResponse(const Request& request, const Status& status);

// Exact wire size of the frame Encode{Request,Response} will produce —
// every encode below sizes its output in ONE step from these (no
// incremental growth) and computes the checksum in place.
size_t EncodedRequestSize(const Request& request);
size_t EncodedResponseSize(const Response& response);

// Appends one encoded frame to `*wire` (one exact-size resize).
void EncodeRequest(const Request& request, std::string* wire);
void EncodeResponse(const Response& response, std::string* wire);

// Encodes one frame into a caller-owned buffer of at least
// Encoded*Size(...) bytes — the arena path: the server frames responses
// directly into per-connection arena memory that iovecs then point at,
// no intermediate string. Returns the bytes written (== Encoded*Size).
size_t EncodeRequestInto(const Request& request, uint8_t* out);
size_t EncodeResponseInto(const Response& response, uint8_t* out);

// Allocation-free fast path for the dominant response shape: a
// successful PRICE_AT / BUDGET_TO_X frame carrying `count` doubles,
// framed straight from a raw array (no Response object, no vector).
// Byte-for-byte identical to EncodeResponseInto of the equivalent
// Response. count must be <= kMaxVectorElements.
size_t EncodedValuesResponseSize(size_t count);
size_t EncodeValuesResponseInto(Verb verb, uint64_t request_id,
                                const double* values, size_t count,
                                uint8_t* out);

// Arena path for BUY / REPLAY success frames: the sale record + noised
// weights framed straight from a raw array into caller-owned memory.
// Byte-for-byte identical to EncodeResponseInto of the equivalent
// Response. num_weights must be <= kMaxModelWeights. `verb` is kBuy or
// kReplay (the payload shape is shared — that sameness is the replay
// contract's delivered-bytes anchor).
size_t EncodedBuyResponseSize(size_t num_weights);
size_t EncodeBuyResponseInto(Verb verb, uint64_t request_id,
                             const SaleRecordPayload& record,
                             const double* weights, size_t num_weights,
                             uint8_t* out);

// Attempts to decode ONE frame from the front of [data, data + size).
// Returns the number of bytes consumed (a complete frame), 0 when more
// bytes are needed, or a non-OK Status on corruption (close the stream).
StatusOr<size_t> DecodeRequest(const uint8_t* data, size_t size,
                               Request* out);
StatusOr<size_t> DecodeResponse(const uint8_t* data, size_t size,
                                Response* out);

// Zero-heap-allocation request decode for the server hot path: identical
// validation and consumed-size semantics to DecodeRequest, but curve_id
// is a view INTO the wire buffer (valid only while the buffer is) and
// args is an aligned copy in `arena` (valid until the arena resets).
struct RequestView {
  Verb verb = Verb::kPriceAt;
  uint64_t request_id = 0;
  std::string_view curve_id;
  const double* args = nullptr;
  size_t num_args = 0;
  double delta = 0.0;      // kQuote / kBuy
  uint64_t txn_id = 0;     // kBuy / kReplay
  std::string_view token;  // kBuy; view into the wire buffer
};
StatusOr<size_t> DecodeRequestView(const uint8_t* data, size_t size,
                                   RequestView* out, Arena* arena);

}  // namespace mbp::net

#endif  // MBP_NET_PROTOCOL_H_

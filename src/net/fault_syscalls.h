#ifndef MBP_NET_FAULT_SYSCALLS_H_
#define MBP_NET_FAULT_SYSCALLS_H_

#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <cstddef>

#include "common/fault_injection.h"

// Thin syscall wrappers that every net/ I/O path goes through, so the
// chaos suite can inject the failures production sees without a flaky
// network in the loop (DESIGN.md §5e):
//
//   point                 effect
//   net.recv.eintr        recv returns -1/EINTR before touching the fd
//   net.recv.eagain       recv returns -1/EAGAIN (spurious readiness)
//   net.recv.reset        recv returns -1/ECONNRESET
//   net.recv.short        recv is clamped to 1 byte (short read)
//   net.recv.delay        sleeps schedule.delay_micros (stalled peer)
//   net.send.eintr/.eagain/.reset/.short/.delay   same for send AND
//                         writev (FaultWritev honors the same points, so
//                         one armed schedule covers both write paths)
//   net.accept.eintr      accept4 returns -1/EINTR
//   net.accept.eagain     accept4 returns -1/EAGAIN (wakeup w/o conn)
//   net.epoll.eintr       epoll_wait returns -1/EINTR
//   net.poll.eintr        poll returns -1/EINTR (client paths)
//   net.poll.timeout      poll reports 0 ready fds (forces deadlines)
//
// Injected errors happen BEFORE the real syscall, so no bytes move and
// kernel state is untouched — a short read/write is the only injected
// outcome that transfers data, and it transfers real data. Frame
// integrity is therefore never at stake; what the injections stress is
// every resumption path (EINTR loops, partial-I/O continuation, deadline
// arithmetic, reset handling). When MBP_FAULT_INJECTION=OFF these inline
// to bare syscalls.
//
// Arming caveat: the EINTR/EAGAIN points sit inside retry loops by
// design, so arm them with probability < 1 (or a max_fires budget) — a
// probability-1 unbounded error schedule makes the resumption loop spin
// forever, which is a broken schedule, not a server bug.

namespace mbp::net::internal {

inline ssize_t FaultRecv(int fd, void* buf, size_t n) {
  if (MBP_FAULT_POINT("net.recv.eintr")) {
    errno = EINTR;
    return -1;
  }
  if (MBP_FAULT_POINT("net.recv.eagain")) {
    errno = EAGAIN;
    return -1;
  }
  if (MBP_FAULT_POINT("net.recv.reset")) {
    errno = ECONNRESET;
    return -1;
  }
  MBP_FAULT_DELAY("net.recv.delay");
  if (n > 1 && MBP_FAULT_POINT("net.recv.short")) n = 1;
  return recv(fd, buf, n, 0);
}

inline ssize_t FaultSend(int fd, const void* buf, size_t n) {
  if (MBP_FAULT_POINT("net.send.eintr")) {
    errno = EINTR;
    return -1;
  }
  if (MBP_FAULT_POINT("net.send.eagain")) {
    errno = EAGAIN;
    return -1;
  }
  if (MBP_FAULT_POINT("net.send.reset")) {
    errno = ECONNRESET;
    return -1;
  }
  MBP_FAULT_DELAY("net.send.delay");
  if (n > 1 && MBP_FAULT_POINT("net.send.short")) n = 1;
  return send(fd, buf, n, MSG_NOSIGNAL);
}

// Scatter-gather send (sendmsg under the hood, for MSG_NOSIGNAL — plain
// writev can raise SIGPIPE on a closed peer). Shares the net.send.*
// points with FaultSend: the iovec path is the same logical operation,
// and the chaos schedules that stress partial sends must stress it too.
// An injected short write transfers exactly 1 real byte of the first
// iovec, the scatter-gather analogue of FaultSend's clamp.
inline ssize_t FaultWritev(int fd, const struct iovec* iov, int iovcnt) {
  if (MBP_FAULT_POINT("net.send.eintr")) {
    errno = EINTR;
    return -1;
  }
  if (MBP_FAULT_POINT("net.send.eagain")) {
    errno = EAGAIN;
    return -1;
  }
  if (MBP_FAULT_POINT("net.send.reset")) {
    errno = ECONNRESET;
    return -1;
  }
  MBP_FAULT_DELAY("net.send.delay");
  if ((iovcnt > 1 || (iovcnt == 1 && iov[0].iov_len > 1)) &&
      MBP_FAULT_POINT("net.send.short")) {
    return send(fd, iov[0].iov_base, 1, MSG_NOSIGNAL);
  }
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  return sendmsg(fd, &msg, MSG_NOSIGNAL);
}

inline int FaultAccept4(int fd, sockaddr* addr, socklen_t* len, int flags) {
  if (MBP_FAULT_POINT("net.accept.eintr")) {
    errno = EINTR;
    return -1;
  }
  if (MBP_FAULT_POINT("net.accept.eagain")) {
    errno = EAGAIN;
    return -1;
  }
  return accept4(fd, addr, len, flags);
}

inline int FaultEpollWait(int epfd, epoll_event* events, int max_events,
                          int timeout_ms) {
  if (MBP_FAULT_POINT("net.epoll.eintr")) {
    errno = EINTR;
    return -1;
  }
  return epoll_wait(epfd, events, max_events, timeout_ms);
}

inline int FaultPoll(pollfd* fds, nfds_t nfds, int timeout_ms) {
  if (MBP_FAULT_POINT("net.poll.eintr")) {
    errno = EINTR;
    return -1;
  }
  if (MBP_FAULT_POINT("net.poll.timeout")) return 0;
  return poll(fds, nfds, timeout_ms);
}

}  // namespace mbp::net::internal

#endif  // MBP_NET_FAULT_SYSCALLS_H_

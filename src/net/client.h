#ifndef MBP_NET_CLIENT_H_
#define MBP_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "net/protocol.h"

namespace mbp::net {

// Blocking client for the PriceServer wire protocol: one TCP connection,
// one outstanding request at a time (send, then read frames until the one
// echoing our request_id arrives). Not thread-safe — use one PriceClient
// per thread; the load generator and tests open many.
//
// Server-side errors (unknown curve, withdrawn snapshot, infeasible
// budget) come back as the Status carried in the response frame, keeping
// remote error semantics identical to calling PriceQueryEngine directly.
class PriceClient {
 public:
  static StatusOr<std::unique_ptr<PriceClient>> Connect(
      const std::string& host, uint16_t port);

  ~PriceClient();

  PriceClient(const PriceClient&) = delete;
  PriceClient& operator=(const PriceClient&) = delete;

  // Single price query; `curve_id` empty selects the server default.
  StatusOr<double> PriceAt(const std::string& curve_id, double x);

  // Batched price query: one frame carrying all of `xs`, one response.
  StatusOr<std::vector<double>> PriceBatch(const std::string& curve_id,
                                           const std::vector<double>& xs);

  // Largest x whose price fits `budget` (paper's inverse query).
  StatusOr<double> BudgetToX(const std::string& curve_id, double budget);

  StatusOr<SnapshotInfoPayload> SnapshotInfo(const std::string& curve_id);

  StatusOr<StatsPayload> Stats();

  // Sends `request` (request_id is assigned here) and blocks for its
  // response frame. Exposed for tests that exercise raw verbs.
  Status Roundtrip(Request request, Response* response);

 private:
  explicit PriceClient(int fd) : fd_(fd) {}

  int fd_;
  uint64_t next_request_id_ = 1;
  std::string rx_;  // bytes received beyond the last decoded frame
};

}  // namespace mbp::net

#endif  // MBP_NET_CLIENT_H_

#ifndef MBP_NET_CLIENT_H_
#define MBP_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/statusor.h"
#include "net/protocol.h"

namespace mbp::net {

// Client-side retry behaviour: exponential backoff with decorrelated
// jitter (sleep ~ U[base, 3 * previous], capped), a retry budget that
// stops a fleet of clients from amplifying an outage, and an idempotency
// gate. A request is retried only when it is safe AND useful:
//
//   - the response was OVERLOADED/RETRY_LATER (kUnavailable): the server
//     shed it untouched — retry after backoff on the same connection;
//   - the transport failed (reset, premature close, corrupt stream) or
//     the per-attempt timeout fired, AND the verb is idempotent:
//     reconnect and retry. Every current verb is a read-only price query
//     and therefore idempotent (see IsIdempotent), but the gate is
//     enforced so future mutating verbs fail fast instead of double-
//     applying;
//   - anything else (NotFound, InvalidArgument, Infeasible, ...) is an
//     application answer, not a fault — returned immediately.
//
// The overall per-request deadline bounds ALL attempts and backoff
// sleeps; when it expires the request fails with kDeadlineExceeded.
struct RetryPolicy {
  // Total tries, the first attempt included. 1 disables retries.
  int max_attempts = 4;
  // Decorrelated-jitter backoff between attempts, milliseconds.
  int base_backoff_ms = 2;
  int max_backoff_ms = 250;
  // Retry budget in tokens: each retry spends 1.0, each success refunds
  // `budget_refund_per_success` (capped at the initial budget). When the
  // budget is dry, failures return immediately — a persistently failing
  // server is not hammered at max_attempts multiplicity forever.
  double retry_budget = 16.0;
  double budget_refund_per_success = 0.1;
  // Jitter stream seed; fixed default keeps tests replayable.
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

struct ClientOptions {
  // Bounded non-blocking connect; 0 waits forever (not recommended).
  int connect_timeout_ms = 2000;
  // Per-attempt cap on one send+receive round trip; an attempt that
  // exceeds it is abandoned (connection closed, a late response can
  // never be mistaken for a later request's) and retried if time and
  // budget remain. 0 disables.
  int attempt_timeout_ms = 2000;
  // Overall per-request deadline across all attempts and backoffs;
  // 0 disables. When exceeded the request returns kDeadlineExceeded.
  int request_timeout_ms = 10000;
  RetryPolicy retry;
};

// What the resilience machinery actually did, for tests and operators.
// Plain counters: PriceClient is single-threaded by contract.
struct ClientTelemetry {
  uint64_t retries_attempted = 0;   // backoff-then-retry cycles entered
  uint64_t retries_exhausted = 0;   // requests failed with retries spent
  uint64_t deadline_exceeded = 0;   // requests failed on overall deadline
  uint64_t attempt_timeouts = 0;    // per-attempt timeouts (maybe retried)
  uint64_t transport_errors = 0;    // resets / closes / corrupt streams
  uint64_t overload_responses = 0;  // OVERLOADED/RETRY_LATER received
  uint64_t reconnects = 0;          // successful re-establishments
};

// Query verbs are read-only; BUY is mutating but keyed by a client-chosen
// transaction id the server's ledger dedupes (a retry re-delivers the
// recorded sale without charging again), so every verb is retry-safe.
bool IsIdempotent(Verb verb);

// One client-side connection to a PriceServer: how bytes get there and
// back. TCP today, a shared-memory ring slot for co-located processes —
// the frame stream above is identical either way. Internal seam; defined
// in client.cc.
class ClientChannel;

// Resilient blocking-style client for the PriceServer wire protocol: one
// connection (re-established across transport faults), one outstanding
// request at a time, per-request deadlines, and the retry/backoff ladder
// of RetryPolicy. Not thread-safe — use one PriceClient per thread; the
// load generator and tests open many.
//
// Endpoints: `host` is either an IPv4 host (TCP, `port` applies) or a
// "shm://<path>" URI naming a server's shared-memory segment (`port`
// ignored) — see DESIGN.md §5h. All resilience machinery (retries,
// deadlines, reconnects) is transport-agnostic.
//
// Server-side errors (unknown curve, withdrawn snapshot, infeasible
// budget) come back as the Status carried in the response frame, keeping
// remote error semantics identical to calling PriceQueryEngine directly.
// OVERLOADED responses and transport faults are absorbed by the retry
// layer up to the policy's limits, then surface as kUnavailable /
// kDeadlineExceeded / kInternal.
class PriceClient {
 public:
  static StatusOr<std::unique_ptr<PriceClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options = {});

  ~PriceClient();

  PriceClient(const PriceClient&) = delete;
  PriceClient& operator=(const PriceClient&) = delete;

  // Single price query; `curve_id` empty selects the server default.
  StatusOr<double> PriceAt(const std::string& curve_id, double x);

  // Batched price query: one frame carrying all of `xs`, one response.
  StatusOr<std::vector<double>> PriceBatch(const std::string& curve_id,
                                           const std::vector<double>& xs);

  // Largest x whose price fits `budget` (paper's inverse query).
  StatusOr<double> BudgetToX(const std::string& curve_id, double budget);

  StatusOr<SnapshotInfoPayload> SnapshotInfo(const std::string& curve_id);

  StatusOr<StatsPayload> Stats();

  // Prices (curve, δ) and returns the signed quote token a later Buy can
  // present to purchase at exactly that price until it expires.
  StatusOr<QuotePayload> Quote(const std::string& curve_id, double delta);

  // Buys a noised model instance at NCP δ > 0. txn_id 0 auto-generates a
  // process-unique id (NextTransactionId); pass an explicit id to make
  // the purchase replayable/idempotent under YOUR key. `token` from a
  // prior Quote locks in the quoted price. Safe under the retry ladder:
  // the server's ledger dedupes the txn id, so a retried BUY receives the
  // identical recorded sale and is charged once.
  StatusOr<BuyPayload> Buy(const std::string& curve_id, double delta,
                           uint64_t txn_id = 0,
                           const std::string& token = std::string());

  // Re-delivers a recorded sale bit-identically from its ledger record.
  StatusOr<BuyPayload> Replay(uint64_t txn_id);

  // Fresh client-unique transaction id (never 0): mixed from the pid,
  // client identity, startup time, and a per-client counter.
  uint64_t NextTransactionId();

  // Sends `request` (request_id is assigned here) and blocks for its
  // response frame, applying the full deadline + retry ladder. Exposed
  // for tests that exercise raw verbs.
  Status Roundtrip(Request request, Response* response);

  const ClientTelemetry& telemetry() const { return telemetry_; }
  // Remaining retry-budget tokens (see RetryPolicy::retry_budget).
  double retry_budget() const { return budget_; }

 private:
  using Clock = std::chrono::steady_clock;

  PriceClient(std::string host, uint16_t port, ClientOptions options);

  // (Re-)establishes the connection: bounded by `deadline`;
  // kDeadlineExceeded when it cannot complete in time.
  Status Reconnect(Clock::time_point deadline);
  void CloseChannel();

  // One send+receive attempt bounded by `deadline`. Sets
  // *transport_broken when the connection is no longer usable (the
  // caller must Reconnect before any further attempt).
  Status RoundtripOnce(const Request& request, const std::string& wire,
                       Clock::time_point deadline, Response* response,
                       bool* transport_broken);

  std::string host_;
  uint16_t port_;
  ClientOptions options_;
  std::unique_ptr<ClientChannel> channel_;
  uint64_t next_request_id_ = 1;
  std::string rx_;  // bytes received beyond the last decoded frame
  uint64_t txn_base_ = 0;  // NextTransactionId entropy, set at construction
  uint64_t txn_seq_ = 0;
  double budget_;
  fault::Pcg32 jitter_;
  ClientTelemetry telemetry_;
};

}  // namespace mbp::net

#endif  // MBP_NET_CLIENT_H_

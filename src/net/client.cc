#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/sharded_cache.h"
#include "net/fault_syscalls.h"
#include "net/shm_ring.h"

namespace mbp::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::string_view kShmScheme = "shm://";

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Deadline sentinel when a timeout knob is 0 (disabled).
Clock::time_point NoDeadline() { return Clock::time_point::max(); }

Clock::time_point DeadlineAfterMs(int ms) {
  return ms <= 0 ? NoDeadline() : Clock::now() + std::chrono::milliseconds(ms);
}

// Remaining time as a poll() timeout: -1 for "no deadline", clamped to
// >= 0 otherwise. Poll timeouts are re-derived after every wakeup, so
// injected EINTR/short completions never extend the total wait.
int PollTimeoutMs(Clock::time_point deadline) {
  if (deadline == NoDeadline()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(std::min<int64_t>(
                                     left.count(), 60 * 1000));
}

}  // namespace

// The transport under one PriceClient connection. Both operations are
// blocking-with-deadline; any non-OK return means the connection is no
// longer usable (the retry ladder reconnects on a fresh channel).
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  // Delivers all `n` bytes (in order) or fails.
  virtual Status SendAll(const uint8_t* data, size_t n,
                         Clock::time_point deadline) = 0;
  // Blocks until at least one byte is available, the peer closes (0),
  // or `deadline` passes (kDeadlineExceeded).
  virtual StatusOr<size_t> RecvSome(uint8_t* buf, size_t max,
                                    Clock::time_point deadline) = 0;
};

namespace {

// ---------------------------------------------------------------------
// TCP: one nonblocking socket, poll()-paced.

class TcpChannel final : public ClientChannel {
 public:
  static StatusOr<std::unique_ptr<TcpChannel>> Connect(
      const std::string& host, uint16_t port, Clock::time_point deadline) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("unparsable IPv4 host '" + host + "'");
    }
    auto channel = std::unique_ptr<TcpChannel>(new TcpChannel());
    channel->fd_ =
        socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (channel->fd_ < 0) return ErrnoError("socket");
    // Bounded non-blocking connect: EINPROGRESS, then poll(POLLOUT) with
    // the remaining time, then SO_ERROR for the actual outcome. A peer
    // that drops SYNs (full backlog, blackholed route) surfaces as
    // kDeadlineExceeded instead of hanging the caller for minutes of
    // kernel retransmits.
    const std::string label = numeric + ":" + std::to_string(port);
    if (connect(channel->fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
      if (errno != EINPROGRESS && errno != EINTR) {
        return ErrnoError("connect " + label);
      }
      const Status ready = channel->WaitReady(POLLOUT, deadline);
      if (!ready.ok()) {
        if (ready.code() == StatusCode::kDeadlineExceeded) {
          return DeadlineExceededError("connect " + label + " timed out");
        }
        return ready;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (getsockopt(channel->fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) <
              0 ||
          so_error != 0) {
        errno = so_error != 0 ? so_error : errno;
        return ErrnoError("connect " + label);
      }
    }
    const int one = 1;
    (void)setsockopt(channel->fd_, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    return channel;
  }

  ~TcpChannel() override {
    if (fd_ >= 0) close(fd_);
  }

  Status SendAll(const uint8_t* data, size_t n,
                 Clock::time_point deadline) override {
    size_t sent = 0;
    while (sent < n) {
      const ssize_t w = internal::FaultSend(fd_, data + sent, n - sent);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          MBP_RETURN_IF_ERROR(WaitReady(POLLOUT, deadline));
          continue;
        }
        return ErrnoError("send");
      }
      sent += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  StatusOr<size_t> RecvSome(uint8_t* buf, size_t max,
                            Clock::time_point deadline) override {
    while (true) {
      MBP_RETURN_IF_ERROR(WaitReady(POLLIN, deadline));
      const ssize_t n = internal::FaultRecv(fd_, buf, max);
      if (n == 0) return size_t{0};
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;  // poll again with the remaining deadline
        }
        return ErrnoError("recv");
      }
      return static_cast<size_t>(n);
    }
  }

 private:
  TcpChannel() = default;

  // Blocks until fd_ is ready for `events` or `deadline` passes.
  Status WaitReady(short events, Clock::time_point deadline) {
    while (true) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = events;
      const int n = internal::FaultPoll(&pfd, 1, PollTimeoutMs(deadline));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("poll");
      }
      if (n == 0) {
        if (Clock::now() < deadline) continue;  // injected spurious timeout
        return DeadlineExceededError("deadline waiting on socket");
      }
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        return InternalError("socket entered an error state");
      }
      return Status::OK();
    }
  }

  int fd_ = -1;
};

// ---------------------------------------------------------------------
// Shared-memory ring: one claimed slot of a server's segment. The
// protocol is documented at the top of shm_ring.h; this is the client
// half — claim/HELLO on connect, c2s producer + s2c consumer afterwards,
// a state/token check before every ring touch so a recycled or
// server-closed slot surfaces as a transport error instead of silent
// corruption.

class ShmChannel final : public ClientChannel {
 public:
  static StatusOr<std::unique_ptr<ShmChannel>> Connect(
      const std::string& path, Clock::time_point deadline) {
    using namespace shm_internal;  // NOLINT: protocol constants
    auto segment_or = ShmSegment::Open(path);
    if (!segment_or.ok()) return segment_or.status();
    auto channel = std::unique_ptr<ShmChannel>(new ShmChannel());
    channel->segment_ = std::move(*segment_or);
    ShmSegment* segment = channel->segment_.get();

    // A token no other claimant of this segment will ever stamp: pid +
    // a process-wide nonce (never zero — zero means "unstamped").
    static std::atomic<uint64_t> nonce{1};
    uint64_t token =
        (static_cast<uint64_t>(getpid()) << 32) ^
        (nonce.fetch_add(1, std::memory_order_relaxed) *
         0x9e3779b97f4a7c15ull) ^
        static_cast<uint64_t>(Clock::now().time_since_epoch().count());
    if (token == 0) token = 1;
    channel->token_ = token;

    // Claim: CAS any FREE slot to CLAIMED, stamp the token, go HELLO.
    const size_t slots = segment->num_slots();
    size_t claimed = slots;
    for (size_t i = 0; i < slots; ++i) {
      uint32_t expected = kSlotFree;
      if (segment->slot(i)->state.compare_exchange_strong(
              expected, kSlotClaimed, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        claimed = i;
        break;
      }
    }
    if (claimed == slots) {
      return UnavailableError("no free connection slots in shm segment " +
                              path);
    }
    channel->slot_ = claimed;
    SlotHeader* slot = segment->slot(claimed);
    slot->token.store(token, std::memory_order_release);
    slot->state.store(kSlotHello, std::memory_order_release);
    segment->RingDoorbell(nullptr, nullptr);

    // Await adoption. The server answers in microseconds when healthy,
    // so a short sleep-poll is cheaper than futex plumbing on `state`.
    while (true) {
      const uint32_t state = slot->state.load(std::memory_order_acquire);
      if (state == kSlotActive &&
          slot->token.load(std::memory_order_acquire) == token) {
        return channel;
      }
      if (state != kSlotHello && state != kSlotClaimed) {
        // Refused, or recycled out from under us: hands off the slot —
        // the server's grace reclaim owns it now.
        channel->slot_ = kNoSlot;
        return UnavailableError("shm connection refused by server");
      }
      if (!segment->is_open()) {
        channel->Abandon();
        return UnavailableError("shm segment is closed (server gone)");
      }
      if (Clock::now() >= deadline) {
        channel->Abandon();
        return DeadlineExceededError("connect " + path + " timed out");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  ~ShmChannel() override { Abandon(); }

  Status SendAll(const uint8_t* data, size_t n,
                 Clock::time_point deadline) override {
    // shm has no kernel socket to reset, but the connection-loss chaos
    // point still applies: the client machinery must treat an injected
    // reset exactly like TCP (mark the channel broken, reconnect on a
    // fresh slot).
    if (MBP_FAULT_POINT("net.send.reset")) {
      return InternalError("injected connection reset (shm)");
    }
    shm_internal::RingView ring = segment_->c2s(slot_);
    size_t sent = 0;
    while (sent < n) {
      MBP_RETURN_IF_ERROR(CheckUsable());
      const size_t w = ring.Write(data + sent, n - sent, nullptr, nullptr);
      if (w > 0) {
        sent += w;
        // The serving shard parks on the segment-global doorbell, not
        // the per-ring futex — ring it after every publish.
        segment_->RingDoorbell(nullptr, nullptr);
        continue;
      }
      // Ring full: declare-then-recheck on the space futex the server's
      // consumer bumps. Bounded wait; lost wakes cost only latency.
      shm_internal::RingHeader* hdr = ring.hdr;
      const uint32_t seen = hdr->space_seq.load(std::memory_order_seq_cst);
      hdr->producer_waiting.fetch_add(1, std::memory_order_seq_cst);
      if (ring.WriteSpace() == 0 && CheckUsable().ok()) {
        shm_internal::ShmFutexWait(&hdr->space_seq, seen,
                                   BoundedWaitMs(deadline), nullptr);
      }
      hdr->producer_waiting.fetch_sub(1, std::memory_order_seq_cst);
      if (Clock::now() >= deadline) {
        return DeadlineExceededError("deadline waiting for shm ring space");
      }
    }
    return Status::OK();
  }

  StatusOr<size_t> RecvSome(uint8_t* buf, size_t max,
                            Clock::time_point deadline) override {
    if (MBP_FAULT_POINT("net.recv.reset")) {
      return InternalError("injected connection reset (shm)");
    }
    shm_internal::RingView ring = segment_->s2c(slot_);
    while (true) {
      const size_t n = ring.Read(buf, max, nullptr, nullptr);
      if (n > 0) {
        // Freed s2c space: a want-write server learns via the doorbell.
        segment_->RingDoorbell(nullptr, nullptr);
        return n;
      }
      // Empty: orderly close (drained above) reads as EOF, exactly like
      // recv() == 0 on TCP.
      const Status usable = CheckUsable();
      if (!usable.ok()) {
        if (ServerClosed()) return size_t{0};
        return usable;
      }
      shm_internal::RingHeader* hdr = ring.hdr;
      const uint32_t seen = hdr->data_seq.load(std::memory_order_seq_cst);
      hdr->consumer_waiting.fetch_add(1, std::memory_order_seq_cst);
      if (ring.ReadAvailable() == 0 && CheckUsable().ok()) {
        shm_internal::ShmFutexWait(&hdr->data_seq, seen,
                                   BoundedWaitMs(deadline), nullptr);
      }
      hdr->consumer_waiting.fetch_sub(1, std::memory_order_seq_cst);
      if (Clock::now() >= deadline) {
        return DeadlineExceededError("deadline waiting for shm response");
      }
    }
  }

 private:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  ShmChannel() = default;

  // Still our ACTIVE slot in an open segment?
  Status CheckUsable() const {
    using namespace shm_internal;  // NOLINT: protocol constants
    const SlotHeader* slot = segment_->slot(slot_);
    if (slot->token.load(std::memory_order_acquire) != token_) {
      return InternalError("shm slot recycled under the connection");
    }
    const uint32_t state = slot->state.load(std::memory_order_acquire);
    if (state == kSlotServerClosed) {
      return InternalError("server closed the shm connection");
    }
    if (state != kSlotActive) {
      return InternalError("shm slot left ACTIVE (state " +
                           std::to_string(state) + ")");
    }
    if (!segment_->is_open()) {
      return UnavailableError("shm segment closed (server shutting down)");
    }
    return Status::OK();
  }

  bool ServerClosed() const {
    const shm_internal::SlotHeader* slot = segment_->slot(slot_);
    return slot->token.load(std::memory_order_acquire) == token_ &&
           (slot->state.load(std::memory_order_acquire) ==
                shm_internal::kSlotServerClosed ||
            !segment_->is_open());
  }

  // Futex waits are always bounded (<= 100ms) and never past `deadline`.
  static int BoundedWaitMs(Clock::time_point deadline) {
    const int remaining = PollTimeoutMs(deadline);
    return remaining < 0 ? 100 : std::min(remaining, 100);
  }

  // Release our claim: publish CLIENT_CLOSED (only while the slot is
  // still ours) and ring the doorbell so the server reclaims promptly.
  void Abandon() {
    using namespace shm_internal;  // NOLINT: protocol constants
    if (segment_ == nullptr || slot_ == kNoSlot) return;
    SlotHeader* slot = segment_->slot(slot_);
    if (slot->token.load(std::memory_order_acquire) == token_) {
      const uint32_t state = slot->state.load(std::memory_order_acquire);
      if (state == kSlotClaimed || state == kSlotHello ||
          state == kSlotActive) {
        slot->state.store(kSlotClientClosed, std::memory_order_release);
      }
    }
    segment_->RingDoorbell(nullptr, nullptr);
    slot_ = kNoSlot;
  }

  std::unique_ptr<ShmSegment> segment_;
  size_t slot_ = kNoSlot;
  uint64_t token_ = 0;
};

}  // namespace

bool IsIdempotent(Verb verb) {
  switch (verb) {
    case Verb::kPriceAt:
    case Verb::kBudgetToX:
    case Verb::kSnapshotInfo:
    case Verb::kStats:
    case Verb::kQuote:
    case Verb::kReplay:
      return true;  // read-only
    case Verb::kBuy:
      // Mutating, but keyed by the client-chosen txn id the server's
      // ledger dedupes: a retried BUY re-delivers the recorded sale
      // without charging again, so retrying cannot double-apply.
      return true;
  }
  return false;
}

PriceClient::PriceClient(std::string host, uint16_t port,
                         ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      budget_(options.retry.retry_budget),
      jitter_(options.retry.jitter_seed, 0x2545f4914f6cdd1dull) {}

StatusOr<std::unique_ptr<PriceClient>> PriceClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options) {
  std::unique_ptr<PriceClient> client(
      new PriceClient(host, port, options));
  const Status status =
      client->Reconnect(DeadlineAfterMs(options.connect_timeout_ms));
  if (!status.ok()) return status;
  client->telemetry_.reconnects = 0;  // the first connect is not a "re"
  return client;
}

PriceClient::~PriceClient() { CloseChannel(); }

void PriceClient::CloseChannel() {
  channel_.reset();
  rx_.clear();
}

Status PriceClient::Reconnect(Clock::time_point deadline) {
  CloseChannel();
  if (host_.rfind(kShmScheme, 0) == 0) {
    auto channel_or =
        ShmChannel::Connect(host_.substr(kShmScheme.size()), deadline);
    if (!channel_or.ok()) return channel_or.status();
    channel_ = std::move(*channel_or);
  } else {
    auto channel_or = TcpChannel::Connect(host_, port_, deadline);
    if (!channel_or.ok()) return channel_or.status();
    channel_ = std::move(*channel_or);
  }
  ++telemetry_.reconnects;
  return Status::OK();
}

Status PriceClient::RoundtripOnce(const Request& request,
                                  const std::string& wire,
                                  Clock::time_point deadline,
                                  Response* response,
                                  bool* transport_broken) {
  *transport_broken = false;
  const Status sent = channel_->SendAll(
      reinterpret_cast<const uint8_t*>(wire.data()), wire.size(), deadline);
  if (!sent.ok()) {
    *transport_broken = true;
    return sent;
  }
  uint8_t buf[65536];
  while (true) {
    Response decoded;
    const auto consumed = DecodeResponse(
        reinterpret_cast<const uint8_t*>(rx_.data()), rx_.size(), &decoded);
    if (!consumed.ok()) {
      // Framing is lost — the stream is unusable from here on.
      *transport_broken = true;
      return consumed.status();
    }
    if (*consumed > 0) {
      rx_.erase(0, *consumed);
      // A stray frame is a response whose attempt we already abandoned
      // (the connection is closed on attempt timeout, so this only
      // happens for pipelining tests sharing the transport) — skip it.
      if (decoded.request_id != request.request_id) continue;
      if (decoded.code != StatusCode::kOk) {
        return Status(decoded.code, decoded.error_message);
      }
      *response = std::move(decoded);
      return Status::OK();
    }
    const auto received = channel_->RecvSome(buf, sizeof(buf), deadline);
    if (!received.ok()) {
      *transport_broken = true;
      return received.status();
    }
    if (*received == 0) {
      *transport_broken = true;
      return InternalError("server closed the connection mid-response");
    }
    rx_.append(reinterpret_cast<const char*>(buf), *received);
  }
}

Status PriceClient::Roundtrip(Request request, Response* response) {
  request.request_id = next_request_id_++;
  std::string wire;
  EncodeRequest(request, &wire);

  const Clock::time_point overall =
      DeadlineAfterMs(options_.request_timeout_ms);
  const RetryPolicy& policy = options_.retry;
  double backoff_ms = static_cast<double>(policy.base_backoff_ms);
  Status last = InternalError("no attempt made");

  for (int attempt = 0;; ++attempt) {
    if (Clock::now() >= overall) {
      ++telemetry_.deadline_exceeded;
      return DeadlineExceededError("request deadline exceeded after " +
                                   std::to_string(attempt) + " attempts");
    }
    // Per-attempt deadline: never past the overall one.
    Clock::time_point attempt_deadline =
        DeadlineAfterMs(options_.attempt_timeout_ms);
    attempt_deadline = std::min(attempt_deadline, overall);

    bool transport_broken = false;
    if (channel_ == nullptr) {
      last = Reconnect(attempt_deadline);
      transport_broken = !last.ok();
    }
    if (channel_ != nullptr) {
      last = RoundtripOnce(request, wire, attempt_deadline, response,
                           &transport_broken);
      if (last.ok()) {
        budget_ = std::min(policy.retry_budget,
                           budget_ + policy.budget_refund_per_success);
        return Status::OK();
      }
    }

    // Classify the failure.
    bool retryable = false;
    if (last.code() == StatusCode::kUnavailable && !transport_broken) {
      // The server shed the request untouched (RETRY_LATER); the
      // connection itself is healthy.
      ++telemetry_.overload_responses;
      retryable = true;
    } else if (transport_broken) {
      CloseChannel();
      if (last.code() == StatusCode::kDeadlineExceeded) {
        ++telemetry_.attempt_timeouts;
      } else {
        ++telemetry_.transport_errors;
      }
      // Safe only for idempotent verbs: the abandoned attempt may have
      // executed server-side.
      retryable = IsIdempotent(request.verb);
    } else {
      return last;  // application-level answer, not a fault
    }

    if (!retryable) return last;
    if (attempt + 1 >= policy.max_attempts || budget_ < 1.0) {
      ++telemetry_.retries_exhausted;
      return last;
    }
    budget_ -= 1.0;
    ++telemetry_.retries_attempted;

    // Decorrelated jitter: sleep ~ U[base, 3 * previous], capped —
    // retries from a fleet of clients spread out instead of thundering
    // back in lockstep.
    backoff_ms = std::min(
        static_cast<double>(policy.max_backoff_ms),
        jitter_.NextDouble(static_cast<double>(policy.base_backoff_ms),
                           std::max(static_cast<double>(policy.base_backoff_ms),
                                    backoff_ms * 3.0)));
    if (overall != NoDeadline()) {
      const double remaining_ms =
          std::chrono::duration<double, std::milli>(overall - Clock::now())
              .count();
      if (remaining_ms <= 0.0) {
        ++telemetry_.deadline_exceeded;
        return DeadlineExceededError("request deadline exceeded in backoff");
      }
      backoff_ms = std::min(backoff_ms, remaining_ms);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

StatusOr<double> PriceClient::PriceAt(const std::string& curve_id, double x) {
  Request request;
  request.verb = Verb::kPriceAt;
  request.curve_id = curve_id;
  request.args = {x};
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != 1) {
    return InternalError("PRICE_AT response carries " +
                         std::to_string(response.values.size()) + " values");
  }
  return response.values[0];
}

StatusOr<std::vector<double>> PriceClient::PriceBatch(
    const std::string& curve_id, const std::vector<double>& xs) {
  Request request;
  request.verb = Verb::kPriceAt;
  request.curve_id = curve_id;
  request.args = xs;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != xs.size()) {
    return InternalError("PRICE_AT batch of " + std::to_string(xs.size()) +
                         " answered with " +
                         std::to_string(response.values.size()) + " values");
  }
  return std::move(response.values);
}

StatusOr<double> PriceClient::BudgetToX(const std::string& curve_id,
                                        double budget) {
  Request request;
  request.verb = Verb::kBudgetToX;
  request.curve_id = curve_id;
  request.args = {budget};
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != 1) {
    return InternalError("BUDGET_TO_X response carries " +
                         std::to_string(response.values.size()) + " values");
  }
  return response.values[0];
}

StatusOr<SnapshotInfoPayload> PriceClient::SnapshotInfo(
    const std::string& curve_id) {
  Request request;
  request.verb = Verb::kSnapshotInfo;
  request.curve_id = curve_id;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  return response.info;
}

StatusOr<StatsPayload> PriceClient::Stats() {
  Request request;
  request.verb = Verb::kStats;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  return response.stats;
}

StatusOr<QuotePayload> PriceClient::Quote(const std::string& curve_id,
                                          double delta) {
  Request request;
  request.verb = Verb::kQuote;
  request.curve_id = curve_id;
  request.delta = delta;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  return std::move(response.quote);
}

StatusOr<BuyPayload> PriceClient::Buy(const std::string& curve_id,
                                      double delta, uint64_t txn_id,
                                      const std::string& token) {
  Request request;
  request.verb = Verb::kBuy;
  request.curve_id = curve_id;
  request.delta = delta;
  request.txn_id = txn_id != 0 ? txn_id : NextTransactionId();
  request.token = token;
  const uint64_t sent_txn = request.txn_id;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.buy.record.txn_id != sent_txn) {
    return InternalError("BUY response carries a foreign transaction id");
  }
  return std::move(response.buy);
}

StatusOr<BuyPayload> PriceClient::Replay(uint64_t txn_id) {
  Request request;
  request.verb = Verb::kReplay;
  request.txn_id = txn_id;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.buy.record.txn_id != txn_id) {
    return InternalError("REPLAY response carries a foreign transaction id");
  }
  return std::move(response.buy);
}

uint64_t PriceClient::NextTransactionId() {
  if (txn_base_ == 0) {
    // Lazy so the entropy includes the connected channel's lifetime, not
    // just construction order; uniqueness, not unpredictability, is the
    // goal (replays/retries reuse the id deliberately).
    txn_base_ = HashMix64(
        (static_cast<uint64_t>(::getpid()) << 32) ^
        static_cast<uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()) ^
        reinterpret_cast<uintptr_t>(this));
  }
  uint64_t id = HashMix64(txn_base_ ^ ++txn_seq_);
  if (id == 0) id = 1;
  return id;
}

}  // namespace mbp::net

#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "net/fault_syscalls.h"

namespace mbp::net {
namespace {

using Clock = std::chrono::steady_clock;

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Deadline sentinel when a timeout knob is 0 (disabled).
Clock::time_point NoDeadline() { return Clock::time_point::max(); }

Clock::time_point DeadlineAfterMs(int ms) {
  return ms <= 0 ? NoDeadline() : Clock::now() + std::chrono::milliseconds(ms);
}

// Remaining time as a poll() timeout: -1 for "no deadline", clamped to
// >= 0 otherwise. Poll timeouts are re-derived after every wakeup, so
// injected EINTR/short completions never extend the total wait.
int PollTimeoutMs(Clock::time_point deadline) {
  if (deadline == NoDeadline()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(std::min<int64_t>(
                                     left.count(), 60 * 1000));
}

}  // namespace

bool IsIdempotent(Verb verb) {
  switch (verb) {
    case Verb::kPriceAt:
    case Verb::kBudgetToX:
    case Verb::kSnapshotInfo:
    case Verb::kStats:
      return true;  // all read-only price queries today
  }
  return false;
}

PriceClient::PriceClient(std::string host, uint16_t port,
                         ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      budget_(options.retry.retry_budget),
      jitter_(options.retry.jitter_seed, 0x2545f4914f6cdd1dull) {}

StatusOr<std::unique_ptr<PriceClient>> PriceClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options) {
  std::unique_ptr<PriceClient> client(
      new PriceClient(host, port, options));
  const Status status =
      client->Reconnect(DeadlineAfterMs(options.connect_timeout_ms));
  if (!status.ok()) return status;
  client->telemetry_.reconnects = 0;  // the first connect is not a "re"
  return client;
}

PriceClient::~PriceClient() { CloseSocket(); }

void PriceClient::CloseSocket() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  rx_.clear();
}

Status PriceClient::WaitReady(short events, Clock::time_point deadline) {
  while (true) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = events;
    const int n = internal::FaultPoll(&pfd, 1, PollTimeoutMs(deadline));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("poll");
    }
    if (n == 0) {
      if (Clock::now() < deadline) continue;  // injected spurious timeout
      return DeadlineExceededError("deadline waiting on socket");
    }
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      return InternalError("socket entered an error state");
    }
    return Status::OK();
  }
}

Status PriceClient::Reconnect(Clock::time_point deadline) {
  CloseSocket();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  const std::string numeric = host_ == "localhost" ? "127.0.0.1" : host_;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("unparsable IPv4 host '" + host_ + "'");
  }
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return ErrnoError("socket");
  // Bounded non-blocking connect: EINPROGRESS, then poll(POLLOUT) with
  // the remaining time, then SO_ERROR for the actual outcome. A peer
  // that drops SYNs (full backlog, blackholed route) surfaces as
  // kDeadlineExceeded instead of hanging the caller for minutes of
  // kernel retransmits.
  if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      const Status status =
          ErrnoError("connect " + numeric + ":" + std::to_string(port_));
      CloseSocket();
      return status;
    }
    const Status ready = WaitReady(POLLOUT, deadline);
    if (!ready.ok()) {
      CloseSocket();
      if (ready.code() == StatusCode::kDeadlineExceeded) {
        return DeadlineExceededError(
            "connect " + numeric + ":" + std::to_string(port_) +
            " timed out");
      }
      return ready;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      errno = so_error != 0 ? so_error : errno;
      const Status status =
          ErrnoError("connect " + numeric + ":" + std::to_string(port_));
      CloseSocket();
      return status;
    }
  }
  const int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ++telemetry_.reconnects;
  return Status::OK();
}

Status PriceClient::RoundtripOnce(const Request& request,
                                  const std::string& wire,
                                  Clock::time_point deadline,
                                  Response* response,
                                  bool* transport_broken) {
  *transport_broken = false;
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        internal::FaultSend(fd_, wire.data() + sent, wire.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const Status ready = WaitReady(POLLOUT, deadline);
        if (!ready.ok()) {
          *transport_broken = true;
          return ready;
        }
        continue;
      }
      *transport_broken = true;
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  char buf[65536];
  while (true) {
    Response decoded;
    const auto consumed = DecodeResponse(
        reinterpret_cast<const uint8_t*>(rx_.data()), rx_.size(), &decoded);
    if (!consumed.ok()) {
      // Framing is lost — the stream is unusable from here on.
      *transport_broken = true;
      return consumed.status();
    }
    if (*consumed > 0) {
      rx_.erase(0, *consumed);
      // A stray frame is a response whose attempt we already abandoned
      // (the connection is closed on attempt timeout, so this only
      // happens for pipelining tests sharing the transport) — skip it.
      if (decoded.request_id != request.request_id) continue;
      if (decoded.code != StatusCode::kOk) {
        return Status(decoded.code, decoded.error_message);
      }
      *response = std::move(decoded);
      return Status::OK();
    }
    const Status ready = WaitReady(POLLIN, deadline);
    if (!ready.ok()) {
      *transport_broken = true;
      return ready;
    }
    const ssize_t n = internal::FaultRecv(fd_, buf, sizeof(buf));
    if (n == 0) {
      *transport_broken = true;
      return InternalError("server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // poll again with the remaining deadline
      }
      *transport_broken = true;
      return ErrnoError("recv");
    }
    rx_.append(buf, static_cast<size_t>(n));
  }
}

Status PriceClient::Roundtrip(Request request, Response* response) {
  request.request_id = next_request_id_++;
  std::string wire;
  EncodeRequest(request, &wire);

  const Clock::time_point overall =
      DeadlineAfterMs(options_.request_timeout_ms);
  const RetryPolicy& policy = options_.retry;
  double backoff_ms = static_cast<double>(policy.base_backoff_ms);
  Status last = InternalError("no attempt made");

  for (int attempt = 0;; ++attempt) {
    if (Clock::now() >= overall) {
      ++telemetry_.deadline_exceeded;
      return DeadlineExceededError("request deadline exceeded after " +
                                   std::to_string(attempt) + " attempts");
    }
    // Per-attempt deadline: never past the overall one.
    Clock::time_point attempt_deadline =
        DeadlineAfterMs(options_.attempt_timeout_ms);
    attempt_deadline = std::min(attempt_deadline, overall);

    bool transport_broken = false;
    if (fd_ < 0) {
      last = Reconnect(attempt_deadline);
      transport_broken = !last.ok();
    }
    if (fd_ >= 0) {
      last = RoundtripOnce(request, wire, attempt_deadline, response,
                           &transport_broken);
      if (last.ok()) {
        budget_ = std::min(policy.retry_budget,
                           budget_ + policy.budget_refund_per_success);
        return Status::OK();
      }
    }

    // Classify the failure.
    bool retryable = false;
    if (last.code() == StatusCode::kUnavailable) {
      // The server shed the request untouched (RETRY_LATER); the
      // connection itself is healthy.
      ++telemetry_.overload_responses;
      retryable = true;
    } else if (transport_broken) {
      CloseSocket();
      if (last.code() == StatusCode::kDeadlineExceeded) {
        ++telemetry_.attempt_timeouts;
      } else {
        ++telemetry_.transport_errors;
      }
      // Safe only for idempotent verbs: the abandoned attempt may have
      // executed server-side.
      retryable = IsIdempotent(request.verb);
    } else {
      return last;  // application-level answer, not a fault
    }

    if (!retryable) return last;
    if (attempt + 1 >= policy.max_attempts || budget_ < 1.0) {
      ++telemetry_.retries_exhausted;
      return last;
    }
    budget_ -= 1.0;
    ++telemetry_.retries_attempted;

    // Decorrelated jitter: sleep ~ U[base, 3 * previous], capped —
    // retries from a fleet of clients spread out instead of thundering
    // back in lockstep.
    backoff_ms = std::min(
        static_cast<double>(policy.max_backoff_ms),
        jitter_.NextDouble(static_cast<double>(policy.base_backoff_ms),
                           std::max(static_cast<double>(policy.base_backoff_ms),
                                    backoff_ms * 3.0)));
    if (overall != NoDeadline()) {
      const double remaining_ms =
          std::chrono::duration<double, std::milli>(overall - Clock::now())
              .count();
      if (remaining_ms <= 0.0) {
        ++telemetry_.deadline_exceeded;
        return DeadlineExceededError("request deadline exceeded in backoff");
      }
      backoff_ms = std::min(backoff_ms, remaining_ms);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

StatusOr<double> PriceClient::PriceAt(const std::string& curve_id, double x) {
  Request request;
  request.verb = Verb::kPriceAt;
  request.curve_id = curve_id;
  request.args = {x};
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != 1) {
    return InternalError("PRICE_AT response carries " +
                         std::to_string(response.values.size()) + " values");
  }
  return response.values[0];
}

StatusOr<std::vector<double>> PriceClient::PriceBatch(
    const std::string& curve_id, const std::vector<double>& xs) {
  Request request;
  request.verb = Verb::kPriceAt;
  request.curve_id = curve_id;
  request.args = xs;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != xs.size()) {
    return InternalError("PRICE_AT batch of " + std::to_string(xs.size()) +
                         " answered with " +
                         std::to_string(response.values.size()) + " values");
  }
  return std::move(response.values);
}

StatusOr<double> PriceClient::BudgetToX(const std::string& curve_id,
                                        double budget) {
  Request request;
  request.verb = Verb::kBudgetToX;
  request.curve_id = curve_id;
  request.args = {budget};
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != 1) {
    return InternalError("BUDGET_TO_X response carries " +
                         std::to_string(response.values.size()) + " values");
  }
  return response.values[0];
}

StatusOr<SnapshotInfoPayload> PriceClient::SnapshotInfo(
    const std::string& curve_id) {
  Request request;
  request.verb = Verb::kSnapshotInfo;
  request.curve_id = curve_id;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  return response.info;
}

StatusOr<StatsPayload> PriceClient::Stats() {
  Request request;
  request.verb = Verb::kStats;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  return response.stats;
}

}  // namespace mbp::net

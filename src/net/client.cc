#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mbp::net {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<PriceClient>> PriceClient::Connect(
    const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("unparsable IPv4 host '" + host + "'");
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoError("socket");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        ErrnoError("connect " + numeric + ":" + std::to_string(port));
    close(fd);
    return status;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<PriceClient>(new PriceClient(fd));
}

PriceClient::~PriceClient() {
  if (fd_ >= 0) close(fd_);
}

Status PriceClient::Roundtrip(Request request, Response* response) {
  request.request_id = next_request_id_++;
  std::string wire;
  EncodeRequest(request, &wire);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  char buf[65536];
  while (true) {
    Response decoded;
    const auto consumed = DecodeResponse(
        reinterpret_cast<const uint8_t*>(rx_.data()), rx_.size(), &decoded);
    MBP_RETURN_IF_ERROR(consumed.status());
    if (*consumed > 0) {
      rx_.erase(0, *consumed);
      // With one outstanding request per client every frame matches, but
      // tolerate strays so pipelining tests can share the transport.
      if (decoded.request_id != request.request_id) continue;
      if (decoded.code != StatusCode::kOk) {
        return Status(decoded.code, decoded.error_message);
      }
      *response = std::move(decoded);
      return Status::OK();
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return InternalError("server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("recv");
    }
    rx_.append(buf, static_cast<size_t>(n));
  }
}

StatusOr<double> PriceClient::PriceAt(const std::string& curve_id, double x) {
  Request request;
  request.verb = Verb::kPriceAt;
  request.curve_id = curve_id;
  request.args = {x};
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != 1) {
    return InternalError("PRICE_AT response carries " +
                         std::to_string(response.values.size()) + " values");
  }
  return response.values[0];
}

StatusOr<std::vector<double>> PriceClient::PriceBatch(
    const std::string& curve_id, const std::vector<double>& xs) {
  Request request;
  request.verb = Verb::kPriceAt;
  request.curve_id = curve_id;
  request.args = xs;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != xs.size()) {
    return InternalError("PRICE_AT batch of " + std::to_string(xs.size()) +
                         " answered with " +
                         std::to_string(response.values.size()) + " values");
  }
  return std::move(response.values);
}

StatusOr<double> PriceClient::BudgetToX(const std::string& curve_id,
                                        double budget) {
  Request request;
  request.verb = Verb::kBudgetToX;
  request.curve_id = curve_id;
  request.args = {budget};
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  if (response.values.size() != 1) {
    return InternalError("BUDGET_TO_X response carries " +
                         std::to_string(response.values.size()) + " values");
  }
  return response.values[0];
}

StatusOr<SnapshotInfoPayload> PriceClient::SnapshotInfo(
    const std::string& curve_id) {
  Request request;
  request.verb = Verb::kSnapshotInfo;
  request.curve_id = curve_id;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  return response.info;
}

StatusOr<StatsPayload> PriceClient::Stats() {
  Request request;
  request.verb = Verb::kStats;
  Response response;
  MBP_RETURN_IF_ERROR(Roundtrip(std::move(request), &response));
  return response.stats;
}

}  // namespace mbp::net

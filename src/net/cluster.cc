#include "net/cluster.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/sharded_cache.h"

namespace mbp::net {
namespace {

// FNV-1a-64 for ring points and routing keys. 64-bit (unlike the wire
// checksum's 32) because ring points must be collision-sparse across
// num_nodes * vnodes entries.
uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Ring positions need uniform HIGH bits (the ring is ordered by the full
// hash), but FNV's trailing bytes only propagate up to bit ~48 — the
// prime is ~2^40 — so keys sharing a long prefix ("curve-000001xx",
// "shard-3#v") cluster into one arc and routing degenerates. A
// murmur-style finalizer restores full-width avalanche. Part of the ring
// protocol: every process of a fleet computes this same function.
uint64_t RingHash(std::string_view bytes) {
  uint64_t h = Fnv1a64(bytes);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

StatusOr<std::vector<Endpoint>> ParseEndpoints(std::string_view csv) {
  std::vector<Endpoint> endpoints;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string_view item = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      return InvalidArgumentError("empty endpoint in list '" +
                                  std::string(csv) + "'");
    }
    // Shared-memory endpoints carry the whole URI as the host; port 0
    // marks them (PriceClient ignores it for shm://).
    if (item.rfind("shm://", 0) == 0) {
      if (item.size() == 6) {
        return InvalidArgumentError("empty path in shm endpoint '" +
                                    std::string(item) + "'");
      }
      Endpoint ep;
      ep.host = std::string(item);
      ep.port = 0;
      for (const Endpoint& other : endpoints) {
        if (other.host == ep.host) {
          return InvalidArgumentError("duplicate endpoint '" +
                                      std::string(item) + "'");
        }
      }
      endpoints.push_back(std::move(ep));
      if (comma == csv.size()) break;
      continue;
    }
    const size_t colon = item.rfind(':');
    if (colon == std::string_view::npos) {
      return InvalidArgumentError("endpoint '" + std::string(item) +
                                  "' is not host:port");
    }
    Endpoint ep;
    ep.host = colon == 0 ? "127.0.0.1" : std::string(item.substr(0, colon));
    const std::string_view port_str = item.substr(colon + 1);
    uint32_t port = 0;
    if (port_str.empty() || port_str.size() > 5) {
      return InvalidArgumentError("bad port in endpoint '" +
                                  std::string(item) + "'");
    }
    for (const char c : port_str) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("bad port in endpoint '" +
                                    std::string(item) + "'");
      }
      port = port * 10 + static_cast<uint32_t>(c - '0');
    }
    if (port == 0 || port > 65535) {
      return InvalidArgumentError("port out of range in endpoint '" +
                                  std::string(item) + "'");
    }
    ep.port = static_cast<uint16_t>(port);
    for (const Endpoint& other : endpoints) {
      if (other.host == ep.host && other.port == ep.port) {
        return InvalidArgumentError("duplicate endpoint '" +
                                    std::string(item) + "'");
      }
    }
    endpoints.push_back(std::move(ep));
    if (comma == csv.size()) break;
  }
  if (endpoints.empty()) return InvalidArgumentError("empty endpoint list");
  return endpoints;
}

std::string EndpointLabel(const Endpoint& endpoint) {
  if (endpoint.host.rfind("shm://", 0) == 0) return endpoint.host;
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

HashRing::HashRing(const std::vector<std::string>& node_labels,
                   size_t vnodes)
    : num_nodes_(node_labels.size()) {
  MBP_CHECK_GE(num_nodes_, size_t{1});
  MBP_CHECK_GE(vnodes, size_t{1});
  ring_.reserve(num_nodes_ * vnodes);
  for (size_t node = 0; node < num_nodes_; ++node) {
    for (size_t v = 0; v < vnodes; ++v) {
      const std::string point_label =
          node_labels[node] + "#" + std::to_string(v);
      ring_.push_back(Point{RingHash(point_label),
                            static_cast<uint32_t>(node)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Tie-break on node index so equal hashes (astronomically rare but
    // possible) still sort identically on every process.
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

size_t HashRing::Route(std::string_view key, size_t attempt) const {
  MBP_CHECK_LT(attempt, num_nodes_);
  const uint64_t h = RingHash(key);
  // First ring point clockwise from (>=) the key's hash, wrapping.
  size_t start = std::lower_bound(ring_.begin(), ring_.end(), h,
                                  [](const Point& p, uint64_t v) {
                                    return p.hash < v;
                                  }) -
                 ring_.begin();
  if (start == ring_.size()) start = 0;
  // Walk clockwise collecting distinct nodes until the attempt-th one.
  // Bounded scratch: attempt < num_nodes <= seen capacity via the walk
  // revisiting at most the whole ring once.
  uint32_t seen[64];
  size_t num_seen = 0;
  MBP_CHECK_LE(num_nodes_, sizeof(seen) / sizeof(seen[0]));
  for (size_t step = 0; step < ring_.size(); ++step) {
    const uint32_t node = ring_[(start + step) % ring_.size()].node;
    bool is_new = true;
    for (size_t i = 0; i < num_seen; ++i) {
      if (seen[i] == node) {
        is_new = false;
        break;
      }
    }
    if (!is_new) continue;
    if (num_seen == attempt) return node;
    seen[num_seen++] = node;
  }
  // Unreachable: the ring contains every node.
  MBP_CHECK(false);
  return 0;
}

bool HashRing::Owns(std::string_view key, size_t node,
                    size_t replicas) const {
  const size_t r = std::min(replicas, num_nodes_);
  for (size_t attempt = 0; attempt < r; ++attempt) {
    if (Route(key, attempt) == node) return true;
  }
  return false;
}

StatusOr<std::unique_ptr<ClusterPriceClient>> ClusterPriceClient::Create(
    std::vector<Endpoint> endpoints, ClusterClientOptions options) {
  if (endpoints.empty()) {
    return InvalidArgumentError("cluster client needs at least one endpoint");
  }
  if (endpoints.size() > 64) {
    return InvalidArgumentError("cluster client supports at most 64 endpoints");
  }
  std::vector<std::string> labels = options.node_labels;
  if (labels.empty()) {
    labels.reserve(endpoints.size());
    for (const Endpoint& ep : endpoints) labels.push_back(EndpointLabel(ep));
  } else if (labels.size() != endpoints.size()) {
    return InvalidArgumentError(
        "node_labels must match endpoints one-to-one");
  }
  HashRing ring(labels, options.vnodes == 0 ? 64 : options.vnodes);
  return std::unique_ptr<ClusterPriceClient>(new ClusterPriceClient(
      std::move(endpoints), std::move(options), std::move(ring)));
}

ClusterPriceClient::ClusterPriceClient(std::vector<Endpoint> endpoints,
                                       ClusterClientOptions options,
                                       HashRing ring)
    : endpoints_(std::move(endpoints)),
      options_(std::move(options)),
      ring_(std::move(ring)),
      clients_(endpoints_.size()),
      cooldown_until_(endpoints_.size(), Clock::time_point::min()) {}

size_t ClusterPriceClient::RouteOf(std::string_view curve_id) const {
  return ring_.Route(curve_id.empty()
                         ? std::string_view(options_.default_curve_id)
                         : curve_id,
                     0);
}

bool ClusterPriceClient::Cooling(size_t endpoint) const {
  return Clock::now() < cooldown_until_[endpoint];
}

void ClusterPriceClient::CoolDown(size_t endpoint) {
  cooldown_until_[endpoint] =
      Clock::now() + std::chrono::milliseconds(options_.cooldown_ms);
}

StatusOr<PriceClient*> ClusterPriceClient::ClientFor(size_t endpoint) {
  if (clients_[endpoint] == nullptr) {
    MBP_ASSIGN_OR_RETURN(clients_[endpoint],
                         PriceClient::Connect(endpoints_[endpoint].host,
                                              endpoints_[endpoint].port,
                                              options_.client));
  }
  return clients_[endpoint].get();
}

namespace {

// A failure class that says "try another endpoint": the transport or the
// endpoint itself is unhealthy. Application answers pass through.
bool IsFailoverError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

template <typename Result, typename Invoke>
StatusOr<Result> ClusterPriceClient::WithFailover(std::string_view curve_id,
                                                  const Invoke& invoke) {
  const std::string_view key =
      curve_id.empty() ? std::string_view(options_.default_curve_id)
                       : curve_id;
  const size_t attempts =
      options_.max_endpoint_attempts == 0
          ? endpoints_.size()
          : std::min(options_.max_endpoint_attempts, endpoints_.size());
  Status last = UnavailableError("no endpoint attempts made");
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    const size_t endpoint = ring_.Route(key, attempt);
    // Skip a cooling endpoint only while a later candidate remains: the
    // last candidate is always tried, so a fully-cooling fleet degrades
    // to "try the owner anyway" instead of failing without a packet.
    if (Cooling(endpoint) && attempt + 1 < attempts) {
      ++telemetry_.cooldown_skips;
      continue;
    }
    if (attempt > 0) ++telemetry_.failovers;
    auto client = ClientFor(endpoint);
    if (!client.ok()) {
      ++telemetry_.endpoint_errors;
      CoolDown(endpoint);
      last = client.status();
      continue;
    }
    StatusOr<Result> result = invoke(*client);
    if (result.ok()) return result;
    if (!IsFailoverError(result.status())) return result;
    // The endpoint's own retry ladder already ran inside PriceClient;
    // a surviving failover-class error means the endpoint is unhealthy.
    // Drop the cached client: its socket may be wedged, and the next
    // attempt against this endpoint should start from a clean connect.
    ++telemetry_.endpoint_errors;
    CoolDown(endpoint);
    clients_[endpoint] = nullptr;
    last = result.status();
  }
  return last;
}

StatusOr<double> ClusterPriceClient::PriceAt(const std::string& curve_id,
                                             double x) {
  return WithFailover<double>(curve_id, [&](PriceClient* client) {
    return client->PriceAt(curve_id, x);
  });
}

StatusOr<std::vector<double>> ClusterPriceClient::PriceBatch(
    const std::string& curve_id, const std::vector<double>& xs) {
  return WithFailover<std::vector<double>>(
      curve_id,
      [&](PriceClient* client) { return client->PriceBatch(curve_id, xs); });
}

StatusOr<double> ClusterPriceClient::BudgetToX(const std::string& curve_id,
                                               double budget) {
  return WithFailover<double>(curve_id, [&](PriceClient* client) {
    return client->BudgetToX(curve_id, budget);
  });
}

StatusOr<SnapshotInfoPayload> ClusterPriceClient::SnapshotInfo(
    const std::string& curve_id) {
  return WithFailover<SnapshotInfoPayload>(
      curve_id,
      [&](PriceClient* client) { return client->SnapshotInfo(curve_id); });
}

StatusOr<StatsPayload> ClusterPriceClient::Stats(size_t endpoint) {
  if (endpoint >= endpoints_.size()) {
    return InvalidArgumentError("endpoint index out of range");
  }
  MBP_ASSIGN_OR_RETURN(PriceClient * client, ClientFor(endpoint));
  return client->Stats();
}

StatusOr<QuotePayload> ClusterPriceClient::Quote(const std::string& curve_id,
                                                 double delta) {
  return WithFailover<QuotePayload>(curve_id, [&](PriceClient* client) {
    return client->Quote(curve_id, delta);
  });
}

StatusOr<BuyPayload> ClusterPriceClient::Buy(const std::string& curve_id,
                                             double delta, uint64_t txn_id,
                                             const std::string& token) {
  // Pin the id before the ladder: a failover attempt must present the
  // SAME transaction id so each endpoint's ledger can dedupe it.
  const uint64_t txn = txn_id == 0 ? NextTransactionId() : txn_id;
  return WithFailover<BuyPayload>(curve_id, [&](PriceClient* client) {
    return client->Buy(curve_id, delta, txn, token);
  });
}

StatusOr<BuyPayload> ClusterPriceClient::Replay(const std::string& curve_id,
                                                uint64_t txn_id) {
  return WithFailover<BuyPayload>(curve_id, [&](PriceClient* client) {
    return client->Replay(txn_id);
  });
}

uint64_t ClusterPriceClient::NextTransactionId() {
  if (txn_base_ == 0) {
    const uint64_t now = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    txn_base_ =
        HashMix64((static_cast<uint64_t>(getpid()) << 32) ^ now ^
                  reinterpret_cast<uintptr_t>(this));
  }
  const uint64_t id = HashMix64(txn_base_ ^ ++txn_seq_);
  return id == 0 ? 1 : id;
}

}  // namespace mbp::net

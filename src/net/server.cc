#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/arena.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "net/fault_syscalls.h"

namespace mbp::net {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Error-frame skeleton for the view-based decode path (the Response
// carries a std::string message — errors are off the zero-allocation
// contract by design; steady state is the OK path).
Response ErrorResponseFor(const RequestView& request, const Status& status) {
  Response response;
  response.verb = request.verb;
  response.request_id = request.request_id;
  response.code = status.ok() ? StatusCode::kInternal : status.code();
  response.error_message = status.message();
  return response;
}

// Floor/ceiling on the single sized recv each readiness event issues:
// at least one page-multiple chunk even when FIONREAD reports nothing
// (spurious wakeup), at most one max frame's worth so a firehose peer
// cannot make one connection monopolize the pass or balloon the arena.
constexpr size_t kMinReadBytes = 64 * 1024;
constexpr size_t kMaxReadBytes = kMaxFrameBytes;

// iovec fan-in per writev call; longer response trains loop.
constexpr int kMaxIov = 64;

}  // namespace

// Per-connection state. A connection lives on exactly one shard thread;
// nothing here is shared.
//
// Buffer roles on the allocation-free request path (DESIGN.md §5f):
//  - `carry` persists the one incomplete frame tail between passes
//    (bounded by kMaxFrameBytes). Its std::string capacity warms up once
//    and is then reused — assign() never shrinks.
//  - `arena` owns this pass's encoded response frames; `frames` (itself
//    arena-backed) records one iovec per frame for the scatter-gather
//    flush. Both reset every pass in FinishPass, after unsent bytes are
//    migrated out.
//  - `out` is the fallback queue: bytes a blocked socket would not take,
//    copied out of the arena at pass end so they survive the reset.
//    Always OLDER than arena frames, so flushes send `out` first.
struct PriceServer::Connection {
  int fd = -1;
  std::string carry;
  std::string out;
  size_t out_offset = 0;
  Arena arena;
  ArenaVector<iovec> frames{&arena};
  size_t next_frame = 0;     // frames[0..next_frame) fully sent
  size_t frame_offset = 0;   // bytes of frames[next_frame] already sent
  size_t frames_unsent = 0;  // total unsent arena-resident bytes
  uint32_t armed = EPOLLIN;  // events currently registered with epoll
  bool paused = false;       // reading stopped by write backpressure
  bool touched = false;      // has responses appended this loop pass
  bool dead = false;         // closed; destroyed at the end-of-pass sweep

  size_t pending_out() const {
    return (out.size() - out_offset) + frames_unsent;
  }

  // The fd is closed here, NOT in CloseConnection: a dead connection
  // stays in the shard map until the end-of-pass sweep, and closing the
  // fd early would free its number for accept4 to hand out again within
  // the same pass — the new connection would then collide with the dead
  // map entry and be stranded (open, epoll-registered, unowned), spinning
  // the level-triggered loop forever.
  ~Connection() {
    if (fd >= 0) close(fd);
  }
};

// One event-loop shard: an epoll instance, a private connection table,
// a pass-scoped scratch arena, and the micro-batch under construction
// during the current loop pass.
struct PriceServer::Shard {
  size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;

  // Pass-scoped staging: recv buffers, decoded request args, batch
  // queries/outputs. Reset once at the end of every loop pass; after
  // warm-up it is one resident block and the pass makes zero heap
  // allocations.
  Arena scratch;

  // PRICE_AT queries decoded this pass, coalesced per curve slot; one
  // PriceQueryEngine::PriceBatch call serves each group (so every query
  // in the group is answered from ONE snapshot). The per-curve groups
  // live in `scratch` and are found through an open-addressed pointer-
  // keyed map that also lives in `scratch` (PR 6 used a linear scan,
  // which was O(K) per request once a zipf-spread pass touches hundreds
  // of distinct curves). `batches` keeps insertion order so the flush —
  // and therefore response order — stays deterministic regardless of
  // where slots hash.
  struct PendingPrice {
    Connection* conn;
    uint64_t request_id;
    size_t offset;  // into CurveBatch::xs
    size_t count;
    Clock::time_point start;
  };
  struct CurveBatch {
    const serving::CatalogRegistry::CurveSlot* slot;
    ArenaVector<double> xs;
    ArenaVector<PendingPrice> pending;
  };
  std::vector<CurveBatch*> batches;  // entries arena-owned; cleared per pass
  // Pass-scoped slot -> CurveBatch map: power-of-two array of pointers in
  // `scratch`, linear probing, null = empty. Rebuilt lazily per pass;
  // `batch_map_capacity` persists across passes at 4x the peak distinct-
  // curve count seen, so steady state allocates once per pass from the
  // arena and never rehashes mid-pass.
  CurveBatch** batch_map = nullptr;
  size_t batch_map_capacity = 64;  // persists; grows on rehash
  std::vector<Connection*> touched;

  // The pass batch for `slot`, creating it (O(1) amortized) on first
  // sight. The map and every batch live in `scratch`: allocated lazily on
  // the first PRICE_AT of a pass, forgotten at FlushPriceBatches,
  // reclaimed by the pass-end scratch.Reset(). Steady state is one arena
  // allocation per pass and zero mid-pass rehashes.
  CurveBatch* FindOrAddBatch(const serving::CatalogRegistry::CurveSlot* slot) {
    if (batch_map == nullptr) {
      batch_map = scratch.AllocateArray<CurveBatch*>(batch_map_capacity);
      std::memset(batch_map, 0, batch_map_capacity * sizeof(CurveBatch*));
    }
    const size_t mask = batch_map_capacity - 1;
    size_t i = HashMix64(reinterpret_cast<uintptr_t>(slot)) & mask;
    while (true) {
      CurveBatch* b = batch_map[i];
      if (b == nullptr) break;
      if (b->slot == slot) return b;
      i = (i + 1) & mask;
    }
    void* raw = scratch.Allocate(sizeof(CurveBatch), alignof(CurveBatch));
    auto* batch = new (raw)
        CurveBatch{slot, ArenaVector<double>(&scratch),
                   ArenaVector<PendingPrice>(&scratch)};
    batches.push_back(batch);
    batch_map[i] = batch;
    if (batches.size() * 4 > batch_map_capacity) {
      // Rehash into a doubled arena table; the old table is just arena
      // bytes and dies with the pass. Insertion order (and thus flush
      // and response order) is carried by `batches`, not the table.
      batch_map_capacity *= 2;
      auto** fresh = scratch.AllocateArray<CurveBatch*>(batch_map_capacity);
      std::memset(fresh, 0, batch_map_capacity * sizeof(CurveBatch*));
      const size_t fresh_mask = batch_map_capacity - 1;
      for (CurveBatch* b : batches) {
        size_t j =
            HashMix64(reinterpret_cast<uintptr_t>(b->slot)) & fresh_mask;
        while (fresh[j] != nullptr) j = (j + 1) & fresh_mask;
        fresh[j] = b;
      }
      batch_map = fresh;
    }
    return batch;
  }
};

PriceServer::PriceServer(const serving::PriceQueryEngine* engine,
                         ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  MBP_CHECK(engine_ != nullptr);
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_write_queue_bytes == 0) {
    options_.max_write_queue_bytes = 1 << 20;
  }
}

StatusOr<std::unique_ptr<PriceServer>> PriceServer::Start(
    const serving::PriceQueryEngine* engine, ServerOptions options) {
  std::unique_ptr<PriceServer> server(
      new PriceServer(engine, std::move(options)));
  MBP_RETURN_IF_ERROR(server->Listen());
  for (size_t s = 0; s < server->options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (shard->epoll_fd < 0) return ErrnoError("epoll_create1");
    shard->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->wake_fd < 0) return ErrnoError("eventfd");
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.fd = shard->wake_fd;
    if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &wake) <
        0) {
      return ErrnoError("epoll_ctl(wake)");
    }
    // EPOLLEXCLUSIVE: each shard registers the one listening socket and
    // the kernel wakes a single shard per pending accept, spreading
    // connections without a dedicated acceptor thread.
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = server->listen_fd_;
    if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, server->listen_fd_, &ev) <
        0) {
      return ErrnoError("epoll_ctl(listen)");
    }
    server->shards_.push_back(std::move(shard));
  }
  for (auto& shard : server->shards_) {
    shard->thread =
        std::thread([srv = server.get(), s = shard.get()] { srv->ShardLoop(s); });
  }
  return server;
}

PriceServer::~PriceServer() { Shutdown(); }

Status PriceServer::Listen() {
  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoError("socket");
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoError("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (listen(listen_fd_, SOMAXCONN) < 0) return ErrnoError("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoError("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void PriceServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    const uint64_t one = 1;
    (void)!write(shard->wake_fd, &one, sizeof(one));
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards_) {
    if (shard->epoll_fd >= 0) close(shard->epoll_fd);
    if (shard->wake_fd >= 0) close(shard->wake_fd);
    shard->epoll_fd = shard->wake_fd = -1;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

StatsPayload PriceServer::stats() const {
  StatsPayload s;
  s.connections_accepted = metrics_.connections_accepted.Value();
  s.connections_active = active_connections_.load(std::memory_order_relaxed);
  s.requests_ok = metrics_.requests_ok.Value();
  s.requests_error = metrics_.requests_error.Value();
  s.protocol_errors = metrics_.protocol_errors.Value();
  s.queries = metrics_.queries.Value();
  s.batches = metrics_.batches.Value();
  s.connections_refused = metrics_.connections_refused.Value();
  s.requests_shed = metrics_.requests_shed.Value();
  s.deadline_drops = metrics_.deadline_drops.Value();
  s.connections_killed = metrics_.connections_killed.Value();
  s.write_queue_peak_bytes = metrics_.write_queue_peak_bytes.Value();
  s.catalog_listings = engine_->registry().resident_listings();
  s.catalog_bytes = engine_->registry().resident_bytes();
  s.latency = metrics_.request_latency.Snapshot();
  s.write_queue_bytes = metrics_.write_queue_bytes.Snapshot();
  // Injector state is process-global: a chaos client reads back what the
  // server-side schedule actually did without sharing an address space.
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  s.faults_injected = injector.TotalFires();
  for (const fault::PointStats& p : injector.Stats()) {
    s.faults.push_back(FaultCount{p.point, p.fires});
  }
  return s;
}

StatusOr<const serving::CatalogRegistry::CurveSlot*>
PriceServer::ResolveCurve(std::string_view curve_id) const {
  const std::string_view id =
      curve_id.empty() ? std::string_view(options_.default_curve_id)
                       : curve_id;
  // Heterogeneous registry lookup: `id` is a view into the wire buffer
  // and never materializes a std::string on the hot path.
  const serving::CatalogRegistry::CurveSlot* slot =
      engine_->registry().Find(id);
  if (slot == nullptr) {
    return NotFoundError("curve '" + std::string(id) +
                         "' is not being served");
  }
  return slot;
}

void PriceServer::ShardLoop(Shard* shard) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        internal::FaultEpollWait(shard->epoll_fd, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady(shard);
        continue;
      }
      if (fd == shard->wake_fd) {
        uint64_t drained = 0;
        (void)!read(shard->wake_fd, &drained, sizeof(drained));
        continue;
      }
      const auto it = shard->conns.find(fd);
      if (it == shard->conns.end()) {
        // Not a connection this shard owns — deregister so a stale
        // level-triggered readiness cannot spin the loop.
        (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
        continue;
      }
      Connection* conn = it->second.get();
      if (conn->dead) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(shard, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) ReadReady(shard, conn);
      if (!conn->dead && (events[i].events & EPOLLOUT)) {
        FlushWrites(shard, conn);
        if (!conn->dead) UpdateEpollInterest(shard, conn);
      }
    }
    FlushPriceBatches(shard);
    // One writev per connection that gained responses this pass, instead
    // of one send() per response; FinishPass then migrates whatever the
    // socket would not take and resets the connection arena.
    for (Connection* conn : shard->touched) {
      conn->touched = false;
      if (conn->dead) continue;
      FinishPass(shard, conn);
    }
    shard->touched.clear();
    // Every pass-scoped staging allocation (recv buffers, decoded args,
    // batch queries and outputs) dies here, in one bump-pointer rewind.
    shard->scratch.Reset();
    // Destroy connections closed during this pass (deferred so that
    // micro-batch entries never dangle).
    for (auto it = shard->conns.begin(); it != shard->conns.end();) {
      it = it->second->dead ? shard->conns.erase(it) : std::next(it);
    }
  }
  DrainShard(shard);
}

void PriceServer::AcceptReady(Shard* shard) {
  while (true) {
    const int fd = internal::FaultAccept4(listen_fd_, nullptr, nullptr,
                                          SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or a transient accept error
    }
    if (stopping_.load(std::memory_order_acquire) ||
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections ||
        MBP_FAULT_POINT("net.server.conn_alloc")) {
      metrics_.connections_refused.Increment();
      close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections_accepted.Increment();
    const int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    shard->conns.emplace(fd, std::move(conn));
  }
}

void PriceServer::ReadReady(Shard* shard, Connection* conn) {
  // One sized recv per readiness event: FIONREAD tells us how much the
  // kernel has buffered, and a single recv drains it into pass-scoped
  // arena memory (clamped to [kMinReadBytes, kMaxReadBytes]; a clamped
  // remainder re-fires the level-triggered epoll next pass). The old
  // recv-until-EAGAIN loop paid one extra syscall per event just to see
  // the EAGAIN; this path never issues a recv it expects to fail.
  int queued = 0;
  if (ioctl(conn->fd, FIONREAD, &queued) < 0 || queued < 0) queued = 0;
  const size_t want = std::clamp(static_cast<size_t>(queued),
                                 kMinReadBytes, kMaxReadBytes);
  // Contiguous parse view: the carried partial tail from the previous
  // pass, then the fresh bytes.
  const size_t carried = conn->carry.size();
  uint8_t* buf = shard->scratch.AllocateArray<uint8_t>(carried + want);
  std::memcpy(buf, conn->carry.data(), carried);
  ssize_t n;
  do {
    n = internal::FaultRecv(conn->fd, buf + carried, want);
  } while (n < 0 && errno == EINTR);
  if (n == 0) {  // orderly peer close
    CloseConnection(shard, conn);
    return;
  }
  if (n < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      CloseConnection(shard, conn);
    }
    return;
  }
  const size_t total = carried + static_cast<size_t>(n);
  // Consume every complete frame now, so only an incomplete tail is
  // carried across passes (a paused or idle socket cannot strand a
  // buffered request). Decoding is zero-copy: curve ids stay views into
  // `buf`, args land in the scratch arena.
  size_t offset = 0;
  while (!conn->dead) {
    RequestView request;
    const auto consumed = DecodeRequestView(buf + offset, total - offset,
                                            &request, &shard->scratch);
    if (!consumed.ok()) {
      metrics_.protocol_errors.Increment();
      CloseConnection(shard, conn);
      return;
    }
    if (*consumed == 0) break;
    offset += *consumed;
    HandleRequest(shard, conn, request);
  }
  if (conn->dead) return;
  conn->carry.assign(reinterpret_cast<const char*>(buf) + offset,
                     total - offset);
  // Backpressure: responses already queued on this connection exceed
  // the cap — stop reading (UpdateEpollInterest drops EPOLLIN) until
  // the peer drains them.
  UpdateEpollInterest(shard, conn);
}

// Degradation rungs 2 and 3: shed query verbs with a fast OVERLOADED
// answer instead of doing engine work the client will retry anyway.
// SNAPSHOT_INFO and STATS pass through — they are cheap and the overload
// must stay observable.
bool PriceServer::ShouldShed(const Connection* conn, Verb verb) const {
  if (verb != Verb::kPriceAt && verb != Verb::kBudgetToX) return false;
  if (options_.shed_connections > 0 &&
      active_connections_.load(std::memory_order_relaxed) >
          options_.shed_connections) {
    return true;
  }
  const size_t shed_bytes = options_.shed_write_queue_bytes > 0
                                ? options_.shed_write_queue_bytes
                                : options_.max_write_queue_bytes;
  return conn->pending_out() > shed_bytes;
}

void PriceServer::HandleRequest(Shard* shard, Connection* conn,
                                const RequestView& request) {
  const Clock::time_point start = Clock::now();
  if (ShouldShed(conn, request.verb)) {
    metrics_.requests_shed.Increment();
    EnqueueResponse(
        shard, conn,
        ErrorResponseFor(request,
                         UnavailableError("server overloaded; retry later")));
    return;
  }
  if (request.verb == Verb::kStats) {
    Response response;
    response.verb = Verb::kStats;
    response.request_id = request.request_id;
    response.stats = stats();
    metrics_.requests_ok.Increment();
    metrics_.request_latency.Record(MicrosSince(start));
    EnqueueResponse(shard, conn, response);
    return;
  }
  const auto slot = ResolveCurve(request.curve_id);
  if (!slot.ok()) {
    metrics_.requests_error.Increment();
    metrics_.request_latency.Record(MicrosSince(start));
    EnqueueResponse(shard, conn, ErrorResponseFor(request, slot.status()));
    return;
  }
  // LRU feed for catalog eviction: stamp the slot with this request's
  // start time (one relaxed store; same steady-clock micros time base as
  // CatalogRegistry::EvictIdle).
  (*slot)->Touch(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          start.time_since_epoch())
          .count()));
  switch (request.verb) {
    case Verb::kPriceAt: {
      // Deferred: coalesced with every other PRICE_AT of this loop pass
      // into one PriceBatch per curve (FlushPriceBatches). The per-curve
      // group is found through the pass-scoped open-addressed map and
      // grown in the scratch arena — O(1) per request however many
      // distinct curves the pass spans (DESIGN.md §5g).
      Shard::CurveBatch* batch = shard->FindOrAddBatch(*slot);
      batch->pending.push_back(Shard::PendingPrice{
          conn, request.request_id, batch->xs.size(), request.num_args,
          start});
      for (size_t i = 0; i < request.num_args; ++i) {
        batch->xs.push_back(request.args[i]);
      }
      return;
    }
    case Verb::kBudgetToX: {
      // Answered inline, staged through scratch doubles so the success
      // path frames straight from a raw array (no Response, no vector).
      double* xs = shard->scratch.AllocateArray<double>(request.num_args);
      for (size_t i = 0; i < request.num_args; ++i) {
        const auto x = engine_->BudgetToInverseNcp(*slot, request.args[i]);
        if (!x.ok()) {
          metrics_.requests_error.Increment();
          metrics_.request_latency.Record(MicrosSince(start));
          EnqueueResponse(shard, conn,
                          ErrorResponseFor(request, x.status()));
          return;
        }
        xs[i] = *x;
      }
      metrics_.requests_ok.Increment();
      metrics_.queries.Increment(request.num_args);
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueValues(shard, conn, Verb::kBudgetToX, request.request_id, xs,
                    request.num_args);
      return;
    }
    case Verb::kSnapshotInfo: {
      const auto snapshot = (*slot)->Load();
      if (snapshot == nullptr) {
        metrics_.requests_error.Increment();
        EnqueueResponse(
            shard, conn,
            ErrorResponseFor(request, NotFoundError("curve was withdrawn")));
        return;
      }
      Response response;
      response.verb = Verb::kSnapshotInfo;
      response.request_id = request.request_id;
      response.info.version = snapshot->version();
      response.info.stamp = (*slot)->stamp();
      response.info.num_knots = snapshot->num_knots();
      response.info.x_max = snapshot->x_max();
      response.info.max_price = snapshot->max_price();
      metrics_.requests_ok.Increment();
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueResponse(shard, conn, response);
      return;
    }
    case Verb::kStats:
      return;  // handled above
  }
}

void PriceServer::FlushPriceBatches(Shard* shard) {
  for (Shard::CurveBatch* batch : shard->batches) {
    if (batch->xs.empty()) continue;
    // Chaos lever: an injected stall here ages the pending entries past
    // request_deadline_ms, exercising the deadline-drop path on demand.
    (void)MBP_FAULT_DELAY("net.server.batch.delay");
    double* prices = shard->scratch.AllocateArray<double>(batch->xs.size());
    // The whole micro-batch is served from ONE snapshot load inside
    // PriceBatch — consistent across every coalesced request even if a
    // republish lands mid-batch. Pool dispatch only once the batch is
    // worth it; small batches run inline on the shard thread.
    ParallelConfig parallel;
    parallel.num_threads =
        batch->xs.size() >= options_.min_pool_batch ? options_.batch_threads
                                                    : 1;
    const Status status = engine_->PriceBatch(
        batch->slot, batch->xs.data(), prices, batch->xs.size(), parallel);
    metrics_.batches.Increment();
    for (const Shard::PendingPrice& p : batch->pending) {
      if (p.conn->dead) continue;
      // Deadline-aware drop: a request that sat in the queue past its
      // deadline gets a fast kDeadlineExceeded — the client has already
      // timed the attempt out, and a stale "success" would only be
      // discarded (or worse, trusted) on arrival.
      if (options_.request_deadline_ms > 0 &&
          MicrosSince(p.start) >
              1000.0 * static_cast<double>(options_.request_deadline_ms)) {
        Response response;
        response.verb = Verb::kPriceAt;
        response.request_id = p.request_id;
        response.code = StatusCode::kDeadlineExceeded;
        response.error_message = "request deadline exceeded in server queue";
        metrics_.deadline_drops.Increment();
        metrics_.request_latency.Record(MicrosSince(p.start));
        EnqueueResponse(shard, p.conn, response);
        continue;
      }
      if (status.ok()) {
        metrics_.requests_ok.Increment();
        metrics_.queries.Increment(p.count);
        metrics_.request_latency.Record(MicrosSince(p.start));
        // Fast path: the response frame is built straight from the batch
        // output slice — no Response object, no vector, no copies.
        EnqueueValues(shard, p.conn, Verb::kPriceAt, p.request_id,
                      prices + p.offset, p.count);
      } else {
        Response response;
        response.verb = Verb::kPriceAt;
        response.request_id = p.request_id;
        response.code = status.code();
        response.error_message = status.message();
        metrics_.requests_error.Increment();
        metrics_.request_latency.Record(MicrosSince(p.start));
        EnqueueResponse(shard, p.conn, response);
      }
    }
  }
  shard->batches.clear();
  // The map points into scratch, which resets at pass end — forget it
  // before the memory goes away.
  shard->batch_map = nullptr;
}

void PriceServer::EnqueueResponse(Shard* shard, Connection* conn,
                                  const Response& response) {
  if (conn->dead) return;
  const size_t size = EncodedResponseSize(response);
  uint8_t* frame = conn->arena.AllocateArray<uint8_t>(size);
  EncodeResponseInto(response, frame);
  CommitFrame(shard, conn, frame, size);
}

void PriceServer::EnqueueValues(Shard* shard, Connection* conn, Verb verb,
                                uint64_t request_id, const double* values,
                                size_t count) {
  if (conn->dead) return;
  const size_t size = EncodedValuesResponseSize(count);
  uint8_t* frame = conn->arena.AllocateArray<uint8_t>(size);
  EncodeValuesResponseInto(verb, request_id, values, count, frame);
  CommitFrame(shard, conn, frame, size);
}

void PriceServer::CommitFrame(Shard* shard, Connection* conn, uint8_t* frame,
                              size_t frame_size) {
  conn->frames.push_back(iovec{frame, frame_size});
  conn->frames_unsent += frame_size;
  if (!conn->touched) {
    conn->touched = true;
    shard->touched.push_back(conn);
  }
  metrics_.write_queue_bytes.Record(
      static_cast<double>(conn->pending_out()));
  metrics_.write_queue_peak_bytes.Observe(conn->pending_out());
  // Hard cap: backpressure already stopped reads at 1x; only a single
  // giant burst of responses can reach 4x, and such a peer is not
  // consuming — cut it loose rather than grow without bound.
  if (conn->pending_out() > 4 * options_.max_write_queue_bytes) {
    KillConnection(shard, conn);
  }
}

void PriceServer::FlushWrites(Shard* shard, Connection* conn) {
  // Scatter-gather flush: ONE writev covers the fallback-queue remainder
  // (older bytes, always first) plus every arena-resident frame completed
  // this pass, instead of one send per response. Loops only for response
  // trains longer than kMaxIov or when the socket takes partial writes.
  while (conn->pending_out() > 0) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    const size_t out_pending = conn->out.size() - conn->out_offset;
    if (out_pending > 0) {
      iov[iov_count++] = iovec{conn->out.data() + conn->out_offset,
                               out_pending};
    }
    size_t skip = conn->frame_offset;
    for (size_t i = conn->next_frame;
         i < conn->frames.size() && iov_count < kMaxIov; ++i) {
      const iovec& f = conn->frames[i];
      iov[iov_count++] =
          iovec{static_cast<char*>(f.iov_base) + skip, f.iov_len - skip};
      skip = 0;
    }
    const ssize_t n = internal::FaultWritev(conn->fd, iov, iov_count);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(shard, conn);
      return;
    }
    // Consume the sent bytes in queue order: fallback first, then frames.
    size_t left = static_cast<size_t>(n);
    const size_t from_out = std::min(left, out_pending);
    conn->out_offset += from_out;
    left -= from_out;
    conn->frames_unsent -= left;
    while (left > 0) {
      iovec& f = conn->frames[conn->next_frame];
      const size_t remaining = f.iov_len - conn->frame_offset;
      if (left >= remaining) {
        left -= remaining;
        conn->frame_offset = 0;
        ++conn->next_frame;
      } else {
        conn->frame_offset += left;
        left = 0;
      }
    }
    if (conn->out_offset == conn->out.size()) {
      conn->out.clear();
      conn->out_offset = 0;
    }
  }
}

void PriceServer::FinishPass(Shard* shard, Connection* conn) {
  FlushWrites(shard, conn);
  if (conn->dead) return;
  // The arena resets below, so any frame bytes the socket would not take
  // migrate into the fallback queue first (appended AFTER any existing
  // remainder: fallback bytes are strictly older than arena frames, and
  // this keeps them so). Steady state with a keeping-up peer never
  // executes the copy.
  if (conn->frames_unsent > 0) {
    size_t skip = conn->frame_offset;
    for (size_t i = conn->next_frame; i < conn->frames.size(); ++i) {
      const iovec& f = conn->frames[i];
      conn->out.append(static_cast<const char*>(f.iov_base) + skip,
                       f.iov_len - skip);
      skip = 0;
    }
  }
  conn->arena.Reset();
  conn->frames = ArenaVector<iovec>(&conn->arena);
  conn->next_frame = 0;
  conn->frame_offset = 0;
  conn->frames_unsent = 0;
  UpdateEpollInterest(shard, conn);
}

void PriceServer::UpdateEpollInterest(Shard* shard, Connection* conn) {
  const size_t pending = conn->pending_out();
  if (!conn->paused && pending > options_.max_write_queue_bytes) {
    conn->paused = true;
  } else if (conn->paused && pending < options_.max_write_queue_bytes / 2) {
    conn->paused = false;
  }
  const uint32_t want = (conn->paused ? 0u : EPOLLIN) |
                        (pending > 0 ? EPOLLOUT : 0u);
  if (want == conn->armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd;
  if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->armed = want;
  }
}

void PriceServer::CloseConnection(Shard* shard, Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  // The fd itself is closed by ~Connection at the end-of-pass sweep —
  // keeping its number allocated until the dead map entry is gone, so a
  // same-pass accept4 can never reuse it and collide (see ~Connection).
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  metrics_.connections_closed.Increment();
}

void PriceServer::KillConnection(Shard* shard, Connection* conn) {
  if (conn->dead) return;
  metrics_.connections_killed.Increment();
  CloseConnection(shard, conn);
}

// Graceful drain: no new connections or requests, but every response that
// was produced for an already-received request still goes out (bounded by
// options_.drain_timeout_ms), so a client that stops sending and keeps
// reading never loses an answered query to shutdown.
void PriceServer::DrainShard(Shard* shard) {
  (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (Clock::now() < deadline) {
    bool pending = false;
    for (auto& [fd, conn] : shard->conns) {
      if (!conn->dead && conn->pending_out() > 0) {
        pending = true;
        break;
      }
    }
    if (!pending) break;
    const int n =
        internal::FaultEpollWait(shard->epoll_fd, events, kMaxEvents, 50);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == shard->wake_fd || fd == listen_fd_) continue;
      const auto it = shard->conns.find(fd);
      if (it == shard->conns.end() || it->second->dead) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(shard, it->second.get());
      } else if (events[i].events & EPOLLOUT) {
        FlushWrites(shard, it->second.get());
      }
    }
  }
  // Past the drain deadline: connections still holding undeliverable
  // responses are hard-killed (and counted); fully drained ones just
  // close.
  for (auto& [fd, conn] : shard->conns) {
    if (conn->dead) continue;
    if (conn->pending_out() > 0) {
      KillConnection(shard, conn.get());
    } else {
      CloseConnection(shard, conn.get());
    }
  }
  shard->conns.clear();
}

}  // namespace mbp::net

#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/check.h"
#include "common/fault_injection.h"
#include "net/fault_syscalls.h"

namespace mbp::net {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

}  // namespace

// Per-connection state. A connection lives on exactly one shard thread;
// nothing here is shared. `in` accumulates raw bytes until they form
// complete frames (the parse loop consumes every complete frame after
// each recv, so between passes it only ever holds one incomplete tail,
// bounded by kMaxFrameBytes). `out` holds encoded-but-unsent responses.
struct PriceServer::Connection {
  int fd = -1;
  std::string in;
  std::string out;
  size_t out_offset = 0;
  uint32_t armed = EPOLLIN;  // events currently registered with epoll
  bool paused = false;       // reading stopped by write backpressure
  bool touched = false;      // has responses appended this loop pass
  bool dead = false;         // closed; destroyed at the end-of-pass sweep

  size_t pending_out() const { return out.size() - out_offset; }

  // The fd is closed here, NOT in CloseConnection: a dead connection
  // stays in the shard map until the end-of-pass sweep, and closing the
  // fd early would free its number for accept4 to hand out again within
  // the same pass — the new connection would then collide with the dead
  // map entry and be stranded (open, epoll-registered, unowned), spinning
  // the level-triggered loop forever.
  ~Connection() {
    if (fd >= 0) close(fd);
  }
};

// One event-loop shard: an epoll instance, a private connection table,
// and the micro-batch under construction during the current loop pass.
struct PriceServer::Shard {
  size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;

  // PRICE_AT queries decoded this pass, coalesced per curve slot; one
  // PriceQueryEngine::PriceBatch call serves each group (so every query
  // in the group is answered from ONE snapshot).
  struct PendingPrice {
    Connection* conn;
    uint64_t request_id;
    size_t offset;  // into MicroBatch::xs
    size_t count;
    Clock::time_point start;
  };
  struct MicroBatch {
    std::vector<double> xs;
    std::vector<PendingPrice> pending;
  };
  std::unordered_map<const serving::SnapshotRegistry::CurveSlot*, MicroBatch>
      batches;
  std::vector<Connection*> touched;
};

PriceServer::PriceServer(const serving::PriceQueryEngine* engine,
                         ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  MBP_CHECK(engine_ != nullptr);
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_write_queue_bytes == 0) {
    options_.max_write_queue_bytes = 1 << 20;
  }
}

StatusOr<std::unique_ptr<PriceServer>> PriceServer::Start(
    const serving::PriceQueryEngine* engine, ServerOptions options) {
  std::unique_ptr<PriceServer> server(
      new PriceServer(engine, std::move(options)));
  MBP_RETURN_IF_ERROR(server->Listen());
  for (size_t s = 0; s < server->options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (shard->epoll_fd < 0) return ErrnoError("epoll_create1");
    shard->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->wake_fd < 0) return ErrnoError("eventfd");
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.fd = shard->wake_fd;
    if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &wake) <
        0) {
      return ErrnoError("epoll_ctl(wake)");
    }
    // EPOLLEXCLUSIVE: each shard registers the one listening socket and
    // the kernel wakes a single shard per pending accept, spreading
    // connections without a dedicated acceptor thread.
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = server->listen_fd_;
    if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, server->listen_fd_, &ev) <
        0) {
      return ErrnoError("epoll_ctl(listen)");
    }
    server->shards_.push_back(std::move(shard));
  }
  for (auto& shard : server->shards_) {
    shard->thread =
        std::thread([srv = server.get(), s = shard.get()] { srv->ShardLoop(s); });
  }
  return server;
}

PriceServer::~PriceServer() { Shutdown(); }

Status PriceServer::Listen() {
  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoError("socket");
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoError("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (listen(listen_fd_, SOMAXCONN) < 0) return ErrnoError("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoError("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void PriceServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    const uint64_t one = 1;
    (void)!write(shard->wake_fd, &one, sizeof(one));
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards_) {
    if (shard->epoll_fd >= 0) close(shard->epoll_fd);
    if (shard->wake_fd >= 0) close(shard->wake_fd);
    shard->epoll_fd = shard->wake_fd = -1;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

StatsPayload PriceServer::stats() const {
  StatsPayload s;
  s.connections_accepted = metrics_.connections_accepted.Value();
  s.connections_active = active_connections_.load(std::memory_order_relaxed);
  s.requests_ok = metrics_.requests_ok.Value();
  s.requests_error = metrics_.requests_error.Value();
  s.protocol_errors = metrics_.protocol_errors.Value();
  s.queries = metrics_.queries.Value();
  s.batches = metrics_.batches.Value();
  s.connections_refused = metrics_.connections_refused.Value();
  s.requests_shed = metrics_.requests_shed.Value();
  s.deadline_drops = metrics_.deadline_drops.Value();
  s.connections_killed = metrics_.connections_killed.Value();
  s.write_queue_peak_bytes = metrics_.write_queue_peak_bytes.Value();
  s.latency = metrics_.request_latency.Snapshot();
  s.write_queue_bytes = metrics_.write_queue_bytes.Snapshot();
  // Injector state is process-global: a chaos client reads back what the
  // server-side schedule actually did without sharing an address space.
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  s.faults_injected = injector.TotalFires();
  for (const fault::PointStats& p : injector.Stats()) {
    s.faults.push_back(FaultCount{p.point, p.fires});
  }
  return s;
}

StatusOr<const serving::SnapshotRegistry::CurveSlot*>
PriceServer::ResolveCurve(const std::string& curve_id) const {
  const std::string& id =
      curve_id.empty() ? options_.default_curve_id : curve_id;
  const serving::SnapshotRegistry::CurveSlot* slot =
      engine_->registry().Find(id);
  if (slot == nullptr) {
    return NotFoundError("curve '" + id + "' is not being served");
  }
  return slot;
}

void PriceServer::ShardLoop(Shard* shard) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        internal::FaultEpollWait(shard->epoll_fd, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady(shard);
        continue;
      }
      if (fd == shard->wake_fd) {
        uint64_t drained = 0;
        (void)!read(shard->wake_fd, &drained, sizeof(drained));
        continue;
      }
      const auto it = shard->conns.find(fd);
      if (it == shard->conns.end()) {
        // Not a connection this shard owns — deregister so a stale
        // level-triggered readiness cannot spin the loop.
        (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
        continue;
      }
      Connection* conn = it->second.get();
      if (conn->dead) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(shard, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) ReadReady(shard, conn);
      if (!conn->dead && (events[i].events & EPOLLOUT)) {
        FlushWrites(shard, conn);
        if (!conn->dead) UpdateEpollInterest(shard, conn);
      }
    }
    FlushPriceBatches(shard);
    // One flush per connection that gained responses this pass, instead
    // of one send() per response.
    for (Connection* conn : shard->touched) {
      conn->touched = false;
      if (conn->dead) continue;
      FlushWrites(shard, conn);
      if (!conn->dead) UpdateEpollInterest(shard, conn);
    }
    shard->touched.clear();
    // Destroy connections closed during this pass (deferred so that
    // micro-batch entries never dangle).
    for (auto it = shard->conns.begin(); it != shard->conns.end();) {
      it = it->second->dead ? shard->conns.erase(it) : std::next(it);
    }
  }
  DrainShard(shard);
}

void PriceServer::AcceptReady(Shard* shard) {
  while (true) {
    const int fd = internal::FaultAccept4(listen_fd_, nullptr, nullptr,
                                          SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or a transient accept error
    }
    if (stopping_.load(std::memory_order_acquire) ||
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections ||
        MBP_FAULT_POINT("net.server.conn_alloc")) {
      metrics_.connections_refused.Increment();
      close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections_accepted.Increment();
    const int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    shard->conns.emplace(fd, std::move(conn));
  }
}

void PriceServer::ReadReady(Shard* shard, Connection* conn) {
  char buf[65536];
  while (!conn->dead) {
    const ssize_t n = internal::FaultRecv(conn->fd, buf, sizeof(buf));
    if (n == 0) {  // orderly peer close
      CloseConnection(shard, conn);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        CloseConnection(shard, conn);
      }
      return;
    }
    conn->in.append(buf, static_cast<size_t>(n));
    // Consume every complete frame now, so `in` never holds parseable
    // data across passes (a paused or idle socket cannot strand a
    // buffered request).
    size_t offset = 0;
    while (!conn->dead) {
      Request request;
      const auto consumed = DecodeRequest(
          reinterpret_cast<const uint8_t*>(conn->in.data()) + offset,
          conn->in.size() - offset, &request);
      if (!consumed.ok()) {
        metrics_.protocol_errors.Increment();
        CloseConnection(shard, conn);
        return;
      }
      if (*consumed == 0) break;
      offset += *consumed;
      HandleRequest(shard, conn, request);
    }
    if (conn->dead) return;
    conn->in.erase(0, offset);
    // Backpressure: responses already queued on this connection exceed
    // the cap — stop reading (UpdateEpollInterest drops EPOLLIN) until
    // the peer drains them.
    UpdateEpollInterest(shard, conn);
    if (conn->paused) return;
  }
}

// Degradation rungs 2 and 3: shed query verbs with a fast OVERLOADED
// answer instead of doing engine work the client will retry anyway.
// SNAPSHOT_INFO and STATS pass through — they are cheap and the overload
// must stay observable.
bool PriceServer::ShouldShed(const Connection* conn, Verb verb) const {
  if (verb != Verb::kPriceAt && verb != Verb::kBudgetToX) return false;
  if (options_.shed_connections > 0 &&
      active_connections_.load(std::memory_order_relaxed) >
          options_.shed_connections) {
    return true;
  }
  const size_t shed_bytes = options_.shed_write_queue_bytes > 0
                                ? options_.shed_write_queue_bytes
                                : options_.max_write_queue_bytes;
  return conn->pending_out() > shed_bytes;
}

void PriceServer::HandleRequest(Shard* shard, Connection* conn,
                                const Request& request) {
  const Clock::time_point start = Clock::now();
  if (ShouldShed(conn, request.verb)) {
    metrics_.requests_shed.Increment();
    EnqueueResponse(
        shard, conn,
        ErrorResponse(request,
                      UnavailableError("server overloaded; retry later")));
    return;
  }
  if (request.verb == Verb::kStats) {
    Response response;
    response.verb = Verb::kStats;
    response.request_id = request.request_id;
    response.stats = stats();
    metrics_.requests_ok.Increment();
    metrics_.request_latency.Record(MicrosSince(start));
    EnqueueResponse(shard, conn, response);
    return;
  }
  const auto slot = ResolveCurve(request.curve_id);
  if (!slot.ok()) {
    metrics_.requests_error.Increment();
    metrics_.request_latency.Record(MicrosSince(start));
    EnqueueResponse(shard, conn, ErrorResponse(request, slot.status()));
    return;
  }
  switch (request.verb) {
    case Verb::kPriceAt: {
      // Deferred: coalesced with every other PRICE_AT of this loop pass
      // into one PriceBatch per curve (FlushPriceBatches).
      Shard::MicroBatch& batch = shard->batches[*slot];
      batch.pending.push_back(Shard::PendingPrice{
          conn, request.request_id, batch.xs.size(), request.args.size(),
          start});
      batch.xs.insert(batch.xs.end(), request.args.begin(),
                      request.args.end());
      return;
    }
    case Verb::kBudgetToX: {
      Response response;
      response.verb = Verb::kBudgetToX;
      response.request_id = request.request_id;
      response.values.reserve(request.args.size());
      for (const double budget : request.args) {
        const auto x = engine_->BudgetToInverseNcp(*slot, budget);
        if (!x.ok()) {
          metrics_.requests_error.Increment();
          metrics_.request_latency.Record(MicrosSince(start));
          EnqueueResponse(shard, conn, ErrorResponse(request, x.status()));
          return;
        }
        response.values.push_back(*x);
      }
      metrics_.requests_ok.Increment();
      metrics_.queries.Increment(request.args.size());
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueResponse(shard, conn, response);
      return;
    }
    case Verb::kSnapshotInfo: {
      const auto snapshot = (*slot)->Load();
      if (snapshot == nullptr) {
        metrics_.requests_error.Increment();
        EnqueueResponse(
            shard, conn,
            ErrorResponse(request, NotFoundError("curve was withdrawn")));
        return;
      }
      Response response;
      response.verb = Verb::kSnapshotInfo;
      response.request_id = request.request_id;
      response.info.version = snapshot->version();
      response.info.stamp = (*slot)->stamp();
      response.info.num_knots = snapshot->num_knots();
      response.info.x_max = snapshot->x_max();
      response.info.max_price = snapshot->max_price();
      metrics_.requests_ok.Increment();
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueResponse(shard, conn, response);
      return;
    }
    case Verb::kStats:
      return;  // handled above
  }
}

void PriceServer::FlushPriceBatches(Shard* shard) {
  for (auto& [slot, batch] : shard->batches) {
    if (batch.xs.empty()) continue;
    // Chaos lever: an injected stall here ages the pending entries past
    // request_deadline_ms, exercising the deadline-drop path on demand.
    (void)MBP_FAULT_DELAY("net.server.batch.delay");
    std::vector<double> prices(batch.xs.size());
    // The whole micro-batch is served from ONE snapshot load inside
    // PriceBatch — consistent across every coalesced request even if a
    // republish lands mid-batch. Pool dispatch only once the batch is
    // worth it; small batches run inline on the shard thread.
    ParallelConfig parallel;
    parallel.num_threads =
        batch.xs.size() >= options_.min_pool_batch ? options_.batch_threads
                                                   : 1;
    const Status status = engine_->PriceBatch(
        slot, batch.xs.data(), prices.data(), batch.xs.size(), parallel);
    metrics_.batches.Increment();
    for (const Shard::PendingPrice& p : batch.pending) {
      if (p.conn->dead) continue;
      Response response;
      response.verb = Verb::kPriceAt;
      response.request_id = p.request_id;
      // Deadline-aware drop: a request that sat in the queue past its
      // deadline gets a fast kDeadlineExceeded — the client has already
      // timed the attempt out, and a stale "success" would only be
      // discarded (or worse, trusted) on arrival.
      if (options_.request_deadline_ms > 0 &&
          MicrosSince(p.start) >
              1000.0 * static_cast<double>(options_.request_deadline_ms)) {
        response.code = StatusCode::kDeadlineExceeded;
        response.error_message = "request deadline exceeded in server queue";
        metrics_.deadline_drops.Increment();
        metrics_.request_latency.Record(MicrosSince(p.start));
        EnqueueResponse(shard, p.conn, response);
        continue;
      }
      if (status.ok()) {
        response.values.assign(prices.begin() + p.offset,
                               prices.begin() + p.offset + p.count);
        metrics_.requests_ok.Increment();
        metrics_.queries.Increment(p.count);
      } else {
        response.code = status.code();
        response.error_message = status.message();
        metrics_.requests_error.Increment();
      }
      metrics_.request_latency.Record(MicrosSince(p.start));
      EnqueueResponse(shard, p.conn, response);
    }
  }
  shard->batches.clear();
}

void PriceServer::EnqueueResponse(Shard* shard, Connection* conn,
                                  const Response& response) {
  if (conn->dead) return;
  EncodeResponse(response, &conn->out);
  if (!conn->touched) {
    conn->touched = true;
    shard->touched.push_back(conn);
  }
  metrics_.write_queue_bytes.Record(
      static_cast<double>(conn->pending_out()));
  metrics_.write_queue_peak_bytes.Observe(conn->pending_out());
  // Hard cap: backpressure already stopped reads at 1x; only a single
  // giant burst of responses can reach 4x, and such a peer is not
  // consuming — cut it loose rather than grow without bound.
  if (conn->pending_out() > 4 * options_.max_write_queue_bytes) {
    KillConnection(shard, conn);
  }
}

void PriceServer::FlushWrites(Shard* shard, Connection* conn) {
  while (conn->pending_out() > 0) {
    const ssize_t n = internal::FaultSend(
        conn->fd, conn->out.data() + conn->out_offset, conn->pending_out());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(shard, conn);
      return;
    }
    conn->out_offset += static_cast<size_t>(n);
  }
  conn->out.clear();
  conn->out_offset = 0;
}

void PriceServer::UpdateEpollInterest(Shard* shard, Connection* conn) {
  const size_t pending = conn->pending_out();
  if (!conn->paused && pending > options_.max_write_queue_bytes) {
    conn->paused = true;
  } else if (conn->paused && pending < options_.max_write_queue_bytes / 2) {
    conn->paused = false;
  }
  const uint32_t want = (conn->paused ? 0u : EPOLLIN) |
                        (pending > 0 ? EPOLLOUT : 0u);
  if (want == conn->armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd;
  if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->armed = want;
  }
}

void PriceServer::CloseConnection(Shard* shard, Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  // The fd itself is closed by ~Connection at the end-of-pass sweep —
  // keeping its number allocated until the dead map entry is gone, so a
  // same-pass accept4 can never reuse it and collide (see ~Connection).
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  metrics_.connections_closed.Increment();
}

void PriceServer::KillConnection(Shard* shard, Connection* conn) {
  if (conn->dead) return;
  metrics_.connections_killed.Increment();
  CloseConnection(shard, conn);
}

// Graceful drain: no new connections or requests, but every response that
// was produced for an already-received request still goes out (bounded by
// options_.drain_timeout_ms), so a client that stops sending and keeps
// reading never loses an answered query to shutdown.
void PriceServer::DrainShard(Shard* shard) {
  (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (Clock::now() < deadline) {
    bool pending = false;
    for (auto& [fd, conn] : shard->conns) {
      if (!conn->dead && conn->pending_out() > 0) {
        pending = true;
        break;
      }
    }
    if (!pending) break;
    const int n =
        internal::FaultEpollWait(shard->epoll_fd, events, kMaxEvents, 50);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == shard->wake_fd || fd == listen_fd_) continue;
      const auto it = shard->conns.find(fd);
      if (it == shard->conns.end() || it->second->dead) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(shard, it->second.get());
      } else if (events[i].events & EPOLLOUT) {
        FlushWrites(shard, it->second.get());
      }
    }
  }
  // Past the drain deadline: connections still holding undeliverable
  // responses are hard-killed (and counted); fully drained ones just
  // close.
  for (auto& [fd, conn] : shard->conns) {
    if (conn->dead) continue;
    if (conn->pending_out() > 0) {
      KillConnection(shard, conn.get());
    } else {
      CloseConnection(shard, conn.get());
    }
  }
  shard->conns.clear();
}

}  // namespace mbp::net

#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/arena.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "net/shm_ring.h"
#include "net/transport.h"

namespace mbp::net {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Error-frame skeleton for the view-based decode path (the Response
// carries a std::string message — errors are off the zero-allocation
// contract by design; steady state is the OK path).
Response ErrorResponseFor(const RequestView& request, const Status& status) {
  Response response;
  response.verb = request.verb;
  response.request_id = request.request_id;
  response.code = status.ok() ? StatusCode::kInternal : status.code();
  response.error_message = status.message();
  return response;
}

// iovec fan-in per flush call; longer response trains loop.
constexpr int kMaxIov = 64;

}  // namespace

// Per-connection state. A connection lives on exactly one shard thread;
// nothing here is shared.
//
// Buffer roles on the allocation-free request path (DESIGN.md §5f):
//  - `carry` persists the one incomplete frame tail between passes
//    (bounded by kMaxFrameBytes). Its std::string capacity warms up once
//    and is then reused — assign() never shrinks.
//  - `arena` owns this pass's encoded response frames; `frames` (itself
//    arena-backed) records one iovec per frame for the scatter-gather
//    flush. Both reset every pass in FinishPass, after unsent bytes are
//    migrated out.
//  - `out` is the fallback queue: bytes a blocked socket would not take,
//    copied out of the arena at pass end so they survive the reset.
//    Always OLDER than arena frames, so flushes send `out` first.
struct PriceServer::Connection {
  TransportConn* tconn = nullptr;  // owned by the shard's transport
  std::string carry;
  std::string out;
  size_t out_offset = 0;
  Arena arena;
  ArenaVector<iovec> frames{&arena};
  size_t next_frame = 0;     // frames[0..next_frame) fully sent
  size_t frame_offset = 0;   // bytes of frames[next_frame] already sent
  size_t frames_unsent = 0;  // total unsent arena-resident bytes
  bool paused = false;       // reading stopped by write backpressure
  bool touched = false;      // has responses appended this loop pass
  bool dead = false;         // closed; destroyed at the end-of-pass sweep

  size_t pending_out() const {
    return (out.size() - out_offset) + frames_unsent;
  }
};

// One event-loop shard: a transport (epoll, io_uring, or shm slots), a
// private connection table, a pass-scoped scratch arena, and the
// micro-batch under construction during the current loop pass.
struct PriceServer::Shard {
  size_t index = 0;
  std::unique_ptr<ShardTransport> transport;
  std::thread thread;
  // Owned connections, unordered; dead entries are destroyed (and their
  // transport handle released) at the end-of-pass sweep, never earlier,
  // so micro-batch entries and same-pass events can never dangle.
  std::vector<std::unique_ptr<Connection>> conns;
  // Pass-scoped event staging; capacity persists across passes.
  std::vector<TransportEvent> events;

  // Pass-scoped staging: recv buffers, decoded request args, batch
  // queries/outputs. Reset once at the end of every loop pass; after
  // warm-up it is one resident block and the pass makes zero heap
  // allocations.
  Arena scratch;

  // PRICE_AT queries decoded this pass, coalesced per curve slot; one
  // PriceQueryEngine::PriceBatch call serves each group (so every query
  // in the group is answered from ONE snapshot). The per-curve groups
  // live in `scratch` and are found through an open-addressed pointer-
  // keyed map that also lives in `scratch` (PR 6 used a linear scan,
  // which was O(K) per request once a zipf-spread pass touches hundreds
  // of distinct curves). `batches` keeps insertion order so the flush —
  // and therefore response order — stays deterministic regardless of
  // where slots hash.
  struct PendingPrice {
    Connection* conn;
    uint64_t request_id;
    size_t offset;  // into CurveBatch::xs
    size_t count;
    Clock::time_point start;
  };
  struct CurveBatch {
    const serving::CatalogRegistry::CurveSlot* slot;
    ArenaVector<double> xs;
    ArenaVector<PendingPrice> pending;
  };
  std::vector<CurveBatch*> batches;  // entries arena-owned; cleared per pass
  // Pass-scoped slot -> CurveBatch map: power-of-two array of pointers in
  // `scratch`, linear probing, null = empty. Rebuilt lazily per pass;
  // `batch_map_capacity` persists across passes at 4x the peak distinct-
  // curve count seen, so steady state allocates once per pass from the
  // arena and never rehashes mid-pass.
  CurveBatch** batch_map = nullptr;
  size_t batch_map_capacity = 64;  // persists; grows on rehash
  std::vector<Connection*> touched;

  // The pass batch for `slot`, creating it (O(1) amortized) on first
  // sight. The map and every batch live in `scratch`: allocated lazily on
  // the first PRICE_AT of a pass, forgotten at FlushPriceBatches,
  // reclaimed by the pass-end scratch.Reset(). Steady state is one arena
  // allocation per pass and zero mid-pass rehashes.
  CurveBatch* FindOrAddBatch(const serving::CatalogRegistry::CurveSlot* slot) {
    if (batch_map == nullptr) {
      batch_map = scratch.AllocateArray<CurveBatch*>(batch_map_capacity);
      std::memset(batch_map, 0, batch_map_capacity * sizeof(CurveBatch*));
    }
    const size_t mask = batch_map_capacity - 1;
    size_t i = HashMix64(reinterpret_cast<uintptr_t>(slot)) & mask;
    while (true) {
      CurveBatch* b = batch_map[i];
      if (b == nullptr) break;
      if (b->slot == slot) return b;
      i = (i + 1) & mask;
    }
    void* raw = scratch.Allocate(sizeof(CurveBatch), alignof(CurveBatch));
    auto* batch = new (raw)
        CurveBatch{slot, ArenaVector<double>(&scratch),
                   ArenaVector<PendingPrice>(&scratch)};
    batches.push_back(batch);
    batch_map[i] = batch;
    if (batches.size() * 4 > batch_map_capacity) {
      // Rehash into a doubled arena table; the old table is just arena
      // bytes and dies with the pass. Insertion order (and thus flush
      // and response order) is carried by `batches`, not the table.
      batch_map_capacity *= 2;
      auto** fresh = scratch.AllocateArray<CurveBatch*>(batch_map_capacity);
      std::memset(fresh, 0, batch_map_capacity * sizeof(CurveBatch*));
      const size_t fresh_mask = batch_map_capacity - 1;
      for (CurveBatch* b : batches) {
        size_t j =
            HashMix64(reinterpret_cast<uintptr_t>(b->slot)) & fresh_mask;
        while (fresh[j] != nullptr) j = (j + 1) & fresh_mask;
        fresh[j] = b;
      }
      batch_map = fresh;
    }
    return batch;
  }
};

PriceServer::PriceServer(const serving::PriceQueryEngine* engine,
                         ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  MBP_CHECK(engine_ != nullptr);
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_write_queue_bytes == 0) {
    options_.max_write_queue_bytes = 1 << 20;
  }
}

StatusOr<std::unique_ptr<PriceServer>> PriceServer::Start(
    const serving::PriceQueryEngine* engine, ServerOptions options) {
  std::unique_ptr<PriceServer> server(
      new PriceServer(engine, std::move(options)));
  MBP_RETURN_IF_ERROR(server->Listen());
  TransportKind tcp_kind = server->options_.transport;
  if (tcp_kind == TransportKind::kShm) {
    return InvalidArgumentError(
        "ServerOptions.transport selects the TCP backend (epoll or uring); "
        "the shm transport is enabled by ServerOptions.shm_path");
  }
  // Runtime downgrade, rung 1: the kernel lacks what the uring backend
  // needs. Counted so operators can see a fleet silently running epoll.
  if (tcp_kind == TransportKind::kUring && !UringAvailable()) {
    tcp_kind = TransportKind::kEpoll;
    server->metrics_.transport.transport_fallbacks.Increment();
  }
  for (size_t s = 0; s < server->options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    Status status;
    if (tcp_kind == TransportKind::kUring) {
      shard->transport = MakeUringShardTransport(
          server->listen_fd_, &server->metrics_.transport, &status);
      if (shard->transport == nullptr) {
        // Rung 2: the probe passed but this ring's setup failed (e.g.
        // locked-memory limits). Downgrade instead of dying — every
        // remaining shard then builds epoll too.
        tcp_kind = TransportKind::kEpoll;
        server->metrics_.transport.transport_fallbacks.Increment();
      }
    }
    if (shard->transport == nullptr) {
      shard->transport = MakeEpollShardTransport(
          server->listen_fd_, &server->metrics_.transport, &status);
    }
    if (shard->transport == nullptr) return status;
    server->shards_.push_back(std::move(shard));
  }
  if (!server->options_.shm_path.empty()) {
    ShmSegmentOptions seg_options;
    seg_options.path = server->options_.shm_path;
    seg_options.slots = server->options_.shm_slots;
    seg_options.ring_bytes = server->options_.shm_ring_bytes;
    auto segment = ShmSegment::Create(seg_options);
    if (!segment.ok()) return segment.status();
    server->shm_ = std::move(*segment);
    const size_t shm_shards =
        std::max<size_t>(1, server->options_.shm_shards);
    for (size_t s = 0; s < shm_shards; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->index = server->shards_.size();
      Status status;
      shard->transport =
          MakeShmShardTransport(server->shm_.get(), s, shm_shards,
                                &server->metrics_.transport, &status);
      if (shard->transport == nullptr) return status;
      server->shards_.push_back(std::move(shard));
    }
  }
  for (auto& shard : server->shards_) {
    shard->thread =
        std::thread([srv = server.get(), s = shard.get()] { srv->ShardLoop(s); });
  }
  return server;
}

PriceServer::~PriceServer() { Shutdown(); }

Status PriceServer::Listen() {
  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoError("socket");
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoError("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (listen(listen_fd_, SOMAXCONN) < 0) return ErrnoError("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoError("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void PriceServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  // Mark the shm segment closed first so clients blocked in a futex wait
  // observe the shutdown when woken, then interrupt every shard's Wait.
  if (shm_ != nullptr) shm_->BeginShutdown();
  for (auto& shard : shards_) shard->transport->Wake();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards_) shard->transport.reset();
  shm_.reset();  // unmaps and unlinks the segment file
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

StatsPayload PriceServer::stats() const {
  StatsPayload s;
  s.connections_accepted = metrics_.connections_accepted.Value();
  s.connections_active = active_connections_.load(std::memory_order_relaxed);
  s.requests_ok = metrics_.requests_ok.Value();
  s.requests_error = metrics_.requests_error.Value();
  s.protocol_errors = metrics_.protocol_errors.Value();
  s.queries = metrics_.queries.Value();
  s.batches = metrics_.batches.Value();
  s.connections_refused = metrics_.connections_refused.Value();
  s.requests_shed = metrics_.requests_shed.Value();
  s.deadline_drops = metrics_.deadline_drops.Value();
  s.connections_killed = metrics_.connections_killed.Value();
  s.write_queue_peak_bytes = metrics_.write_queue_peak_bytes.Value();
  for (size_t v = 1; v < kNumVerbSlots; ++v) {
    s.requests_by_verb[v] = metrics_.requests_by_verb[v].Value();
  }
  if (options_.fulfillment != nullptr) {
    const serving::FulfillmentStats f = options_.fulfillment->Stats();
    s.buys_ok = f.buys_ok;
    s.model_cache_entries = f.model_cache_entries;
    s.model_cache_bytes = f.model_cache_bytes;
    s.model_cache_hits = f.model_cache_hits;
    s.model_cache_misses = f.model_cache_misses;
    s.model_cache_evictions = f.model_cache_evictions;
    s.transactions_recorded = f.transactions_recorded;
    s.revenue = f.revenue;
    s.wal_appends = f.wal_appends;
    s.wal_fsyncs = f.wal_fsyncs;
    s.wal_bytes = f.wal_bytes;
    s.recovery_records = f.recovery_records;
    s.recovery_torn_tail = f.recovery_torn_tail;
    s.recovery_ms = f.recovery_ms;
    s.fulfillment_latency = f.latency;
  }
  s.catalog_listings = engine_->registry().resident_listings();
  s.catalog_bytes = engine_->registry().resident_bytes();
  s.transport_fallbacks = metrics_.transport.transport_fallbacks.Value();
  s.transport_syscalls = metrics_.transport.transport_syscalls.Value();
  s.uring_sqe_submitted = metrics_.transport.uring_sqe_submitted.Value();
  s.shm_doorbell_wakes = metrics_.transport.shm_doorbell_wakes.Value();
  s.latency = metrics_.request_latency.Snapshot();
  s.write_queue_bytes = metrics_.write_queue_bytes.Snapshot();
  // Injector state is process-global: a chaos client reads back what the
  // server-side schedule actually did without sharing an address space.
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  s.faults_injected = injector.TotalFires();
  for (const fault::PointStats& p : injector.Stats()) {
    s.faults.push_back(FaultCount{p.point, p.fires});
  }
  return s;
}

StatusOr<const serving::CatalogRegistry::CurveSlot*>
PriceServer::ResolveCurve(std::string_view curve_id) const {
  const std::string_view id =
      curve_id.empty() ? std::string_view(options_.default_curve_id)
                       : curve_id;
  // Heterogeneous registry lookup: `id` is a view into the wire buffer
  // and never materializes a std::string on the hot path.
  const serving::CatalogRegistry::CurveSlot* slot =
      engine_->registry().Find(id);
  if (slot == nullptr) {
    return NotFoundError("curve '" + std::string(id) +
                         "' is not being served");
  }
  return slot;
}

void PriceServer::ShardLoop(Shard* shard) {
  while (!stopping_.load(std::memory_order_acquire)) {
    shard->events.clear();
    shard->transport->Wait(&shard->events, &shard->scratch, 100);
    for (const TransportEvent& ev : shard->events) {
      if (ev.kind == TransportEvent::Kind::kAccept) {
        HandleAccept(shard, ev.conn);
        continue;
      }
      Connection* conn = static_cast<Connection*>(ev.conn->user);
      if (conn == nullptr || conn->dead) continue;
      switch (ev.kind) {
        case TransportEvent::Kind::kData:
          OnData(shard, conn, ev.data, ev.size);
          break;
        case TransportEvent::Kind::kEof:
        case TransportEvent::Kind::kError:
          CloseConnection(shard, conn);
          break;
        case TransportEvent::Kind::kWritable:
          FlushWrites(shard, conn);
          if (!conn->dead) UpdateInterest(shard, conn);
          break;
        case TransportEvent::Kind::kAccept:
          break;  // handled above
      }
    }
    FlushPriceBatches(shard);
    // One flush per connection that gained responses this pass, instead
    // of one send() per response; FinishPass then migrates whatever the
    // transport would not take and resets the connection arena.
    for (Connection* conn : shard->touched) {
      conn->touched = false;
      if (conn->dead) continue;
      FinishPass(shard, conn);
    }
    shard->touched.clear();
    // Transport epilogue: io_uring recycles provided buffers and queues
    // recv re-arms (flushed by the next Wait's single enter).
    shard->transport->EndPass();
    // Every pass-scoped staging allocation (recv buffers, decoded args,
    // batch queries and outputs) dies here, in one bump-pointer rewind.
    shard->scratch.Reset();
    // Destroy connections closed during this pass (deferred so that
    // micro-batch entries never dangle and descriptor numbers cannot be
    // reused within the pass that killed them).
    for (size_t i = 0; i < shard->conns.size();) {
      if (shard->conns[i]->dead) {
        shard->transport->Destroy(shard->conns[i]->tconn);
        shard->conns[i]->tconn = nullptr;
        shard->conns[i] = std::move(shard->conns.back());
        shard->conns.pop_back();
      } else {
        ++i;
      }
    }
  }
  DrainShard(shard);
}

void PriceServer::HandleAccept(Shard* shard, TransportConn* tconn) {
  if (stopping_.load(std::memory_order_acquire) ||
      active_connections_.load(std::memory_order_relaxed) >=
          options_.max_connections ||
      MBP_FAULT_POINT("net.server.conn_alloc")) {
    metrics_.connections_refused.Increment();
    shard->transport->Refuse(tconn);
    return;
  }
  if (!shard->transport->Adopt(tconn)) {
    // Registration failed; the transport already destroyed the handle.
    return;
  }
  active_connections_.fetch_add(1, std::memory_order_relaxed);
  metrics_.connections_accepted.Increment();
  auto conn = std::make_unique<Connection>();
  conn->tconn = tconn;
  tconn->user = conn.get();
  shard->conns.push_back(std::move(conn));
}

void PriceServer::OnData(Shard* shard, Connection* conn, const uint8_t* data,
                         size_t size) {
  // Contiguous parse view. Steady state (no carried tail) decodes
  // straight out of the transport's delivery buffer, zero copies; only
  // a partial frame carried from the previous pass pays one merge copy
  // into scratch.
  const uint8_t* buf = data;
  size_t total = size;
  if (!conn->carry.empty()) {
    const size_t carried = conn->carry.size();
    uint8_t* merged = shard->scratch.AllocateArray<uint8_t>(carried + size);
    std::memcpy(merged, conn->carry.data(), carried);
    std::memcpy(merged + carried, data, size);
    buf = merged;
    total = carried + size;
  }
  // Consume every complete frame now, so only an incomplete tail is
  // carried across passes (a paused or idle peer cannot strand a
  // buffered request). Decoding is zero-copy: curve ids stay views into
  // `buf`, args land in the scratch arena.
  size_t offset = 0;
  while (!conn->dead) {
    RequestView request;
    const auto consumed = DecodeRequestView(buf + offset, total - offset,
                                            &request, &shard->scratch);
    if (!consumed.ok()) {
      metrics_.protocol_errors.Increment();
      CloseConnection(shard, conn);
      return;
    }
    if (*consumed == 0) break;
    offset += *consumed;
    HandleRequest(shard, conn, request);
  }
  if (conn->dead) return;
  conn->carry.assign(reinterpret_cast<const char*>(buf) + offset,
                     total - offset);
  // Backpressure: responses already queued on this connection exceed
  // the cap — stop reading (UpdateInterest drops read interest) until
  // the peer drains them.
  UpdateInterest(shard, conn);
}

// Degradation rungs 2 and 3: shed query verbs with a fast OVERLOADED
// answer instead of doing engine work the client will retry anyway.
// SNAPSHOT_INFO and STATS pass through — they are cheap and the overload
// must stay observable.
bool PriceServer::ShouldShed(const Connection* conn, Verb verb) const {
  if (verb != Verb::kPriceAt && verb != Verb::kBudgetToX) return false;
  if (options_.shed_connections > 0 &&
      active_connections_.load(std::memory_order_relaxed) >
          options_.shed_connections) {
    return true;
  }
  const size_t shed_bytes = options_.shed_write_queue_bytes > 0
                                ? options_.shed_write_queue_bytes
                                : options_.max_write_queue_bytes;
  return conn->pending_out() > shed_bytes;
}

void PriceServer::HandleRequest(Shard* shard, Connection* conn,
                                const RequestView& request) {
  const Clock::time_point start = Clock::now();
  // Verb-mix accounting before any shed/dispatch decision: the counter
  // reflects what clients SENT, not what the ladder let through. The verb
  // byte was range-checked by the decoder, so it indexes in bounds.
  metrics_.requests_by_verb[static_cast<uint8_t>(request.verb)].Increment();
  if (ShouldShed(conn, request.verb)) {
    metrics_.requests_shed.Increment();
    EnqueueResponse(
        shard, conn,
        ErrorResponseFor(request,
                         UnavailableError("server overloaded; retry later")));
    return;
  }
  if (request.verb == Verb::kStats) {
    Response response;
    response.verb = Verb::kStats;
    response.request_id = request.request_id;
    response.stats = stats();
    metrics_.requests_ok.Increment();
    metrics_.request_latency.Record(MicrosSince(start));
    EnqueueResponse(shard, conn, response);
    return;
  }
  if (request.verb == Verb::kQuote || request.verb == Verb::kBuy ||
      request.verb == Verb::kReplay) {
    // The engine resolves the curve itself (it needs the ref, not just
    // the slot) and REPLAY needs no live listing at all.
    HandleFulfillment(shard, conn, request);
    return;
  }
  const auto slot = ResolveCurve(request.curve_id);
  if (!slot.ok()) {
    metrics_.requests_error.Increment();
    metrics_.request_latency.Record(MicrosSince(start));
    EnqueueResponse(shard, conn, ErrorResponseFor(request, slot.status()));
    return;
  }
  // LRU feed for catalog eviction: stamp the slot with this request's
  // start time (one relaxed store; same steady-clock micros time base as
  // CatalogRegistry::EvictIdle).
  (*slot)->Touch(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          start.time_since_epoch())
          .count()));
  switch (request.verb) {
    case Verb::kPriceAt: {
      // Deferred: coalesced with every other PRICE_AT of this loop pass
      // into one PriceBatch per curve (FlushPriceBatches). The per-curve
      // group is found through the pass-scoped open-addressed map and
      // grown in the scratch arena — O(1) per request however many
      // distinct curves the pass spans (DESIGN.md §5g).
      Shard::CurveBatch* batch = shard->FindOrAddBatch(*slot);
      batch->pending.push_back(Shard::PendingPrice{
          conn, request.request_id, batch->xs.size(), request.num_args,
          start});
      for (size_t i = 0; i < request.num_args; ++i) {
        batch->xs.push_back(request.args[i]);
      }
      return;
    }
    case Verb::kBudgetToX: {
      // Answered inline, staged through scratch doubles so the success
      // path frames straight from a raw array (no Response, no vector).
      double* xs = shard->scratch.AllocateArray<double>(request.num_args);
      for (size_t i = 0; i < request.num_args; ++i) {
        const auto x = engine_->BudgetToInverseNcp(*slot, request.args[i]);
        if (!x.ok()) {
          metrics_.requests_error.Increment();
          metrics_.request_latency.Record(MicrosSince(start));
          EnqueueResponse(shard, conn,
                          ErrorResponseFor(request, x.status()));
          return;
        }
        xs[i] = *x;
      }
      metrics_.requests_ok.Increment();
      metrics_.queries.Increment(request.num_args);
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueValues(shard, conn, Verb::kBudgetToX, request.request_id, xs,
                    request.num_args);
      return;
    }
    case Verb::kSnapshotInfo: {
      const auto snapshot = (*slot)->Load();
      if (snapshot == nullptr) {
        metrics_.requests_error.Increment();
        EnqueueResponse(
            shard, conn,
            ErrorResponseFor(request, NotFoundError("curve was withdrawn")));
        return;
      }
      Response response;
      response.verb = Verb::kSnapshotInfo;
      response.request_id = request.request_id;
      response.info.version = snapshot->version();
      response.info.stamp = (*slot)->stamp();
      response.info.num_knots = snapshot->num_knots();
      response.info.x_max = snapshot->x_max();
      response.info.max_price = snapshot->max_price();
      metrics_.requests_ok.Increment();
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueResponse(shard, conn, response);
      return;
    }
    case Verb::kStats:
    case Verb::kQuote:
    case Verb::kBuy:
    case Verb::kReplay:
      return;  // handled above
  }
}

void PriceServer::HandleFulfillment(Shard* shard, Connection* conn,
                                    const RequestView& request) {
  const Clock::time_point start = Clock::now();
  serving::FulfillmentEngine* fulfillment = options_.fulfillment;
  if (fulfillment == nullptr) {
    metrics_.requests_error.Increment();
    EnqueueResponse(
        shard, conn,
        ErrorResponseFor(request, FailedPreconditionError(
                                      "server does not sell models")));
    return;
  }
  const std::string_view curve_id =
      request.curve_id.empty() ? std::string_view(options_.default_curve_id)
                               : request.curve_id;
  switch (request.verb) {
    case Verb::kQuote: {
      const auto quote = fulfillment->Quote(curve_id, request.delta);
      if (!quote.ok()) {
        metrics_.requests_error.Increment();
        metrics_.request_latency.Record(MicrosSince(start));
        EnqueueResponse(shard, conn,
                        ErrorResponseFor(request, quote.status()));
        return;
      }
      Response response;
      response.verb = Verb::kQuote;
      response.request_id = request.request_id;
      response.quote.price = quote->price;
      response.quote.delta = quote->delta;
      response.quote.expires_at_micros = quote->expires_at_micros;
      response.quote.token = quote->token;
      metrics_.requests_ok.Increment();
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueResponse(shard, conn, response);
      return;
    }
    case Verb::kBuy:
    case Verb::kReplay: {
      const auto sale =
          request.verb == Verb::kBuy
              ? fulfillment->Buy(curve_id, request.delta, request.txn_id,
                                 request.token)
              : fulfillment->ReplaySale(request.txn_id);
      if (!sale.ok()) {
        metrics_.requests_error.Increment();
        metrics_.request_latency.Record(MicrosSince(start));
        EnqueueResponse(shard, conn,
                        ErrorResponseFor(request, sale.status()));
        return;
      }
      if (sale->weights.size() > kMaxModelWeights) {
        metrics_.requests_error.Increment();
        EnqueueResponse(
            shard, conn,
            ErrorResponseFor(request,
                             InternalError("model exceeds frame capacity")));
        return;
      }
      metrics_.requests_ok.Increment();
      metrics_.request_latency.Record(MicrosSince(start));
      EnqueueSale(shard, conn, request.verb, request.request_id, *sale);
      return;
    }
    default:
      return;
  }
}

void PriceServer::EnqueueSale(Shard* shard, Connection* conn, Verb verb,
                              uint64_t request_id,
                              const serving::Sale& sale) {
  if (conn->dead) return;
  SaleRecordPayload record;
  record.txn_id = sale.record.txn_id;
  record.curve_ref = sale.record.curve_ref;
  record.delta = sale.record.delta;
  record.price = sale.record.price;
  record.seed_commitment = sale.record.seed_commitment;
  const size_t size = EncodedBuyResponseSize(sale.weights.size());
  uint8_t* frame = conn->arena.AllocateArray<uint8_t>(size);
  EncodeBuyResponseInto(verb, request_id, record, sale.weights.data(),
                        sale.weights.size(), frame);
  CommitFrame(shard, conn, frame, size);
}

void PriceServer::FlushPriceBatches(Shard* shard) {
  for (Shard::CurveBatch* batch : shard->batches) {
    if (batch->xs.empty()) continue;
    // Chaos lever: an injected stall here ages the pending entries past
    // request_deadline_ms, exercising the deadline-drop path on demand.
    (void)MBP_FAULT_DELAY("net.server.batch.delay");
    double* prices = shard->scratch.AllocateArray<double>(batch->xs.size());
    // The whole micro-batch is served from ONE snapshot load inside
    // PriceBatch — consistent across every coalesced request even if a
    // republish lands mid-batch. Pool dispatch only once the batch is
    // worth it; small batches run inline on the shard thread.
    ParallelConfig parallel;
    parallel.num_threads =
        batch->xs.size() >= options_.min_pool_batch ? options_.batch_threads
                                                    : 1;
    const Status status = engine_->PriceBatch(
        batch->slot, batch->xs.data(), prices, batch->xs.size(), parallel);
    metrics_.batches.Increment();
    for (const Shard::PendingPrice& p : batch->pending) {
      if (p.conn->dead) continue;
      // Deadline-aware drop: a request that sat in the queue past its
      // deadline gets a fast kDeadlineExceeded — the client has already
      // timed the attempt out, and a stale "success" would only be
      // discarded (or worse, trusted) on arrival.
      if (options_.request_deadline_ms > 0 &&
          MicrosSince(p.start) >
              1000.0 * static_cast<double>(options_.request_deadline_ms)) {
        Response response;
        response.verb = Verb::kPriceAt;
        response.request_id = p.request_id;
        response.code = StatusCode::kDeadlineExceeded;
        response.error_message = "request deadline exceeded in server queue";
        metrics_.deadline_drops.Increment();
        metrics_.request_latency.Record(MicrosSince(p.start));
        EnqueueResponse(shard, p.conn, response);
        continue;
      }
      if (status.ok()) {
        metrics_.requests_ok.Increment();
        metrics_.queries.Increment(p.count);
        metrics_.request_latency.Record(MicrosSince(p.start));
        // Fast path: the response frame is built straight from the batch
        // output slice — no Response object, no vector, no copies.
        EnqueueValues(shard, p.conn, Verb::kPriceAt, p.request_id,
                      prices + p.offset, p.count);
      } else {
        Response response;
        response.verb = Verb::kPriceAt;
        response.request_id = p.request_id;
        response.code = status.code();
        response.error_message = status.message();
        metrics_.requests_error.Increment();
        metrics_.request_latency.Record(MicrosSince(p.start));
        EnqueueResponse(shard, p.conn, response);
      }
    }
  }
  shard->batches.clear();
  // The map points into scratch, which resets at pass end — forget it
  // before the memory goes away.
  shard->batch_map = nullptr;
}

void PriceServer::EnqueueResponse(Shard* shard, Connection* conn,
                                  const Response& response) {
  if (conn->dead) return;
  const size_t size = EncodedResponseSize(response);
  uint8_t* frame = conn->arena.AllocateArray<uint8_t>(size);
  EncodeResponseInto(response, frame);
  CommitFrame(shard, conn, frame, size);
}

void PriceServer::EnqueueValues(Shard* shard, Connection* conn, Verb verb,
                                uint64_t request_id, const double* values,
                                size_t count) {
  if (conn->dead) return;
  const size_t size = EncodedValuesResponseSize(count);
  uint8_t* frame = conn->arena.AllocateArray<uint8_t>(size);
  EncodeValuesResponseInto(verb, request_id, values, count, frame);
  CommitFrame(shard, conn, frame, size);
}

void PriceServer::CommitFrame(Shard* shard, Connection* conn, uint8_t* frame,
                              size_t frame_size) {
  conn->frames.push_back(iovec{frame, frame_size});
  conn->frames_unsent += frame_size;
  if (!conn->touched) {
    conn->touched = true;
    shard->touched.push_back(conn);
  }
  metrics_.write_queue_bytes.Record(
      static_cast<double>(conn->pending_out()));
  metrics_.write_queue_peak_bytes.Observe(conn->pending_out());
  // Hard cap: backpressure already stopped reads at 1x; only a single
  // giant burst of responses can reach 4x, and such a peer is not
  // consuming — cut it loose rather than grow without bound.
  if (conn->pending_out() > 4 * options_.max_write_queue_bytes) {
    KillConnection(shard, conn);
  }
}

void PriceServer::FlushWrites(Shard* shard, Connection* conn) {
  // Scatter-gather flush: ONE transport Writev covers the fallback-queue
  // remainder (older bytes, always first) plus every arena-resident
  // frame completed this pass, instead of one send per response. Loops
  // only for response trains longer than kMaxIov or when the transport
  // takes partial writes.
  while (conn->pending_out() > 0) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    const size_t out_pending = conn->out.size() - conn->out_offset;
    if (out_pending > 0) {
      iov[iov_count++] = iovec{conn->out.data() + conn->out_offset,
                               out_pending};
    }
    size_t skip = conn->frame_offset;
    for (size_t i = conn->next_frame;
         i < conn->frames.size() && iov_count < kMaxIov; ++i) {
      const iovec& f = conn->frames[i];
      iov[iov_count++] =
          iovec{static_cast<char*>(f.iov_base) + skip, f.iov_len - skip};
      skip = 0;
    }
    const ssize_t n = shard->transport->Writev(conn->tconn, iov, iov_count);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(shard, conn);
      return;
    }
    // Consume the sent bytes in queue order: fallback first, then frames.
    size_t left = static_cast<size_t>(n);
    const size_t from_out = std::min(left, out_pending);
    conn->out_offset += from_out;
    left -= from_out;
    conn->frames_unsent -= left;
    while (left > 0) {
      iovec& f = conn->frames[conn->next_frame];
      const size_t remaining = f.iov_len - conn->frame_offset;
      if (left >= remaining) {
        left -= remaining;
        conn->frame_offset = 0;
        ++conn->next_frame;
      } else {
        conn->frame_offset += left;
        left = 0;
      }
    }
    if (conn->out_offset == conn->out.size()) {
      conn->out.clear();
      conn->out_offset = 0;
    }
  }
}

void PriceServer::FinishPass(Shard* shard, Connection* conn) {
  FlushWrites(shard, conn);
  if (conn->dead) return;
  // The arena resets below, so any frame bytes the socket would not take
  // migrate into the fallback queue first (appended AFTER any existing
  // remainder: fallback bytes are strictly older than arena frames, and
  // this keeps them so). Steady state with a keeping-up peer never
  // executes the copy.
  if (conn->frames_unsent > 0) {
    size_t skip = conn->frame_offset;
    for (size_t i = conn->next_frame; i < conn->frames.size(); ++i) {
      const iovec& f = conn->frames[i];
      conn->out.append(static_cast<const char*>(f.iov_base) + skip,
                       f.iov_len - skip);
      skip = 0;
    }
  }
  conn->arena.Reset();
  conn->frames = ArenaVector<iovec>(&conn->arena);
  conn->next_frame = 0;
  conn->frame_offset = 0;
  conn->frames_unsent = 0;
  UpdateInterest(shard, conn);
}

void PriceServer::UpdateInterest(Shard* shard, Connection* conn) {
  const size_t pending = conn->pending_out();
  if (!conn->paused && pending > options_.max_write_queue_bytes) {
    conn->paused = true;
  } else if (conn->paused && pending < options_.max_write_queue_bytes / 2) {
    conn->paused = false;
  }
  shard->transport->UpdateInterest(conn->tconn, !conn->paused, pending > 0);
}

void PriceServer::CloseConnection(Shard* shard, Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  // Detach from event production now; the transport handle itself (and
  // the descriptor/slot behind it) is released by Destroy at the end-of-
  // pass sweep, so a same-pass accept can never reuse and collide.
  shard->transport->OnClose(conn->tconn);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  metrics_.connections_closed.Increment();
}

void PriceServer::KillConnection(Shard* shard, Connection* conn) {
  if (conn->dead) return;
  metrics_.connections_killed.Increment();
  CloseConnection(shard, conn);
}

// Graceful drain: no new connections or requests, but every response that
// was produced for an already-received request still goes out (bounded by
// options_.drain_timeout_ms), so a client that stops sending and keeps
// reading never loses an answered query to shutdown.
void PriceServer::DrainShard(Shard* shard) {
  shard->transport->StopAccepting();
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  while (Clock::now() < deadline) {
    bool pending = false;
    for (const auto& conn : shard->conns) {
      if (!conn->dead &&
          (conn->pending_out() > 0 ||
           shard->transport->Unflushed(conn->tconn) > 0)) {
        pending = true;
        break;
      }
    }
    if (!pending) break;
    shard->events.clear();
    shard->transport->Wait(&shard->events, &shard->scratch, 50);
    for (const TransportEvent& ev : shard->events) {
      if (ev.kind == TransportEvent::Kind::kAccept) {
        // A connection that raced the drain start: never served.
        shard->transport->Refuse(ev.conn);
        continue;
      }
      Connection* conn = static_cast<Connection*>(ev.conn->user);
      if (conn == nullptr || conn->dead) continue;
      switch (ev.kind) {
        case TransportEvent::Kind::kData:
          break;  // no new requests are decoded during drain
        case TransportEvent::Kind::kEof:
        case TransportEvent::Kind::kError:
          CloseConnection(shard, conn);
          break;
        case TransportEvent::Kind::kWritable:
          FlushWrites(shard, conn);
          break;
        case TransportEvent::Kind::kAccept:
          break;  // handled above
      }
    }
    shard->transport->EndPass();
    shard->scratch.Reset();
  }
  // Past the drain deadline: connections still holding undeliverable
  // responses are hard-killed (and counted); fully drained ones just
  // close.
  for (auto& conn : shard->conns) {
    if (conn->dead) continue;
    if (conn->pending_out() > 0 ||
        shard->transport->Unflushed(conn->tconn) > 0) {
      KillConnection(shard, conn.get());
    } else {
      CloseConnection(shard, conn.get());
    }
  }
  for (auto& conn : shard->conns) {
    shard->transport->Destroy(conn->tconn);
    conn->tconn = nullptr;
  }
  shard->conns.clear();
}

}  // namespace mbp::net

#include "random/distributions.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "linalg/vector_ops.h"

namespace mbp::random {

double SampleStandardNormal(Rng& rng) {
  // Box-Muller; u1 is bounded away from zero so the log is finite.
  double u1 = rng.NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double SampleNormal(Rng& rng, double mean, double stddev) {
  MBP_CHECK_GE(stddev, 0.0);
  return mean + stddev * SampleStandardNormal(rng);
}

double SampleLaplace(Rng& rng, double mean, double scale) {
  MBP_CHECK_GT(scale, 0.0);
  // Inverse CDF: u in [-1/2, 1/2), x = mean - b * sign(u) * ln(1 - 2|u|).
  const double u = rng.NextDouble() - 0.5;
  const double sign = (u >= 0.0) ? 1.0 : -1.0;
  double tail = 1.0 - 2.0 * std::fabs(u);
  if (tail < 1e-300) tail = 1e-300;
  return mean - scale * sign * std::log(tail);
}

double SampleUniform(Rng& rng, double lo, double hi) {
  return rng.NextDouble(lo, hi);
}

bool SampleBernoulli(Rng& rng, double p) {
  MBP_CHECK(p >= 0.0 && p <= 1.0);
  return rng.NextDouble() < p;
}

linalg::Vector SampleNormalVector(Rng& rng, size_t d, double mean,
                                  double stddev) {
  linalg::Vector v(d);
  for (size_t i = 0; i < d; ++i) v[i] = SampleNormal(rng, mean, stddev);
  return v;
}

linalg::Vector SampleLaplaceVector(Rng& rng, size_t d, double mean,
                                   double scale) {
  linalg::Vector v(d);
  for (size_t i = 0; i < d; ++i) v[i] = SampleLaplace(rng, mean, scale);
  return v;
}

linalg::Vector SampleUniformVector(Rng& rng, size_t d, double lo, double hi) {
  linalg::Vector v(d);
  for (size_t i = 0; i < d; ++i) v[i] = SampleUniform(rng, lo, hi);
  return v;
}

linalg::Vector SampleUnitSphere(Rng& rng, size_t d) {
  MBP_CHECK_GE(d, 1u);
  for (;;) {
    linalg::Vector v = SampleNormalVector(rng, d, 0.0, 1.0);
    const double norm = linalg::Norm2(v);
    if (norm > 1e-12) return linalg::Scaled(v, 1.0 / norm);
  }
}

ZipfIndex::ZipfIndex(size_t n, double s) {
  MBP_CHECK_GE(n, size_t{1});
  MBP_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  const double inv_total = 1.0 / total;
  for (double& c : cdf_) c *= inv_total;
  cdf_.back() = 1.0;  // pin the top against rounding
}

size_t ZipfIndex::Sample(Rng& rng) const {
  const double u = rng.NextDouble();  // [0, 1)
  // First rank whose CDF strictly exceeds u.
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<size_t>(it - cdf_.begin());
}

double ZipfIndex::Probability(size_t k) const {
  MBP_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace mbp::random

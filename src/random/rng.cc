#include "random/rng.h"

#include "common/check.h"

namespace mbp::random {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  MBP_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace mbp::random

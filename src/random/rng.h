#ifndef MBP_RANDOM_RNG_H_
#define MBP_RANDOM_RNG_H_

#include <cstdint>

namespace mbp::random {

// Deterministic xoshiro256++ pseudo-random generator. All randomized
// components in the library (mechanisms, data generators, Monte-Carlo
// estimators) take an explicit seed so that experiments are reproducible
// bit-for-bit across runs.
//
// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
// plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds via SplitMix64 so that nearby seeds yield uncorrelated streams.
  void Seed(uint64_t seed);

  // Next 64 uniform random bits.
  uint64_t NextUint64();

  uint64_t operator()() { return NextUint64(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Creates an independent child generator; used to give each worker or
  // dataset its own stream derived from one master seed.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace mbp::random

#endif  // MBP_RANDOM_RNG_H_

#ifndef MBP_RANDOM_DISTRIBUTIONS_H_
#define MBP_RANDOM_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

#include "linalg/vector.h"
#include "random/rng.h"

namespace mbp::random {

// Scalar samplers. All take the Rng explicitly; none keep state beyond it.

// Standard normal N(0, 1) via Box-Muller (the spare value is discarded so
// the call sequence stays independent of how many samples were drawn).
double SampleStandardNormal(Rng& rng);

// Normal with the given mean and standard deviation (stddev >= 0).
double SampleNormal(Rng& rng, double mean, double stddev);

// Laplace(mean, scale) with density (1/2b) exp(-|x - mean|/b), scale b > 0.
double SampleLaplace(Rng& rng, double mean, double scale);

// Uniform over [lo, hi).
double SampleUniform(Rng& rng, double lo, double hi);

// Bernoulli with success probability p in [0, 1].
bool SampleBernoulli(Rng& rng, double p);

// Vector samplers.

// Vector of d i.i.d. N(mean, stddev^2) entries.
linalg::Vector SampleNormalVector(Rng& rng, size_t d, double mean,
                                  double stddev);

// Vector of d i.i.d. Laplace(mean, scale) entries.
linalg::Vector SampleLaplaceVector(Rng& rng, size_t d, double mean,
                                   double scale);

// Vector of d i.i.d. Uniform[lo, hi) entries.
linalg::Vector SampleUniformVector(Rng& rng, size_t d, double lo, double hi);

// Uniformly random point on the unit sphere in R^d (d >= 1).
linalg::Vector SampleUnitSphere(Rng& rng, size_t d);

// Bounded zipf sampler over ranks {0, ..., n - 1} with P(k) proportional
// to 1 / (k + 1)^s — the skewed-popularity model for multi-tenant catalog
// workloads (bench_net --zipf). Sampling is EXACT inverse-CDF over
// precomputed cumulative weights (O(n) construction, O(log n) per draw,
// 8 bytes per rank): the usual YCSB-style zeta approximation is only
// valid for s < 1, and the serving benchmarks run s = 1.1.
// s = 0 degenerates to uniform. Requires n >= 1, s >= 0.
class ZipfIndex {
 public:
  ZipfIndex(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }
  // Exact probability of rank k (for tests).
  double Probability(size_t k) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_[n-1] == 1.0
};

}  // namespace mbp::random

#endif  // MBP_RANDOM_DISTRIBUTIONS_H_

#ifndef MBP_RANDOM_DISTRIBUTIONS_H_
#define MBP_RANDOM_DISTRIBUTIONS_H_

#include <cstddef>

#include "linalg/vector.h"
#include "random/rng.h"

namespace mbp::random {

// Scalar samplers. All take the Rng explicitly; none keep state beyond it.

// Standard normal N(0, 1) via Box-Muller (the spare value is discarded so
// the call sequence stays independent of how many samples were drawn).
double SampleStandardNormal(Rng& rng);

// Normal with the given mean and standard deviation (stddev >= 0).
double SampleNormal(Rng& rng, double mean, double stddev);

// Laplace(mean, scale) with density (1/2b) exp(-|x - mean|/b), scale b > 0.
double SampleLaplace(Rng& rng, double mean, double scale);

// Uniform over [lo, hi).
double SampleUniform(Rng& rng, double lo, double hi);

// Bernoulli with success probability p in [0, 1].
bool SampleBernoulli(Rng& rng, double p);

// Vector samplers.

// Vector of d i.i.d. N(mean, stddev^2) entries.
linalg::Vector SampleNormalVector(Rng& rng, size_t d, double mean,
                                  double stddev);

// Vector of d i.i.d. Laplace(mean, scale) entries.
linalg::Vector SampleLaplaceVector(Rng& rng, size_t d, double mean,
                                   double scale);

// Vector of d i.i.d. Uniform[lo, hi) entries.
linalg::Vector SampleUniformVector(Rng& rng, size_t d, double lo, double hi);

// Uniformly random point on the unit sphere in R^d (d >= 1).
linalg::Vector SampleUnitSphere(Rng& rng, size_t d);

}  // namespace mbp::random

#endif  // MBP_RANDOM_DISTRIBUTIONS_H_

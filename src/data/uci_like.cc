#include "data/uci_like.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "random/distributions.h"

namespace mbp::data {
namespace {

// Draws one feature row with latent-factor correlation rho: each entry is
// sqrt(rho) * shared_factor + sqrt(1 - rho) * idiosyncratic noise.
void FillCorrelatedRow(random::Rng& rng, double rho, double* row, size_t d) {
  const double shared = random::SampleStandardNormal(rng);
  const double shared_weight = std::sqrt(rho);
  const double own_weight = std::sqrt(1.0 - rho);
  for (size_t j = 0; j < d; ++j) {
    row[j] = shared_weight * shared +
             own_weight * random::SampleStandardNormal(rng);
  }
}

StatusOr<Dataset> GenerateOne(const DatasetSpec& spec, size_t num_examples,
                              const linalg::Vector& hyperplane,
                              random::Rng& rng) {
  linalg::Matrix features(num_examples, spec.num_features);
  linalg::Vector targets(num_examples);
  for (size_t i = 0; i < num_examples; ++i) {
    double* row = features.RowData(i);
    FillCorrelatedRow(rng, spec.feature_correlation, row,
                      spec.num_features);
    const double score =
        linalg::Dot(row, hyperplane.data(), spec.num_features);
    if (spec.task == TaskType::kRegression) {
      targets[i] = score + random::SampleNormal(rng, 0.0, spec.noise_stddev);
    } else {
      const bool flip = random::SampleBernoulli(rng, spec.label_flip);
      const bool positive = (score > 0.0) != flip;
      targets[i] = positive ? 1.0 : -1.0;
    }
  }
  return Dataset::Create(std::move(features), std::move(targets), spec.task);
}

}  // namespace

std::vector<DatasetSpec> PaperTable3Specs() {
  // Sizes are Table 3 of the paper. Noise / correlation knobs are chosen to
  // mimic each dataset's difficulty: YearMSD is high-dimensional and noisy,
  // CASP is small and low-dimensional, CovType has moderate label noise,
  // SUSY is large with substantial class overlap.
  return {
      {.name = "Simulated1",
       .task = TaskType::kRegression,
       .paper_train_examples = 7'500'000,
       .paper_test_examples = 2'500'000,
       .num_features = 20,
       .noise_stddev = 0.1,
       .feature_correlation = 0.0},
      {.name = "YearMSD",
       .task = TaskType::kRegression,
       .paper_train_examples = 386'509,
       .paper_test_examples = 128'836,
       .num_features = 90,
       .noise_stddev = 1.5,
       .feature_correlation = 0.3},
      {.name = "CASP",
       .task = TaskType::kRegression,
       .paper_train_examples = 34'298,
       .paper_test_examples = 11'433,
       .num_features = 9,
       .noise_stddev = 0.8,
       .feature_correlation = 0.2},
      {.name = "Simulated2",
       .task = TaskType::kBinaryClassification,
       .paper_train_examples = 7'500'000,
       .paper_test_examples = 2'500'000,
       .num_features = 20,
       .label_flip = 0.05,
       .feature_correlation = 0.0},
      {.name = "CovType",
       .task = TaskType::kBinaryClassification,
       .paper_train_examples = 435'759,
       .paper_test_examples = 145'253,
       .num_features = 54,
       .label_flip = 0.08,
       .feature_correlation = 0.25},
      {.name = "SUSY",
       .task = TaskType::kBinaryClassification,
       .paper_train_examples = 3'750'000,
       .paper_test_examples = 1'250'000,
       .num_features = 18,
       .label_flip = 0.2,
       .feature_correlation = 0.15},
  };
}

StatusOr<TrainTestSplit> GenerateUciLike(const DatasetSpec& spec,
                                         double scale, uint64_t seed,
                                         size_t min_examples) {
  if (!(scale > 0.0 && scale <= 1.0)) {
    return InvalidArgumentError("scale must be in (0, 1]");
  }
  if (spec.num_features == 0) {
    return InvalidArgumentError("spec.num_features must be > 0");
  }
  const auto scaled = [&](size_t paper_size) {
    const auto n = static_cast<size_t>(
        std::llround(static_cast<double>(paper_size) * scale));
    return std::max(n, min_examples);
  };
  const size_t n_train = scaled(spec.paper_train_examples);
  const size_t n_test = scaled(spec.paper_test_examples);

  random::Rng rng(seed);
  const linalg::Vector hyperplane =
      random::SampleUnitSphere(rng, spec.num_features);
  MBP_ASSIGN_OR_RETURN(Dataset train,
                       GenerateOne(spec, n_train, hyperplane, rng));
  MBP_ASSIGN_OR_RETURN(Dataset test,
                       GenerateOne(spec, n_test, hyperplane, rng));
  return TrainTestSplit{std::move(train), std::move(test)};
}

}  // namespace mbp::data

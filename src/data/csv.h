#ifndef MBP_DATA_CSV_H_
#define MBP_DATA_CSV_H_

#include <string>

#include "common/statusor.h"
#include "data/dataset.h"

namespace mbp::data {

// Options for reading a dataset from a CSV file of numeric columns.
struct CsvReadOptions {
  // Zero-based column holding the target; all other columns are features.
  // Negative values index from the right (-1 = last column, the default).
  int target_column = -1;
  // Skip the first line (header row).
  bool has_header = true;
  char delimiter = ',';
  TaskType task = TaskType::kRegression;
};

// Loads a dataset from `path`. Returns InvalidArgument on malformed rows
// (non-numeric cells, ragged rows) with the offending line number in the
// message, and NotFound if the file cannot be opened.
StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options = {});

// Writes `dataset` to `path` as CSV with feature columns f0..f{d-1}
// followed by a `target` column. Returns Internal on I/O failure.
Status WriteCsv(const Dataset& dataset, const std::string& path);

}  // namespace mbp::data

#endif  // MBP_DATA_CSV_H_

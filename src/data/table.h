#ifndef MBP_DATA_TABLE_H_
#define MBP_DATA_TABLE_H_

// A minimal relational layer. The paper prices "machine learning over
// relational data": sellers hold relational tables (Bloomberg feeds,
// census tables), and the broker trains on a projection of columns with
// one column as the prediction target. Table models that step: named
// numeric columns, projection/selection, and conversion into the ML
// substrate's Dataset.

#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"

namespace mbp::data {

class Table {
 public:
  // Creates a table with the given column names; all rows start empty.
  // Column names must be unique and non-empty.
  static StatusOr<Table> Create(std::vector<std::string> column_names);

  // Loads a table from a CSV file with a header row of column names.
  // All cells must be numeric.
  static StatusOr<Table> FromCsv(const std::string& path,
                                 char delimiter = ',');

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return column_names_.size(); }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  // Appends one row; must have num_columns() values.
  Status AppendRow(std::vector<double> row);

  // Cell access. Checked programming errors on out-of-range indices.
  double At(size_t row, size_t column) const;

  // Index of a named column; NotFound if absent.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  // Relational operators (each returns a new table).

  // Projection onto the named columns, in the given order.
  StatusOr<Table> Project(const std::vector<std::string>& columns) const;

  // Selection: keeps rows where `predicate` returns true. The callback
  // receives the full row.
  Table Where(
      const std::function<bool(const std::vector<double>&)>& predicate)
      const;

  // The ML bridge: feature columns + a target column -> Dataset. For
  // classification the target column must hold -1/+1 labels.
  StatusOr<Dataset> ToDataset(const std::vector<std::string>& feature_columns,
                              const std::string& target_column,
                              TaskType task) const;

 private:
  explicit Table(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  std::vector<std::string> column_names_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace mbp::data

#endif  // MBP_DATA_TABLE_H_

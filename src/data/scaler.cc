#include "data/scaler.h"

#include <cmath>

namespace mbp::data {

StandardScaler StandardScaler::Fit(const Dataset& dataset) {
  const size_t n = dataset.num_examples();
  const size_t d = dataset.num_features();
  std::vector<double> means(d, 0.0);
  std::vector<double> stddevs(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = dataset.ExampleFeatures(i);
    for (size_t j = 0; j < d; ++j) means[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) means[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = dataset.ExampleFeatures(i);
    for (size_t j = 0; j < d; ++j) {
      const double diff = row[j] - means[j];
      stddevs[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stddevs[j] = std::sqrt(stddevs[j] / static_cast<double>(n));
    if (stddevs[j] < 1e-12) stddevs[j] = 1.0;
  }
  return StandardScaler(std::move(means), std::move(stddevs));
}

StatusOr<Dataset> StandardScaler::Transform(const Dataset& dataset) const {
  if (dataset.num_features() != means_.size()) {
    return InvalidArgumentError(
        "scaler was fit with a different feature count");
  }
  linalg::Matrix features(dataset.num_examples(), dataset.num_features());
  for (size_t i = 0; i < dataset.num_examples(); ++i) {
    const double* row = dataset.ExampleFeatures(i);
    for (size_t j = 0; j < dataset.num_features(); ++j) {
      features(i, j) = (row[j] - means_[j]) / stddevs_[j];
    }
  }
  return Dataset::Create(std::move(features), dataset.targets(),
                         dataset.task());
}

}  // namespace mbp::data

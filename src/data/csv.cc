#include "data/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace mbp::data {
namespace {

// Parses one CSV line into doubles. Returns false on any non-numeric cell.
bool ParseLine(const std::string& line, char delimiter,
               std::vector<double>& out) {
  out.clear();
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(delimiter, start);
    if (end == std::string::npos) end = line.size();
    // Trim surrounding whitespace.
    size_t lo = start, hi = end;
    while (lo < hi && (line[lo] == ' ' || line[lo] == '\t')) ++lo;
    while (hi > lo && (line[hi - 1] == ' ' || line[hi - 1] == '\t' ||
                       line[hi - 1] == '\r')) {
      --hi;
    }
    if (lo == hi) return false;
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(line.data() + lo, line.data() + hi, value);
    if (ec != std::errc() || ptr != line.data() + hi) return false;
    out.push_back(value);
    if (end == line.size()) break;
    start = end + 1;
  }
  return true;
}

}  // namespace

StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return NotFoundError("cannot open CSV file: " + path);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t line_number = 0;
  bool skipped_header = !options.has_header;
  std::vector<double> cells;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    if (!ParseLine(line, options.delimiter, cells)) {
      return InvalidArgumentError("malformed CSV row at line " +
                                  std::to_string(line_number));
    }
    if (!rows.empty() && cells.size() != rows.front().size()) {
      return InvalidArgumentError("ragged CSV row at line " +
                                  std::to_string(line_number));
    }
    rows.push_back(cells);
  }
  if (rows.empty()) {
    return InvalidArgumentError("CSV file has no data rows: " + path);
  }
  const int width = static_cast<int>(rows.front().size());
  if (width < 2) {
    return InvalidArgumentError("CSV needs at least one feature and a target");
  }
  int target = options.target_column;
  if (target < 0) target += width;
  if (target < 0 || target >= width) {
    return InvalidArgumentError("target column out of range");
  }

  linalg::Matrix features(rows.size(), static_cast<size_t>(width - 1));
  linalg::Vector targets(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    size_t out_col = 0;
    for (int j = 0; j < width; ++j) {
      if (j == target) {
        targets[i] = rows[i][static_cast<size_t>(j)];
      } else {
        features(i, out_col++) = rows[i][static_cast<size_t>(j)];
      }
    }
  }
  return Dataset::Create(std::move(features), std::move(targets),
                         options.task);
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return InternalError("cannot open file for writing: " + path);
  }
  for (size_t j = 0; j < dataset.num_features(); ++j) {
    out << "f" << j << ",";
  }
  out << "target\n";
  out.precision(17);
  for (size_t i = 0; i < dataset.num_examples(); ++i) {
    const double* row = dataset.ExampleFeatures(i);
    for (size_t j = 0; j < dataset.num_features(); ++j) {
      out << row[j] << ",";
    }
    out << dataset.Target(i) << "\n";
  }
  if (!out.good()) {
    return InternalError("I/O error while writing: " + path);
  }
  return Status::OK();
}

}  // namespace mbp::data

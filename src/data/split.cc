#include "data/split.h"

#include <numeric>

namespace mbp::data {
namespace {

StatusOr<TrainTestSplit> SplitByIndices(const Dataset& dataset,
                                        const std::vector<size_t>& order,
                                        double test_fraction) {
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    return InvalidArgumentError("test_fraction must be in (0, 1)");
  }
  const size_t n = dataset.num_examples();
  const auto num_test = static_cast<size_t>(test_fraction * n);
  if (num_test == 0 || num_test == n) {
    return InvalidArgumentError(
        "split would leave an empty train or test set");
  }
  const std::vector<size_t> train_idx(order.begin(), order.end() - num_test);
  const std::vector<size_t> test_idx(order.end() - num_test, order.end());
  return TrainTestSplit{dataset.Subset(train_idx), dataset.Subset(test_idx)};
}

}  // namespace

std::vector<size_t> RandomPermutation(size_t n, random::Rng& rng) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

StatusOr<TrainTestSplit> RandomSplit(const Dataset& dataset,
                                     double test_fraction,
                                     random::Rng& rng) {
  const std::vector<size_t> order =
      RandomPermutation(dataset.num_examples(), rng);
  return SplitByIndices(dataset, order, test_fraction);
}

StatusOr<TrainTestSplit> SequentialSplit(const Dataset& dataset,
                                         double test_fraction) {
  std::vector<size_t> order(dataset.num_examples());
  std::iota(order.begin(), order.end(), size_t{0});
  return SplitByIndices(dataset, order, test_fraction);
}

StatusOr<TrainTestSplit> StratifiedSplit(const Dataset& dataset,
                                         double test_fraction,
                                         random::Rng& rng) {
  if (dataset.task() != TaskType::kBinaryClassification) {
    return InvalidArgumentError(
        "stratified split requires a classification dataset");
  }
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    return InvalidArgumentError("test_fraction must be in (0, 1)");
  }
  std::vector<size_t> positives, negatives;
  for (size_t i = 0; i < dataset.num_examples(); ++i) {
    (dataset.Target(i) == 1.0 ? positives : negatives).push_back(i);
  }
  const auto shuffle = [&](std::vector<size_t>& indices) {
    for (size_t i = indices.size(); i > 1; --i) {
      std::swap(indices[i - 1], indices[rng.NextBounded(i)]);
    }
  };
  shuffle(positives);
  shuffle(negatives);
  std::vector<size_t> train_idx, test_idx;
  for (const std::vector<size_t>* group : {&positives, &negatives}) {
    const auto num_test =
        static_cast<size_t>(test_fraction * group->size());
    if (group->empty() || num_test == 0 || num_test == group->size()) {
      return InvalidArgumentError(
          "stratified split would leave an empty class on one side");
    }
    train_idx.insert(train_idx.end(), group->begin(),
                     group->end() - num_test);
    test_idx.insert(test_idx.end(), group->end() - num_test, group->end());
  }
  return TrainTestSplit{dataset.Subset(train_idx),
                        dataset.Subset(test_idx)};
}

}  // namespace mbp::data

#include "data/feature_expansion.h"

namespace mbp::data {

Dataset WithBiasColumn(const Dataset& dataset) {
  const size_t n = dataset.num_examples();
  const size_t d = dataset.num_features();
  linalg::Matrix features(n, d + 1);
  for (size_t i = 0; i < n; ++i) {
    const double* row = dataset.ExampleFeatures(i);
    for (size_t j = 0; j < d; ++j) features(i, j) = row[j];
    features(i, d) = 1.0;
  }
  return Dataset::Create(std::move(features), dataset.targets(),
                         dataset.task())
      .value();
}

StatusOr<Dataset> WithQuadraticFeatures(const Dataset& dataset,
                                        size_t max_output_features) {
  const size_t n = dataset.num_examples();
  const size_t d = dataset.num_features();
  const size_t expanded = d + d + d * (d - 1) / 2;
  if (expanded > max_output_features) {
    return InvalidArgumentError(
        "quadratic expansion would produce " + std::to_string(expanded) +
        " features (cap " + std::to_string(max_output_features) + ")");
  }
  linalg::Matrix features(n, expanded);
  for (size_t i = 0; i < n; ++i) {
    const double* row = dataset.ExampleFeatures(i);
    size_t out = 0;
    for (size_t j = 0; j < d; ++j) features(i, out++) = row[j];
    for (size_t j = 0; j < d; ++j) features(i, out++) = row[j] * row[j];
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a + 1; b < d; ++b) {
        features(i, out++) = row[a] * row[b];
      }
    }
    MBP_CHECK_EQ(out, expanded);
  }
  return Dataset::Create(std::move(features), dataset.targets(),
                         dataset.task());
}

}  // namespace mbp::data

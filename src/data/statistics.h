#ifndef MBP_DATA_STATISTICS_H_
#define MBP_DATA_STATISTICS_H_

#include <vector>

#include "data/dataset.h"

namespace mbp::data {

// Per-column summary statistics — what a seller publishes about a listed
// dataset (schema-level metadata) and what preprocessing sanity checks
// consume.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
};

// Stats for every feature column, in column order.
std::vector<ColumnStats> ComputeFeatureStats(const Dataset& dataset);

// Stats for the target column.
ColumnStats ComputeTargetStats(const Dataset& dataset);

// For classification datasets: fraction of +1 labels.
// MBP_CHECKs that the task is classification.
double PositiveLabelFraction(const Dataset& dataset);

}  // namespace mbp::data

#endif  // MBP_DATA_STATISTICS_H_

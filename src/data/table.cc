#include "data/table.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <set>

#include "common/check.h"

namespace mbp::data {
namespace {

// Splits a CSV line on `delimiter`, trimming surrounding whitespace and a
// trailing '\r'.
std::vector<std::string> SplitCells(const std::string& line,
                                    char delimiter) {
  std::vector<std::string> cells;
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(delimiter, start);
    if (end == std::string::npos) end = line.size();
    size_t lo = start, hi = end;
    while (lo < hi && (line[lo] == ' ' || line[lo] == '\t')) ++lo;
    while (hi > lo && (line[hi - 1] == ' ' || line[hi - 1] == '\t' ||
                       line[hi - 1] == '\r')) {
      --hi;
    }
    cells.push_back(line.substr(lo, hi - lo));
    if (end == line.size()) break;
    start = end + 1;
  }
  return cells;
}

}  // namespace

StatusOr<Table> Table::Create(std::vector<std::string> column_names) {
  if (column_names.empty()) {
    return InvalidArgumentError("table needs at least one column");
  }
  std::set<std::string> seen;
  for (const std::string& name : column_names) {
    if (name.empty()) {
      return InvalidArgumentError("column names must be non-empty");
    }
    if (!seen.insert(name).second) {
      return InvalidArgumentError("duplicate column name: " + name);
    }
  }
  return Table(std::move(column_names));
}

StatusOr<Table> Table::FromCsv(const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open CSV file: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("CSV file is empty: " + path);
  }
  MBP_ASSIGN_OR_RETURN(Table table,
                       Table::Create(SplitCells(line, delimiter)));
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    const std::vector<std::string> cells = SplitCells(line, delimiter);
    std::vector<double> row(cells.size());
    for (size_t j = 0; j < cells.size(); ++j) {
      const std::string& cell = cells[j];
      const auto [ptr, ec] = std::from_chars(
          cell.data(), cell.data() + cell.size(), row[j]);
      if (ec != std::errc() || ptr != cell.data() + cell.size()) {
        return InvalidArgumentError("non-numeric cell at line " +
                                    std::to_string(line_number));
      }
    }
    const Status status = table.AppendRow(std::move(row));
    if (!status.ok()) {
      return InvalidArgumentError(status.message() + " at line " +
                                  std::to_string(line_number));
    }
  }
  return table;
}

Status Table::AppendRow(std::vector<double> row) {
  if (row.size() != num_columns()) {
    return InvalidArgumentError("row has " + std::to_string(row.size()) +
                                " cells; table has " +
                                std::to_string(num_columns()) + " columns");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

double Table::At(size_t row, size_t column) const {
  MBP_CHECK_LT(row, num_rows());
  MBP_CHECK_LT(column, num_columns());
  return rows_[row][column];
}

StatusOr<size_t> Table::ColumnIndex(const std::string& name) const {
  const auto it =
      std::find(column_names_.begin(), column_names_.end(), name);
  if (it == column_names_.end()) {
    return NotFoundError("no column named '" + name + "'");
  }
  return static_cast<size_t>(it - column_names_.begin());
}

StatusOr<Table> Table::Project(
    const std::vector<std::string>& columns) const {
  std::vector<size_t> indices(columns.size());
  for (size_t j = 0; j < columns.size(); ++j) {
    MBP_ASSIGN_OR_RETURN(indices[j], ColumnIndex(columns[j]));
  }
  MBP_ASSIGN_OR_RETURN(Table projected, Table::Create(columns));
  for (const std::vector<double>& row : rows_) {
    std::vector<double> projected_row(indices.size());
    for (size_t j = 0; j < indices.size(); ++j) {
      projected_row[j] = row[indices[j]];
    }
    MBP_CHECK(projected.AppendRow(std::move(projected_row)).ok());
  }
  return projected;
}

Table Table::Where(
    const std::function<bool(const std::vector<double>&)>& predicate)
    const {
  Table filtered(column_names_);
  for (const std::vector<double>& row : rows_) {
    if (predicate(row)) filtered.rows_.push_back(row);
  }
  return filtered;
}

StatusOr<Dataset> Table::ToDataset(
    const std::vector<std::string>& feature_columns,
    const std::string& target_column, TaskType task) const {
  if (feature_columns.empty()) {
    return InvalidArgumentError("need at least one feature column");
  }
  std::vector<size_t> feature_indices(feature_columns.size());
  for (size_t j = 0; j < feature_columns.size(); ++j) {
    MBP_ASSIGN_OR_RETURN(feature_indices[j],
                         ColumnIndex(feature_columns[j]));
  }
  MBP_ASSIGN_OR_RETURN(size_t target_index, ColumnIndex(target_column));
  for (size_t index : feature_indices) {
    if (index == target_index) {
      return InvalidArgumentError(
          "target column may not also be a feature: " + target_column);
    }
  }
  linalg::Matrix features(num_rows(), feature_indices.size());
  linalg::Vector targets(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) {
    for (size_t j = 0; j < feature_indices.size(); ++j) {
      features(i, j) = rows_[i][feature_indices[j]];
    }
    targets[i] = rows_[i][target_index];
  }
  return Dataset::Create(std::move(features), std::move(targets), task);
}

}  // namespace mbp::data

#include "data/sparse_dataset.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace mbp::data {
namespace {

// std::from_chars rejects an explicit '+' sign, which LIBSVM labels
// ("+1") use routinely; strip it first.
bool ParseSignedDouble(const std::string& token, double& value) {
  const size_t start = (!token.empty() && token[0] == '+') ? 1 : 0;
  const char* begin = token.data() + start;
  const char* end = token.data() + token.size();
  if (begin == end) return false;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

}  // namespace

StatusOr<SparseDataset> SparseDataset::Create(linalg::SparseMatrix features,
                                              linalg::Vector targets,
                                              TaskType task) {
  if (features.rows() != targets.size()) {
    return InvalidArgumentError("feature rows must match target count");
  }
  if (features.rows() == 0) {
    return InvalidArgumentError("dataset must be non-empty");
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!std::isfinite(targets[i])) {
      return InvalidArgumentError("non-finite target value");
    }
    if (task == TaskType::kBinaryClassification && targets[i] != -1.0 &&
        targets[i] != 1.0) {
      return InvalidArgumentError("classification labels must be -1 or +1");
    }
  }
  return SparseDataset(std::move(features), std::move(targets), task);
}

StatusOr<Dataset> SparseDataset::ToDense(size_t max_cells) const {
  if (num_examples() * num_features() > max_cells) {
    return ResourceExhaustedError(
        "dense copy would need " +
        std::to_string(num_examples() * num_features()) + " cells (cap " +
        std::to_string(max_cells) + ")");
  }
  return Dataset::Create(features_.ToDense(), targets_, task_);
}

StatusOr<SparseDataset> ReadLibSvm(const std::string& path, TaskType task,
                                   size_t num_features) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open: " + path);

  std::vector<linalg::SparseEntry> entries;
  std::vector<double> labels;
  size_t max_index = 0;  // largest 0-based column seen
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // '#' starts a comment (SVMlight extension).
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream row(line);
    std::string token;
    if (!(row >> token)) continue;  // blank line

    double label = 0.0;
    if (!ParseSignedDouble(token, label)) {
      return InvalidArgumentError("bad label at line " +
                                  std::to_string(line_number));
    }
    if (task == TaskType::kBinaryClassification) {
      if (label == 0.0) label = -1.0;  // accept the 0/1 convention
      if (label != -1.0 && label != 1.0) {
        return InvalidArgumentError("bad class label at line " +
                                    std::to_string(line_number));
      }
    }
    const size_t row_index = labels.size();
    labels.push_back(label);

    while (row >> token) {
      const size_t colon = token.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= token.size()) {
        return InvalidArgumentError("bad index:value pair at line " +
                                    std::to_string(line_number));
      }
      size_t index = 0;
      {
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + colon, index);
        if (ec != std::errc() || ptr != token.data() + colon ||
            index == 0) {
          return InvalidArgumentError("bad feature index at line " +
                                      std::to_string(line_number));
        }
      }
      double value = 0.0;
      if (!ParseSignedDouble(token.substr(colon + 1), value)) {
        return InvalidArgumentError("bad feature value at line " +
                                    std::to_string(line_number));
      }
      const size_t col = index - 1;  // to 0-based
      max_index = std::max(max_index, col);
      entries.push_back({row_index, col, value});
    }
  }
  if (labels.empty()) {
    return InvalidArgumentError("LIBSVM file has no examples: " + path);
  }
  size_t cols = num_features > 0 ? num_features : max_index + 1;
  if (num_features > 0 && max_index >= num_features) {
    return InvalidArgumentError(
        "feature index exceeds declared num_features");
  }
  MBP_ASSIGN_OR_RETURN(
      linalg::SparseMatrix features,
      linalg::SparseMatrix::FromTriplets(labels.size(), cols,
                                         std::move(entries)));
  return SparseDataset::Create(std::move(features),
                               linalg::Vector(std::move(labels)), task);
}

Status WriteLibSvm(const SparseDataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return InternalError("cannot open for writing: " + path);
  }
  out.precision(17);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    out << data.Target(i);
    const size_t* indices = data.features().RowIndices(i);
    const double* values = data.features().RowValues(i);
    const size_t count = data.features().RowNonzeros(i);
    for (size_t k = 0; k < count; ++k) {
      out << " " << (indices[k] + 1) << ":" << values[k];
    }
    out << "\n";
  }
  if (!out.good()) return InternalError("I/O error writing: " + path);
  return Status::OK();
}

}  // namespace mbp::data

#include "data/dataset.h"

#include <atomic>
#include <cmath>

namespace mbp::data {

uint64_t Dataset::NextStatsKey() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string TaskTypeToString(TaskType task) {
  switch (task) {
    case TaskType::kRegression:
      return "regression";
    case TaskType::kBinaryClassification:
      return "classification";
  }
  return "unknown";
}

StatusOr<Dataset> Dataset::Create(linalg::Matrix features,
                                  linalg::Vector targets, TaskType task) {
  if (features.rows() != targets.size()) {
    return InvalidArgumentError("feature rows must match target count");
  }
  if (features.rows() == 0 || features.cols() == 0) {
    return InvalidArgumentError("dataset must be non-empty");
  }
  if (task == TaskType::kBinaryClassification) {
    for (size_t i = 0; i < targets.size(); ++i) {
      if (targets[i] != -1.0 && targets[i] != 1.0) {
        return InvalidArgumentError(
            "classification labels must be -1 or +1");
      }
    }
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!std::isfinite(targets[i])) {
      return InvalidArgumentError("non-finite target value");
    }
  }
  return Dataset(std::move(features), std::move(targets), task);
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  linalg::Matrix features(indices.size(), num_features());
  linalg::Vector targets(indices.size());
  for (size_t out = 0; out < indices.size(); ++out) {
    const size_t in = indices[out];
    MBP_CHECK_LT(in, num_examples());
    for (size_t j = 0; j < num_features(); ++j) {
      features(out, j) = features_(in, j);
    }
    targets[out] = targets_[in];
  }
  return Dataset(std::move(features), std::move(targets), task_);
}

}  // namespace mbp::data

#ifndef MBP_DATA_SYNTHETIC_H_
#define MBP_DATA_SYNTHETIC_H_

#include <cstdint>

#include "common/statusor.h"
#include "data/dataset.h"
#include "random/rng.h"

namespace mbp::data {

// Generators for the paper's two simulated datasets (Section 6.1):
//
//   Simulated1 (regression): feature vectors drawn from a standard normal;
//   targets are the inner product of the features with a fixed hyperplane
//   vector, plus optional observation noise.
//
//   Simulated2 (classification): feature vectors drawn from a standard
//   normal; the label is +1 with probability `label_flip_keep` (paper: 0.95)
//   when the point lies above a fixed hyperplane, and -1 otherwise
//   (symmetrically noisy below the hyperplane).

struct Simulated1Options {
  size_t num_examples = 10000;
  size_t num_features = 20;
  // Standard deviation of additive Gaussian noise on the target.
  double noise_stddev = 0.1;
  uint64_t seed = 1;
};

struct Simulated2Options {
  size_t num_examples = 10000;
  size_t num_features = 20;
  // Probability that a point above the hyperplane is labeled +1
  // (paper uses 0.95).
  double label_keep_probability = 0.95;
  uint64_t seed = 2;
};

// Generates Simulated1. The hyperplane is a fixed unit vector derived from
// the seed, so the same options always produce the same dataset.
StatusOr<Dataset> GenerateSimulated1(const Simulated1Options& options);

// Generates Simulated2 with labels in {-1, +1}.
StatusOr<Dataset> GenerateSimulated2(const Simulated2Options& options);

}  // namespace mbp::data

#endif  // MBP_DATA_SYNTHETIC_H_

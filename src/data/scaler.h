#ifndef MBP_DATA_SCALER_H_
#define MBP_DATA_SCALER_H_

#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"

namespace mbp::data {

// Per-feature standardization (zero mean, unit variance), fit on the train
// set and applied to both sides of a split — the usual preprocessing before
// gradient-based training so that one learning rate fits all coordinates.
class StandardScaler {
 public:
  // Computes per-column mean and standard deviation from `dataset`.
  // Constant columns get stddev 1 so they pass through unscaled.
  static StandardScaler Fit(const Dataset& dataset);

  // Returns a copy of `dataset` with each feature standardized. Requires the
  // same feature count the scaler was fit with.
  StatusOr<Dataset> Transform(const Dataset& dataset) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  StandardScaler(std::vector<double> means, std::vector<double> stddevs)
      : means_(std::move(means)), stddevs_(std::move(stddevs)) {}

  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace mbp::data

#endif  // MBP_DATA_SCALER_H_

#ifndef MBP_DATA_SPLIT_H_
#define MBP_DATA_SPLIT_H_

#include "common/statusor.h"
#include "data/dataset.h"
#include "random/rng.h"

namespace mbp::data {

// Randomly partitions `dataset` into train/test with the given test
// fraction (0 < test_fraction < 1; both sides must end up non-empty).
// The permutation is drawn from `rng`, so splits are reproducible.
StatusOr<TrainTestSplit> RandomSplit(const Dataset& dataset,
                                     double test_fraction,
                                     random::Rng& rng);

// Deterministic split: first (1 - test_fraction) fraction of rows becomes
// the train set. Useful when the row order is already randomized.
StatusOr<TrainTestSplit> SequentialSplit(const Dataset& dataset,
                                         double test_fraction);

// For classification datasets: random split that preserves the class
// ratio on both sides (each class is split with the same test fraction).
// Falls back to InvalidArgument for regression tasks or fractions that
// would empty either side of either class.
StatusOr<TrainTestSplit> StratifiedSplit(const Dataset& dataset,
                                         double test_fraction,
                                         random::Rng& rng);

// Returns a uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
std::vector<size_t> RandomPermutation(size_t n, random::Rng& rng);

}  // namespace mbp::data

#endif  // MBP_DATA_SPLIT_H_

#include "data/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mbp::data {
namespace {

ColumnStats StatsOf(const std::vector<double>& values) {
  ColumnStats stats;
  stats.min = values.front();
  stats.max = values.front();
  double total = 0.0;
  for (double v : values) {
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    total += v;
  }
  stats.mean = total / static_cast<double>(values.size());
  double variance = 0.0;
  for (double v : values) {
    variance += (v - stats.mean) * (v - stats.mean);
  }
  stats.stddev = std::sqrt(variance / static_cast<double>(values.size()));
  return stats;
}

}  // namespace

std::vector<ColumnStats> ComputeFeatureStats(const Dataset& dataset) {
  const size_t n = dataset.num_examples();
  const size_t d = dataset.num_features();
  std::vector<ColumnStats> stats(d);
  std::vector<double> column(n);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) {
      column[i] = dataset.ExampleFeatures(i)[j];
    }
    stats[j] = StatsOf(column);
  }
  return stats;
}

ColumnStats ComputeTargetStats(const Dataset& dataset) {
  std::vector<double> targets(dataset.num_examples());
  for (size_t i = 0; i < targets.size(); ++i) {
    targets[i] = dataset.Target(i);
  }
  return StatsOf(targets);
}

double PositiveLabelFraction(const Dataset& dataset) {
  MBP_CHECK(dataset.task() == TaskType::kBinaryClassification)
      << "PositiveLabelFraction requires a classification dataset";
  size_t positives = 0;
  for (size_t i = 0; i < dataset.num_examples(); ++i) {
    if (dataset.Target(i) == 1.0) ++positives;
  }
  return static_cast<double>(positives) /
         static_cast<double>(dataset.num_examples());
}

}  // namespace mbp::data

#ifndef MBP_DATA_FEATURE_EXPANSION_H_
#define MBP_DATA_FEATURE_EXPANSION_H_

// Fixed (listing-time) feature maps. The paper's market fixes the feature
// set per listing (Section 3.4 explicitly excludes feature selection),
// but the features themselves may be engineered before listing — e.g.
// Example 3 embeds tweets before fitting logistic regression. These
// helpers cover the standard fixed expansions for linear models.

#include "common/statusor.h"
#include "data/dataset.h"

namespace mbp::data {

// Appends a constant 1.0 column, giving linear models an intercept
// without special-casing the trainers.
Dataset WithBiasColumn(const Dataset& dataset);

// Degree-2 polynomial expansion: the original d features, all squares
// x_j^2, and all d*(d-1)/2 pairwise interaction terms x_i * x_j (i < j).
// Output dimension d + d + d*(d-1)/2. Returns InvalidArgument when the
// expanded dimension would exceed `max_output_features`.
StatusOr<Dataset> WithQuadraticFeatures(const Dataset& dataset,
                                        size_t max_output_features = 10000);

}  // namespace mbp::data

#endif  // MBP_DATA_FEATURE_EXPANSION_H_

#ifndef MBP_DATA_UCI_LIKE_H_
#define MBP_DATA_UCI_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"

namespace mbp::data {

// Synthetic stand-ins for the four UCI datasets in the paper's Table 3
// (YearMSD, CASP, CovType, SUSY). The real files are not redistributable
// here, so each generator matches its dataset's task type, feature count,
// train/test sizes (scaled by `scale`), and qualitative signal profile
// (signal-to-noise ratio and feature correlation), which is all Figure 6
// needs: the error-vs-1/NCP transformation is exercised identically.
// See DESIGN.md §3 for the substitution rationale.

// One row of the paper's Table 3.
struct DatasetSpec {
  std::string name;
  TaskType task = TaskType::kRegression;
  size_t paper_train_examples = 0;  // n1 in Table 3
  size_t paper_test_examples = 0;   // n2 in Table 3
  size_t num_features = 0;          // d in Table 3

  // Signal profile knobs for the generator.
  double noise_stddev = 0.5;        // regression target noise
  double label_flip = 0.1;          // classification label noise
  double feature_correlation = 0.0; // [0, 1); latent-factor correlation
};

// The six rows of Table 3, in paper order: Simulated1, YearMSD, CASP,
// Simulated2, CovType, SUSY.
std::vector<DatasetSpec> PaperTable3Specs();

// Generates a train/test pair for `spec`, with sizes
// round(paper size * scale), each at least `min_examples`.
// Regression targets: w.x on correlated Gaussian features plus noise.
// Classification labels: sign(w.x) with `label_flip` symmetric noise.
StatusOr<TrainTestSplit> GenerateUciLike(const DatasetSpec& spec,
                                         double scale, uint64_t seed,
                                         size_t min_examples = 200);

}  // namespace mbp::data

#endif  // MBP_DATA_UCI_LIKE_H_

#include "data/synthetic.h"

#include "linalg/vector_ops.h"
#include "random/distributions.h"

namespace mbp::data {

StatusOr<Dataset> GenerateSimulated1(const Simulated1Options& options) {
  if (options.num_examples == 0 || options.num_features == 0) {
    return InvalidArgumentError("num_examples and num_features must be > 0");
  }
  if (options.noise_stddev < 0.0) {
    return InvalidArgumentError("noise_stddev must be non-negative");
  }
  random::Rng rng(options.seed);
  const linalg::Vector hyperplane =
      random::SampleUnitSphere(rng, options.num_features);

  linalg::Matrix features(options.num_examples, options.num_features);
  linalg::Vector targets(options.num_examples);
  for (size_t i = 0; i < options.num_examples; ++i) {
    double* row = features.RowData(i);
    for (size_t j = 0; j < options.num_features; ++j) {
      row[j] = random::SampleStandardNormal(rng);
    }
    targets[i] = linalg::Dot(row, hyperplane.data(), options.num_features) +
                 random::SampleNormal(rng, 0.0, options.noise_stddev);
  }
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kRegression);
}

StatusOr<Dataset> GenerateSimulated2(const Simulated2Options& options) {
  if (options.num_examples == 0 || options.num_features == 0) {
    return InvalidArgumentError("num_examples and num_features must be > 0");
  }
  if (options.label_keep_probability < 0.5 ||
      options.label_keep_probability > 1.0) {
    return InvalidArgumentError(
        "label_keep_probability must be in [0.5, 1]");
  }
  random::Rng rng(options.seed);
  const linalg::Vector hyperplane =
      random::SampleUnitSphere(rng, options.num_features);

  linalg::Matrix features(options.num_examples, options.num_features);
  linalg::Vector targets(options.num_examples);
  for (size_t i = 0; i < options.num_examples; ++i) {
    double* row = features.RowData(i);
    for (size_t j = 0; j < options.num_features; ++j) {
      row[j] = random::SampleStandardNormal(rng);
    }
    const bool above =
        linalg::Dot(row, hyperplane.data(), options.num_features) > 0.0;
    const bool keep =
        random::SampleBernoulli(rng, options.label_keep_probability);
    const bool positive = (above == keep);
    targets[i] = positive ? 1.0 : -1.0;
  }
  return Dataset::Create(std::move(features), std::move(targets),
                         TaskType::kBinaryClassification);
}

}  // namespace mbp::data

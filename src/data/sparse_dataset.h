#ifndef MBP_DATA_SPARSE_DATASET_H_
#define MBP_DATA_SPARSE_DATASET_H_

// Sparse supervised dataset: CSR features plus a target column. The
// high-dimensional text markets of the paper's Example 3 live here;
// convert to a dense Dataset only when d is small enough to afford it
// (e.g. to hand a held-out slice to the broker's error transform).

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/sparse.h"

namespace mbp::data {

class SparseDataset {
 public:
  // Validates shapes and (for classification) -1/+1 labels.
  static StatusOr<SparseDataset> Create(linalg::SparseMatrix features,
                                        linalg::Vector targets,
                                        TaskType task);

  size_t num_examples() const { return features_.rows(); }
  size_t num_features() const { return features_.cols(); }
  TaskType task() const { return task_; }

  const linalg::SparseMatrix& features() const { return features_; }
  double Target(size_t i) const { return targets_[i]; }
  const linalg::Vector& targets() const { return targets_; }

  // Dense copy; InvalidArgument when rows * cols exceeds `max_cells`
  // (guard against accidentally materializing a huge matrix).
  StatusOr<Dataset> ToDense(size_t max_cells = 50'000'000) const;

 private:
  SparseDataset(linalg::SparseMatrix features, linalg::Vector targets,
                TaskType task)
      : features_(std::move(features)),
        targets_(std::move(targets)),
        task_(task) {}

  linalg::SparseMatrix features_;
  linalg::Vector targets_;
  TaskType task_;
};

// Reads the LIBSVM/SVMlight text format:
//   <label> <index>:<value> <index>:<value> ...
// Indices are 1-based per the format; labels must be -1/+1 (or 0/1,
// remapped to -1/+1) for classification, arbitrary reals for regression.
// `num_features` 0 means "infer from the largest index seen".
StatusOr<SparseDataset> ReadLibSvm(const std::string& path, TaskType task,
                                   size_t num_features = 0);

// Writes `data` in the LIBSVM format ReadLibSvm consumes (1-based
// indices, full double precision). Returns Internal on I/O failure.
Status WriteLibSvm(const SparseDataset& data, const std::string& path);

}  // namespace mbp::data

#endif  // MBP_DATA_SPARSE_DATASET_H_

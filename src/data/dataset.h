#ifndef MBP_DATA_DATASET_H_
#define MBP_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mbp::data {

// Supervised ML task kinds supported by the marketplace broker.
enum class TaskType {
  kRegression,             // real-valued target
  kBinaryClassification,   // target in {-1, +1}
};

std::string TaskTypeToString(TaskType task);

// An in-memory relational dataset for supervised learning: an n x d feature
// matrix plus a length-n target column. This is the unit the seller lists
// for sale (as a train/test pair, see TrainTestSplit below).
class Dataset {
 public:
  // Validates shapes (features.rows() == targets.size()) and, for
  // classification, that every label is -1 or +1.
  static StatusOr<Dataset> Create(linalg::Matrix features,
                                  linalg::Vector targets, TaskType task);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  size_t num_examples() const { return features_.rows(); }
  size_t num_features() const { return features_.cols(); }
  TaskType task() const { return task_; }

  const linalg::Matrix& features() const { return features_; }
  const linalg::Vector& targets() const { return targets_; }

  // Feature row of example i (no copy).
  const double* ExampleFeatures(size_t i) const {
    return features_.RowData(i);
  }
  double Target(size_t i) const { return targets_[i]; }

  // New dataset containing the rows listed in `indices` (in that order).
  Dataset Subset(const std::vector<size_t>& indices) const;

  // Process-unique identity of this dataset's CONTENT, assigned from a
  // monotonic counter when the content is materialized (Create / Subset)
  // and shared by copies — a Dataset's data is immutable after Create, so
  // equal keys imply bit-equal features and targets. Never 0. Used by
  // ml::SufficientStatsCache to key cached Gram matrices, X^T y vectors,
  // and Cholesky factors (see DESIGN.md §5c).
  uint64_t stats_key() const { return stats_key_; }

 private:
  Dataset(linalg::Matrix features, linalg::Vector targets, TaskType task)
      : features_(std::move(features)),
        targets_(std::move(targets)),
        task_(task),
        stats_key_(NextStatsKey()) {}

  static uint64_t NextStatsKey();

  linalg::Matrix features_;
  linalg::Vector targets_;
  TaskType task_;
  uint64_t stats_key_;
};

// The pair (D_train, D_test) the seller provides: D_train is used to fit the
// optimal model instance, D_test to score noisy instances (Section 3.1).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

}  // namespace mbp::data

#endif  // MBP_DATA_DATASET_H_

#!/usr/bin/env bash
# Builds the library + tests under ThreadSanitizer and runs the
# concurrency-sensitive suites. Usage:
#   scripts/tsan.sh [build_dir] [ctest_regex]
# The default regex covers the thread pool, the parallel kernels, the
# cross-thread determinism tests, the price-serving stress suites
# (republish-under-load RCU swaps), and the networked serving suites
# (epoll server + concurrent TCP clients under live republish); pass '.'
# to run everything (slow).
set -euo pipefail

BUILD_DIR="${1:-build-tsan}"
FILTER="${2:-ThreadPool|ParallelFor|ParallelConfig|Parallel|Serving|Snapshot|PriceQuery|Net|Catalog|Intern|Cluster}"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMBP_SANITIZE=thread \
  -DMBP_BUILD_BENCHMARKS=OFF \
  -DMBP_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: fail the test at the first race, not at exit.
# tsan.supp: known libstdc++ atomic<shared_ptr> false positive (see file).
SUPP="$(cd "$(dirname "$0")" && pwd)/tsan.supp"
TSAN_OPTIONS="halt_on_error=1 suppressions=$SUPP" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$FILTER"

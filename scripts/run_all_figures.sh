#!/usr/bin/env bash
# Regenerates every paper table/figure reproduction plus the ablations into
# out/figures/. Usage:
#   scripts/run_all_figures.sh [build_dir] [out_dir]
# Pass MBP_SCALE=1 MBP_TRIALS=2000 in the environment for paper-scale data
# and the paper's Monte-Carlo budget (much slower).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-out/figures}"
SCALE="${MBP_SCALE:-}"
TRIALS="${MBP_TRIALS:-}"

mkdir -p "$OUT_DIR"

run() {
  local name="$1"; shift
  echo "== $name"
  "$BUILD_DIR/bench/$name" "$@" | tee "$OUT_DIR/$name.txt"
}

scale_flag=()
[[ -n "$SCALE" ]] && scale_flag=(--scale="$SCALE")
trials_flag=()
[[ -n "$TRIALS" ]] && trials_flag=(--trials="$TRIALS")

run table3_datasets "${scale_flag[@]}"
run fig5_example
run fig6_error_curves "${scale_flag[@]}" "${trials_flag[@]}"
run fig7_revenue_value
run fig8_revenue_demand
run fig9_runtime_value
run fig10_runtime_demand
run ablation_mechanisms "${trials_flag[@]}"
run ablation_relaxation
run bench_interpolation
run paper_scale_training "${scale_flag[@]}"

echo "All outputs in $OUT_DIR"

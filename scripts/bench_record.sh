#!/usr/bin/env bash
# Runs a benchmark harness and appends its JSON document to the matching
# BENCH_<name>.json (one document per line), building the trajectory that
# later PRs compare against. Usage:
#
#   scripts/bench_record.sh [build_dir] [bench] [extra bench flags...]
#
# `bench` names the harness without the bench_ prefix (kernels, net,
# serving, ...) and defaults to kernels, so the historical invocation
#   scripts/bench_record.sh build --scale=0.25
# still works: an argument starting with -- is treated as a flag, not a
# bench name. The build directory defaults to ./build.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
if [[ $# -gt 0 ]]; then shift; fi

NAME="kernels"
if [[ $# -gt 0 && "${1}" != --* ]]; then
  NAME="${1}"
  shift
fi

BENCH="${BUILD_DIR}/bench/bench_${NAME}"
if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not built (cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} --target bench_${NAME})" >&2
  exit 1
fi

TMP_JSON="$(mktemp)"
trap 'rm -f "${TMP_JSON}"' EXIT

"${BENCH}" --out="${TMP_JSON}" "$@"

OUT="BENCH_${NAME}.json"
cat "${TMP_JSON}" >> "${OUT}"
echo "appended $(wc -c < "${TMP_JSON}") bytes to ${OUT}"

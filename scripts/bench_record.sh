#!/usr/bin/env bash
# Runs a benchmark harness and appends its JSON document to the matching
# BENCH_<name>.json (one document per line), building the trajectory that
# later PRs compare against. Usage:
#
#   scripts/bench_record.sh [build_dir] [bench] [extra bench flags...]
#
# `bench` names the harness without the bench_ prefix (kernels, net,
# serving, ...) and defaults to kernels, so the historical invocation
#   scripts/bench_record.sh build --scale=0.25
# still works: an argument starting with -- is treated as a flag, not a
# bench name. The build directory defaults to ./build.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
if [[ $# -gt 0 ]]; then shift; fi

NAME="kernels"
if [[ $# -gt 0 && "${1}" != --* ]]; then
  NAME="${1}"
  shift
fi

BENCH="${BUILD_DIR}/bench/bench_${NAME}"
if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not built (cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} --target bench_${NAME})" >&2
  exit 1
fi

TMP_JSON="$(mktemp)"
STAMPED_JSON="$(mktemp)"
trap 'rm -f "${TMP_JSON}" "${STAMPED_JSON}"' EXIT

"${BENCH}" --out="${TMP_JSON}" "$@"

# Provenance stamp: git SHA (+ -dirty), the CPU feature subset the SIMD
# dispatcher cares about, and the build flags that shaped the binary, so
# any recorded number can be traced to the exact code + machine + flags
# that produced it.
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then GIT_SHA="${GIT_SHA}-dirty"; fi

CPU_FEATURES="$(grep -m1 '^flags' /proc/cpuinfo 2>/dev/null \
  | tr ' ' '\n' | grep -E '^(sse4_2|avx|avx2|fma|avx512f|avx512dq|avx512vl)$' \
  | sort | tr '\n' ' ' | sed 's/ $//' || true)"
[[ -n "${CPU_FEATURES}" ]] || CPU_FEATURES="unknown"

CACHE="${BUILD_DIR}/CMakeCache.txt"
BUILD_FLAGS="unknown"
if [[ -f "${CACHE}" ]]; then
  BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${CACHE}")"
  CXX_FLAGS="$(sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "${CACHE}")"
  FAULTS="$(sed -n 's/^MBP_FAULT_INJECTION:[^=]*=//p' "${CACHE}")"
  BUILD_FLAGS="build_type=${BUILD_TYPE:-default} cxx_flags=${CXX_FLAGS:-default} fault_injection=${FAULTS:-OFF}"
fi

# Inject the stamp right after the opening brace, preserving the bench's
# own pretty-printing for everything else.
awk -v sha="${GIT_SHA}" -v cpu="${CPU_FEATURES}" -v flags="${BUILD_FLAGS}" '
  NR == 1 && $0 == "{" {
    print "{"
    printf "  \"git_sha\": \"%s\",\n", sha
    printf "  \"cpu_features\": \"%s\",\n", cpu
    printf "  \"build_flags\": \"%s\",\n", flags
    next
  }
  { print }
' "${TMP_JSON}" > "${STAMPED_JSON}"

OUT="BENCH_${NAME}.json"
cat "${STAMPED_JSON}" >> "${OUT}"
echo "appended $(wc -c < "${STAMPED_JSON}") bytes to ${OUT} (sha ${GIT_SHA})"

#!/usr/bin/env bash
# Runs the kernel/stats-reuse benchmark and appends its JSON document to
# BENCH_kernels.json (one document per line), building the trajectory that
# later PRs compare against. Usage:
#
#   scripts/bench_record.sh [build_dir] [extra bench_kernels flags...]
#
# The build directory defaults to ./build; pass e.g. --scale=0.25 to run a
# reduced workload on small machines.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
if [[ $# -gt 0 ]]; then shift; fi

BENCH="${BUILD_DIR}/bench/bench_kernels"
if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not built (cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} --target bench_kernels)" >&2
  exit 1
fi

TMP_JSON="$(mktemp)"
trap 'rm -f "${TMP_JSON}"' EXIT

"${BENCH}" --out="${TMP_JSON}" "$@"

cat "${TMP_JSON}" >> BENCH_kernels.json
echo "appended $(wc -c < "${TMP_JSON}") bytes to BENCH_kernels.json"

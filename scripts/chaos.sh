#!/usr/bin/env bash
# Chaos harness: runs the NetChaosTest suite (seeded fault schedules over
# the full client/server serving path) under AddressSanitizer — on the
# default epoll transport and then again on the uring and shm transports —
# and under ThreadSanitizer (via scripts/tsan.sh), each with the suite's
# fixed default seed plus the extra seeds given on the command line plus
# one fresh randomized seed. Every run prints its seed; replay any
# failure with MBP_CHAOS_SEED=<seed> scripts/chaos.sh.
#
# Usage:
#   scripts/chaos.sh [extra_seed ...]
# Env:
#   MBP_CHAOS_SEED  when set, used INSTEAD of the randomized seed (the
#                   replay path), alongside the fixed defaults.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FILTER='NetChaosTest'
FIXED_SEEDS=(12648430 1 424242)
if [[ -n "${MBP_CHAOS_SEED:-}" ]]; then
  RANDOM_SEED="$MBP_CHAOS_SEED"
  echo "[chaos] replaying with MBP_CHAOS_SEED=$RANDOM_SEED"
else
  RANDOM_SEED="$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')"
  echo "[chaos] randomized seed for this run: $RANDOM_SEED (replay with MBP_CHAOS_SEED=$RANDOM_SEED)"
fi
SEEDS=("${FIXED_SEEDS[@]}" "$@" "$RANDOM_SEED")

echo "[chaos] === pass 1: AddressSanitizer ==="
ASAN_DIR="$ROOT/build-asan"
cmake -B "$ASAN_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMBP_SANITIZE=address \
  -DMBP_BUILD_BENCHMARKS=OFF \
  -DMBP_BUILD_EXAMPLES=OFF
cmake --build "$ASAN_DIR" -j "$(nproc)" --target mbp_net_test
for seed in "${SEEDS[@]}"; do
  echo "[chaos] asan run, MBP_CHAOS_SEED=$seed"
  MBP_CHAOS_SEED="$seed" \
    "$ASAN_DIR/tests/mbp_net_test" --gtest_filter="$FILTER.*"
done

echo "[chaos] === pass 2: ThreadSanitizer (scripts/tsan.sh) ==="
for seed in "${SEEDS[@]}"; do
  echo "[chaos] tsan run, MBP_CHAOS_SEED=$seed"
  MBP_CHAOS_SEED="$seed" "$ROOT/scripts/tsan.sh" "$ROOT/build-tsan" "$FILTER"
done

echo "[chaos] === pass 3: alternate transports, uring + shm (asan) ==="
# Same seeded suite, but with the shard loops on the io_uring backend and
# then with clients over the shared-memory ring (MBP_CHAOS_TRANSPORT,
# tests/net/chaos_test.cc). The fixture self-skips with a visible notice
# when the kernel lacks the io_uring features, so this pass degrades to
# shm-only on old kernels rather than failing.
for transport in uring shm; do
  for seed in "${SEEDS[@]}"; do
    echo "[chaos] asan run, transport=$transport MBP_CHAOS_SEED=$seed"
    MBP_CHAOS_TRANSPORT="$transport" MBP_CHAOS_SEED="$seed" \
      "$ASAN_DIR/tests/mbp_net_test" --gtest_filter="$FILTER.*"
  done
done

echo "[chaos] === pass 3b: fault-stormed purchase mix, every transport ==="
# The BUY-verb chaos invariants (DESIGN.md §5i): under the same storm,
# every completed sale must replay bit-identically and revenue must equal
# the sum of DISTINCT recorded sales even though the retry ladder resends
# BUYs. Runs the dedicated test on all three transports with the
# randomized seed (the fixed seeds already covered it inside passes 1/3).
for transport in epoll uring shm; do
  echo "[chaos] asan purchase-mix run, transport=$transport MBP_CHAOS_SEED=$RANDOM_SEED"
  MBP_CHAOS_TRANSPORT="$transport" MBP_CHAOS_SEED="$RANDOM_SEED" \
    "$ASAN_DIR/tests/mbp_net_test" \
    --gtest_filter='NetChaosTest.PurchaseMixUnderFaultStormReplaysAndChargesOnce'
done

echo "[chaos] === pass 4: 2-process consistent-hash fleet (asan) ==="
# One fixed-seed pass against a real multi-process fleet: NetFleetTest
# fork/execs 2 mbp_catalog_shard processes, fault-storms shard 0 with the
# fixed seed, and asserts the consistent-hash client stays bit-identical
# to the in-process engine throughout (DESIGN.md §5g).
cmake --build "$ASAN_DIR" -j "$(nproc)" --target mbp_fleet_test
MBP_CHAOS_SEED=12648430 \
  "$ASAN_DIR/tests/mbp_fleet_test" --gtest_filter='NetFleetTest.*'

echo "[chaos] === pass 5: crash-recovery, fixed seed (asan) ==="
# One fixed-seed pass of the kill-9 recovery harness (DESIGN.md §5j):
# SIGKILL the durable shard under BUY load, restart on the same WAL
# directory, and hold no-lost-sale / no-double-charge / bit-identical
# replay. The deep sweep (every-byte WAL fuzz, named crash points, more
# seeds and cycles) lives in scripts/crash_chaos.sh.
cmake --build "$ASAN_DIR" -j "$(nproc)" --target mbp_crash_recovery_test
MBP_CHAOS_SEED=12648430 MBP_CRASH_CYCLES=20 \
  "$ASAN_DIR/tests/mbp_crash_recovery_test" \
  --gtest_filter='CrashRecoveryTest.RandomKillNineCyclesLoseNoAckedSale'

echo "[chaos] all passes clean (seeds: ${SEEDS[*]})"

#!/usr/bin/env bash
# Performance regression gate for the networked serving path. Runs a fresh
# bench_net, compares it against the last committed BENCH_net.json document
# OF THE SAME REGIME (same curves/zipf/batch/connections/shards/endpoints
# signature — a 100k-curve zipf run must never be gated against a
# single-curve baseline), and fails if either
#   - gated-regime QPS regressed by more than the threshold (15%)
#     (the "zipf" regime when present, else "batched"), or
#   - the run was not bit-identical to the research path.
#
# A fresh run whose regime signature has NO committed baseline is not a
# failure by default: the gate prints a visible warning listing every
# signature the committed BENCH_net.json inventories (so the operator can
# see what IS recorded and run scripts/bench_record.sh for the new one)
# and passes. --strict restores the old behaviour and exits non-zero on a
# missing baseline — CI that wants every shipped regime recorded uses it.
#
# Usage:
#   scripts/perf_gate.sh [build_dir] [--strict] [extra bench_net flags...]
#
# Wired into ctest as an off-by-default configuration:
#   ctest -C perf -R mbp_perf_gate
# Benchmarks are noisy on shared machines, so this is opt-in rather than
# part of the tier-1 suite; the threshold is deliberately loose to catch
# real regressions (a lost vectorized path, an allocation storm) without
# flaking on scheduler jitter.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
if [[ $# -gt 0 ]]; then shift; fi

# --strict may appear anywhere after the build dir; every other argument
# is forwarded to bench_net verbatim.
STRICT=0
ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--strict" ]]; then STRICT=1; else ARGS+=("$arg"); fi
done
set -- ${ARGS[@]+"${ARGS[@]}"}

THRESHOLD_PCT="${MBP_PERF_GATE_THRESHOLD_PCT:-15}"
BASELINE="BENCH_net.json"
BENCH="${BUILD_DIR}/bench/bench_net"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not built (cmake --build ${BUILD_DIR} --target bench_net)" >&2
  exit 1
fi
if [[ ! -f "${BASELINE}" ]]; then
  if [[ "$STRICT" == "1" ]]; then
    echo "perf_gate: FAIL: no ${BASELINE} baseline to gate against (--strict)" >&2
    exit 1
  fi
  echo "perf_gate: WARNING: no ${BASELINE} baseline to gate against;" \
       "record one with scripts/bench_record.sh (passing; --strict fails here)" >&2
  exit 0
fi

TMP_JSON="$(mktemp)"
trap 'rm -f "${TMP_JSON}"' EXIT

"${BENCH}" --out="${TMP_JSON}" "$@"

python3 - "${BASELINE}" "${TMP_JSON}" "${THRESHOLD_PCT}" "${STRICT}" <<'PY'
import json
import sys

baseline_path, fresh_path, threshold_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
strict = sys.argv[4] == "1"


def load_documents(path):
    """BENCH_*.json holds concatenated pretty-printed JSON documents."""
    decoder = json.JSONDecoder()
    with open(path) as f:
        text = f.read()
    docs, pos = [], 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        doc, pos = decoder.raw_decode(text, pos)
        docs.append(doc)
    return docs


def signature(doc):
    """What must agree for two runs to be QPS-comparable. Catalog fields
    only matter in multi-curve mode; documents recorded before they
    existed read as the single-curve defaults."""
    curves = doc.get("curves", 1)
    sig = {
        "curves": curves,
        "batch": doc.get("batch"),
        "connections": doc.get("connections"),
        "shards": doc.get("shards"),
        "endpoints": doc.get("endpoints", 0),
        # Transports are different machines as far as QPS goes; documents
        # recorded before the field existed were epoll runs.
        "transport": doc.get("transport", "epoll"),
        "regimes": tuple(sorted(r.get("name", "") for r in doc.get("regimes", []))),
    }
    if curves > 1:
        sig["zipf_s"] = doc.get("zipf_s")
        sig["min_knots"] = doc.get("min_knots")
        sig["max_knots"] = doc.get("max_knots")
        sig["catalog_seed"] = doc.get("catalog_seed")
    else:
        sig["knots"] = doc.get("knots")
    return tuple(sorted(sig.items()))


def regime_qps(doc, name):
    for regime in doc.get("regimes", []):
        if regime.get("name") == name:
            return regime.get("qps")
    return None


docs = load_documents(baseline_path)
fresh = load_documents(fresh_path)[-1]

failures = []

if fresh.get("bit_identical_to_research_path") is not True:
    failures.append("fresh run is NOT bit-identical to the research path")

fresh_sig = signature(fresh)
matching = [d for d in docs if signature(d) == fresh_sig]
if not matching:
    # No committed baseline for this signature: a new regime is being
    # benchmarked for the first time, which is not a regression. Warn
    # visibly — listing what IS inventoried so the mismatch is easy to
    # diagnose — and fail only under --strict.
    lines = [
        "no committed baseline matches this regime signature:",
        f"  fresh run: {dict(fresh_sig)}",
        f"  committed baseline inventory ({len(docs)} documents):",
    ]
    seen = {}
    for d in docs:
        seen[signature(d)] = seen.get(signature(d), 0) + 1
    for sig, count in seen.items():
        lines.append(f"    {count} doc(s): {dict(sig)}")
    lines.append("  record one with scripts/bench_record.sh")
    message = "\n".join(lines)
    if strict:
        failures.append(message + "\n  (--strict: missing baseline is fatal)")
    else:
        print(f"perf_gate: WARNING: {message}", file=sys.stderr)
        print("perf_gate: WARNING: passing anyway; --strict fails here",
              file=sys.stderr)
else:
    baseline = matching[-1]  # last committed doc of the SAME regime
    regime_names = [r.get("name") for r in fresh.get("regimes", [])]
    gate_regime = "zipf" if "zipf" in regime_names else "batched"
    base_qps = regime_qps(baseline, gate_regime)
    new_qps = regime_qps(fresh, gate_regime)
    if base_qps is None or new_qps is None:
        failures.append(f"{gate_regime} regime missing from baseline or fresh run")
    else:
        floor = base_qps * (1.0 - threshold_pct / 100.0)
        verdict = "OK" if new_qps >= floor else "REGRESSION"
        print(
            f"{gate_regime} qps: baseline {base_qps:,.0f} -> fresh {new_qps:,.0f} "
            f"(floor {floor:,.0f} at -{threshold_pct:g}%): {verdict}"
        )
        if new_qps < floor:
            failures.append(
                f"{gate_regime} QPS regressed more than {threshold_pct:g}% "
                f"({base_qps:,.0f} -> {new_qps:,.0f})"
            )

if failures:
    for f in failures:
        print(f"perf_gate: FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("perf_gate: PASS")
PY

#!/usr/bin/env bash
# Performance regression gate for the networked serving path. Runs a fresh
# bench_net, compares it against the last committed BENCH_net.json document
# OF THE SAME REGIME (same curves/zipf/batch/connections/shards/endpoints
# signature — a 100k-curve zipf run must never be gated against a
# single-curve baseline), and fails if either
#   - gated-regime QPS regressed by more than the threshold (15%)
#     (the "zipf" regime when present, else "batched"), or
#   - the run was not bit-identical to the research path, or
#   - no committed baseline matches the fresh run's regime signature.
#
# Usage:
#   scripts/perf_gate.sh [build_dir] [extra bench_net flags...]
#
# Wired into ctest as an off-by-default configuration:
#   ctest -C perf -R mbp_perf_gate
# Benchmarks are noisy on shared machines, so this is opt-in rather than
# part of the tier-1 suite; the threshold is deliberately loose to catch
# real regressions (a lost vectorized path, an allocation storm) without
# flaking on scheduler jitter.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
if [[ $# -gt 0 ]]; then shift; fi

THRESHOLD_PCT="${MBP_PERF_GATE_THRESHOLD_PCT:-15}"
BASELINE="BENCH_net.json"
BENCH="${BUILD_DIR}/bench/bench_net"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not built (cmake --build ${BUILD_DIR} --target bench_net)" >&2
  exit 1
fi
if [[ ! -f "${BASELINE}" ]]; then
  echo "error: no ${BASELINE} baseline to gate against" >&2
  exit 1
fi

TMP_JSON="$(mktemp)"
trap 'rm -f "${TMP_JSON}"' EXIT

"${BENCH}" --out="${TMP_JSON}" "$@"

python3 - "${BASELINE}" "${TMP_JSON}" "${THRESHOLD_PCT}" <<'PY'
import json
import sys

baseline_path, fresh_path, threshold_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])


def load_documents(path):
    """BENCH_*.json holds concatenated pretty-printed JSON documents."""
    decoder = json.JSONDecoder()
    with open(path) as f:
        text = f.read()
    docs, pos = [], 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        doc, pos = decoder.raw_decode(text, pos)
        docs.append(doc)
    return docs


def signature(doc):
    """What must agree for two runs to be QPS-comparable. Catalog fields
    only matter in multi-curve mode; documents recorded before they
    existed read as the single-curve defaults."""
    curves = doc.get("curves", 1)
    sig = {
        "curves": curves,
        "batch": doc.get("batch"),
        "connections": doc.get("connections"),
        "shards": doc.get("shards"),
        "endpoints": doc.get("endpoints", 0),
        # Transports are different machines as far as QPS goes; documents
        # recorded before the field existed were epoll runs.
        "transport": doc.get("transport", "epoll"),
        "regimes": tuple(sorted(r.get("name", "") for r in doc.get("regimes", []))),
    }
    if curves > 1:
        sig["zipf_s"] = doc.get("zipf_s")
        sig["min_knots"] = doc.get("min_knots")
        sig["max_knots"] = doc.get("max_knots")
        sig["catalog_seed"] = doc.get("catalog_seed")
    else:
        sig["knots"] = doc.get("knots")
    return tuple(sorted(sig.items()))


def regime_qps(doc, name):
    for regime in doc.get("regimes", []):
        if regime.get("name") == name:
            return regime.get("qps")
    return None


docs = load_documents(baseline_path)
fresh = load_documents(fresh_path)[-1]

failures = []

if fresh.get("bit_identical_to_research_path") is not True:
    failures.append("fresh run is NOT bit-identical to the research path")

fresh_sig = signature(fresh)
matching = [d for d in docs if signature(d) == fresh_sig]
if not matching:
    seen = {}
    for d in docs:
        key = (d.get("curves", 1), d.get("knots"), d.get("batch"))
        seen[key] = seen.get(key, 0) + 1
    failures.append(
        "no committed baseline matches this regime signature "
        f"(fresh: curves={fresh.get('curves', 1)}, knots={fresh.get('knots')}, "
        f"batch={fresh.get('batch')}; committed (curves, knots, batch) -> docs: {seen}); "
        "record one with scripts/bench_record.sh before gating"
    )
else:
    baseline = matching[-1]  # last committed doc of the SAME regime
    regime_names = [r.get("name") for r in fresh.get("regimes", [])]
    gate_regime = "zipf" if "zipf" in regime_names else "batched"
    base_qps = regime_qps(baseline, gate_regime)
    new_qps = regime_qps(fresh, gate_regime)
    if base_qps is None or new_qps is None:
        failures.append(f"{gate_regime} regime missing from baseline or fresh run")
    else:
        floor = base_qps * (1.0 - threshold_pct / 100.0)
        verdict = "OK" if new_qps >= floor else "REGRESSION"
        print(
            f"{gate_regime} qps: baseline {base_qps:,.0f} -> fresh {new_qps:,.0f} "
            f"(floor {floor:,.0f} at -{threshold_pct:g}%): {verdict}"
        )
        if new_qps < floor:
            failures.append(
                f"{gate_regime} QPS regressed more than {threshold_pct:g}% "
                f"({base_qps:,.0f} -> {new_qps:,.0f})"
            )

if failures:
    for f in failures:
        print(f"perf_gate: FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("perf_gate: PASS")
PY

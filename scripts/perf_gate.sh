#!/usr/bin/env bash
# Performance regression gate for the networked serving path. Runs a fresh
# bench_net, compares it against the LAST committed document in
# BENCH_net.json, and fails if either
#   - batched-regime QPS regressed by more than the threshold (15%), or
#   - the run was not bit-identical to the research path.
#
# Usage:
#   scripts/perf_gate.sh [build_dir] [extra bench_net flags...]
#
# Wired into ctest as an off-by-default configuration:
#   ctest -C perf -R mbp_perf_gate
# Benchmarks are noisy on shared machines, so this is opt-in rather than
# part of the tier-1 suite; the threshold is deliberately loose to catch
# real regressions (a lost vectorized path, an allocation storm) without
# flaking on scheduler jitter.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
if [[ $# -gt 0 ]]; then shift; fi

THRESHOLD_PCT="${MBP_PERF_GATE_THRESHOLD_PCT:-15}"
BASELINE="BENCH_net.json"
BENCH="${BUILD_DIR}/bench/bench_net"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not built (cmake --build ${BUILD_DIR} --target bench_net)" >&2
  exit 1
fi
if [[ ! -f "${BASELINE}" ]]; then
  echo "error: no ${BASELINE} baseline to gate against" >&2
  exit 1
fi

TMP_JSON="$(mktemp)"
trap 'rm -f "${TMP_JSON}"' EXIT

"${BENCH}" --out="${TMP_JSON}" "$@"

python3 - "${BASELINE}" "${TMP_JSON}" "${THRESHOLD_PCT}" <<'PY'
import json
import sys

baseline_path, fresh_path, threshold_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])


def load_documents(path):
    """BENCH_*.json holds concatenated pretty-printed JSON documents."""
    decoder = json.JSONDecoder()
    with open(path) as f:
        text = f.read()
    docs, pos = [], 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        doc, pos = decoder.raw_decode(text, pos)
        docs.append(doc)
    return docs


def batched_qps(doc):
    for regime in doc.get("regimes", []):
        if regime.get("name") == "batched":
            return regime.get("qps")
    return None


baseline = load_documents(baseline_path)[-1]
fresh = load_documents(fresh_path)[-1]

failures = []

if fresh.get("bit_identical_to_research_path") is not True:
    failures.append("fresh run is NOT bit-identical to the research path")

base_qps = batched_qps(baseline)
new_qps = batched_qps(fresh)
if base_qps is None or new_qps is None:
    failures.append("batched regime missing from baseline or fresh run")
else:
    floor = base_qps * (1.0 - threshold_pct / 100.0)
    verdict = "OK" if new_qps >= floor else "REGRESSION"
    print(
        f"batched qps: baseline {base_qps:,.0f} -> fresh {new_qps:,.0f} "
        f"(floor {floor:,.0f} at -{threshold_pct:g}%): {verdict}"
    )
    if new_qps < floor:
        failures.append(
            f"batched QPS regressed more than {threshold_pct:g}% "
            f"({base_qps:,.0f} -> {new_qps:,.0f})"
        )

if failures:
    for f in failures:
        print(f"perf_gate: FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("perf_gate: PASS")
PY

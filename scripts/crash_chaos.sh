#!/usr/bin/env bash
# Kill-9 recovery chaos harness (DESIGN.md §5j): builds under
# AddressSanitizer, then
#   1. fuzzes the WAL recovery path — truncation AND bit-flip at every
#      byte offset, plus the in-process crash-point suite (fork children
#      that _exit(137) at wal.append.torn / pre-fsync / post-fsync /
#      checkpoint-pre-rename boundaries);
#   2. runs the process-level harness: fork/exec the real
#      mbp_catalog_shard with --wal-dir, SIGKILL it under BUY load and at
#      armed crash points, restart it, and hold the invariants — no
#      acked sale lost, no double charge, bit-identical replays, revenue
#      equal to the distinct recorded sales.
# Every run prints its seed; replay any failure with
# MBP_CHAOS_SEED=<seed> scripts/crash_chaos.sh.
#
# Usage:
#   scripts/crash_chaos.sh [extra_seed ...]
# Env:
#   MBP_CHAOS_SEED   when set, used INSTEAD of the randomized seed.
#   MBP_CRASH_CYCLES random SIGKILL/restart cycles per seed (default 20,
#                    the acceptance floor).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CYCLES="${MBP_CRASH_CYCLES:-20}"
FIXED_SEEDS=(12648430 424242)
if [[ -n "${MBP_CHAOS_SEED:-}" ]]; then
  RANDOM_SEED="$MBP_CHAOS_SEED"
  echo "[crash-chaos] replaying with MBP_CHAOS_SEED=$RANDOM_SEED"
else
  RANDOM_SEED="$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')"
  echo "[crash-chaos] randomized seed for this run: $RANDOM_SEED (replay with MBP_CHAOS_SEED=$RANDOM_SEED)"
fi
SEEDS=("${FIXED_SEEDS[@]}" "$@" "$RANDOM_SEED")

ASAN_DIR="$ROOT/build-asan"
cmake -B "$ASAN_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMBP_SANITIZE=address \
  -DMBP_BUILD_BENCHMARKS=OFF \
  -DMBP_BUILD_EXAMPLES=OFF
cmake --build "$ASAN_DIR" -j "$(nproc)" \
  --target mbp_common_test mbp_crash_recovery_test

echo "[crash-chaos] === pass 1: WAL torn-tail + bit-rot fuzz (asan) ==="
# Truncation and single-bit corruption at EVERY byte offset of a recorded
# log, segment rotation, group commit, and the fork-based crash points.
"$ASAN_DIR/tests/mbp_common_test" \
  --gtest_filter='WalTest.*:WalFuzzTest.*:WalCrashTest.*'

echo "[crash-chaos] === pass 2: named crash points, real shard ==="
# Deterministic kill-9 at the charge-durable-then-deliver boundaries:
# torn append, post-fsync-pre-ack, plus the graceful-drain contract.
"$ASAN_DIR/tests/mbp_crash_recovery_test" \
  --gtest_filter='CrashRecoveryTest.GracefulDrain*:CrashRecoveryTest.PostFsync*:CrashRecoveryTest.TornWrite*'

echo "[crash-chaos] === pass 3: random SIGKILL/restart cycles ==="
for seed in "${SEEDS[@]}"; do
  echo "[crash-chaos] $CYCLES kill-9 cycles, MBP_CHAOS_SEED=$seed"
  MBP_CHAOS_SEED="$seed" MBP_CRASH_CYCLES="$CYCLES" \
    "$ASAN_DIR/tests/mbp_crash_recovery_test" \
    --gtest_filter='CrashRecoveryTest.RandomKillNineCyclesLoseNoAckedSale'
done

echo "[crash-chaos] all passes clean (seeds: ${SEEDS[*]}, cycles: $CYCLES)"
